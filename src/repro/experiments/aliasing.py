"""Experiment C2: delay aliasing — periodic vs random spike bases.

Section 6's argument: orthogonal *periodic* spike trains are time-shifted
copies of one pattern, so a circuit delay equal to the wire spacing maps
one basis element exactly onto another and identification fails *with
full confidence* — the circuit silently computes with the wrong value.
Random (noise-derived) trains are "unique fingerprints": the same delays
leave only chance-level coincidences, which a confidence threshold
rejects, so the failure is a detectable "no verdict", never a wrong one.

The experiment sweeps a delay applied to each basis element and records
wrong-verdict and silent rates for (a) a periodic basis and (b) a
demux-generated random basis of the same size, using a coincidence
window of half the periodic spacing and a 50 % confidence threshold.

Run directly: ``python -m repro.experiments.aliasing``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..backend.shared import SharedArena
from ..baselines.periodic import (
    DelaySweepPoint,
    misidentification_curve,
    periodic_spike_basis,
)
from ..hyperspace.basis import BasisArtifact, HyperspaceBasis
from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..noise.synthesis import make_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec

__all__ = ["AliasingConfig", "AliasingResult", "run_aliasing"]

#: Coincidence window (samples): a tight window models a realistic
#: detector; wide windows would re-introduce soft aliasing between
#: *adjacent demux wires*, whose spikes are consecutive source crossings.
DETECTOR_WINDOW = 2


@dataclass(frozen=True)
class AliasingConfig:
    """Config of the delay-aliasing sweep."""

    n_elements: int = 4
    spacing_samples: int = 32
    seed: int = 2016
    delays: Sequence[int] = ()
    min_confidence: float = 0.5


@dataclass(frozen=True)
class AliasingResult:
    """Error-rate curves for the periodic and random bases.

    ``spacing_samples`` is the periodic basis's wire spacing: the delay
    at which the periodic scheme aliases catastrophically.
    """

    delays: List[int]
    periodic: List[DelaySweepPoint]
    random: List[DelaySweepPoint]
    spacing_samples: int
    window: int
    min_confidence: float

    def periodic_alias_delays(self) -> List[int]:
        """Delays at which the periodic basis aliased (confident + wrong)."""
        return [p.delay_samples for p in self.periodic if p.aliased]

    def max_random_wrong_rate(self) -> float:
        """Worst-case *wrong-verdict* rate of the random basis."""
        return max(p.wrong_rate for p in self.random)

    def render(self) -> str:
        """Full text report: one line per delay."""
        lines = [
            "C2 — identification failures vs applied delay",
            f"(periodic spacing {self.spacing_samples} samples, window "
            f"{self.window}, confidence >= {self.min_confidence:.0%})",
            f"{'delay':>7s} | {'periodic wrong':>14s} {'silent':>7s} "
            f"{'aliased':>8s} | {'random wrong':>12s} {'silent':>7s}",
        ]
        for point_p, point_r in zip(self.periodic, self.random):
            lines.append(
                f"{point_p.delay_samples:>7d} | {point_p.wrong_rate:>14.2f} "
                f"{point_p.silent_rate:>7.2f} {str(point_p.aliased):>8s} | "
                f"{point_r.wrong_rate:>12.2f} {point_r.silent_rate:>7.2f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class AliasingShard:
    """One basis kind's delay sweep (the spec's shard unit)."""

    which: str  # "periodic" | "random"
    config: AliasingConfig


@dataclass(frozen=True)
class AliasingSharedShard:
    """The random sweep with its demux basis already built and exported.

    Building the random basis is the experiment's only synthesis cost;
    the parent pays it once and ships the
    :class:`~repro.hyperspace.basis.BasisArtifact` handle.  The cheap
    periodic shard stays a rebuild :class:`AliasingShard` — a shared
    plan may mix both task kinds.
    """

    config: AliasingConfig
    basis: BasisArtifact


@dataclass(frozen=True)
class AliasingPart:
    """One basis kind's error-rate curve."""

    which: str
    points: List[DelaySweepPoint]


def _delays(config: AliasingConfig) -> List[int]:
    """The swept delays; the default covers the aliasing points."""
    if config.delays:
        return list(config.delays)
    # Default sweep: within-window values, exact multiples of the
    # spacing (the aliasing points), and off-grid values in between.
    multiples = [k * config.spacing_samples for k in range(1, config.n_elements)]
    offsets = [
        1,
        DETECTOR_WINDOW,
        config.spacing_samples // 2,
        config.spacing_samples + 1,
    ]
    return sorted(set([0] + offsets + multiples))


def _shards(config: AliasingConfig) -> Tuple[AliasingShard, ...]:
    """The two independent basis sweeps."""
    return (
        AliasingShard("periodic", config),
        AliasingShard("random", config),
    )


def _run_shard(shard) -> AliasingPart:
    """Sweep the delays over one basis kind (attached or rebuilt)."""
    config = shard.config
    if isinstance(shard, AliasingSharedShard):
        which = "random"
        basis = HyperspaceBasis.from_artifact(shard.basis)
    elif shard.which == "periodic":
        which = "periodic"
        basis = periodic_spike_basis(
            config.n_elements,
            config.spacing_samples,
            paper_default_synthesizer().grid,
        )
    else:
        which = "random"
        basis = build_demux_basis(
            config.n_elements,
            synthesizer=paper_default_synthesizer(),
            rng=make_rng(config.seed),
        )
    return AliasingPart(
        which=which,
        points=misidentification_curve(
            basis,
            _delays(config),
            window=DETECTOR_WINDOW,
            min_confidence=config.min_confidence,
        ),
    )


def _shard_shared(config: AliasingConfig, arena: SharedArena) -> Tuple:
    """Build the random basis once and ship it as an artifact handle."""
    basis = build_demux_basis(
        config.n_elements,
        synthesizer=paper_default_synthesizer(),
        rng=make_rng(config.seed),
    )
    return (
        AliasingShard("periodic", config),
        AliasingSharedShard(config, basis.to_artifact(arena)),
    )


def _merge(
    config: AliasingConfig, parts: Sequence[AliasingPart]
) -> AliasingResult:
    """Reassemble the comparison from the two curves."""
    by_kind = {part.which: part for part in parts}
    return AliasingResult(
        delays=_delays(config),
        periodic=by_kind["periodic"].points,
        random=by_kind["random"].points,
        spacing_samples=config.spacing_samples,
        window=DETECTOR_WINDOW,
        min_confidence=config.min_confidence,
    )


def _run(config: AliasingConfig) -> AliasingResult:
    """Serial driver: the same shards, executed in-process."""
    return _merge(config, [_run_shard(shard) for shard in _shards(config)])


def run_aliasing(
    n_elements: int = 4,
    spacing_samples: int = 32,
    seed: int = 2016,
    delays: Sequence[int] = (),
    min_confidence: float = 0.5,
) -> AliasingResult:
    """Sweep delays over periodic and random bases of equal size."""
    return _run(
        AliasingConfig(
            n_elements=n_elements,
            spacing_samples=spacing_samples,
            seed=seed,
            delays=tuple(delays),
            min_confidence=min_confidence,
        )
    )


register(
    ExperimentSpec(
        name="aliasing",
        description="C2 — delay aliasing, periodic vs random",
        tier="claim",
        config_type=AliasingConfig,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
        shard_shared=_shard_shared,
    )
)


def main() -> None:
    """Print the C2 aliasing sweep."""
    print(run_aliasing().render())


if __name__ == "__main__":
    main()
