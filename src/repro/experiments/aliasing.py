"""Experiment C2: delay aliasing — periodic vs random spike bases.

Section 6's argument: orthogonal *periodic* spike trains are time-shifted
copies of one pattern, so a circuit delay equal to the wire spacing maps
one basis element exactly onto another and identification fails *with
full confidence* — the circuit silently computes with the wrong value.
Random (noise-derived) trains are "unique fingerprints": the same delays
leave only chance-level coincidences, which a confidence threshold
rejects, so the failure is a detectable "no verdict", never a wrong one.

The experiment sweeps a delay applied to each basis element and records
wrong-verdict and silent rates for (a) a periodic basis and (b) a
demux-generated random basis of the same size, using a coincidence
window of half the periodic spacing and a 50 % confidence threshold.

Run directly: ``python -m repro.experiments.aliasing``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..baselines.periodic import (
    DelaySweepPoint,
    misidentification_curve,
    periodic_spike_basis,
)
from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..noise.synthesis import make_rng

__all__ = ["AliasingResult", "run_aliasing"]


@dataclass(frozen=True)
class AliasingResult:
    """Error-rate curves for the periodic and random bases.

    ``spacing_samples`` is the periodic basis's wire spacing: the delay
    at which the periodic scheme aliases catastrophically.
    """

    delays: List[int]
    periodic: List[DelaySweepPoint]
    random: List[DelaySweepPoint]
    spacing_samples: int
    window: int
    min_confidence: float

    def periodic_alias_delays(self) -> List[int]:
        """Delays at which the periodic basis aliased (confident + wrong)."""
        return [p.delay_samples for p in self.periodic if p.aliased]

    def max_random_wrong_rate(self) -> float:
        """Worst-case *wrong-verdict* rate of the random basis."""
        return max(p.wrong_rate for p in self.random)

    def render(self) -> str:
        """Full text report: one line per delay."""
        lines = [
            "C2 — identification failures vs applied delay",
            f"(periodic spacing {self.spacing_samples} samples, window "
            f"{self.window}, confidence >= {self.min_confidence:.0%})",
            f"{'delay':>7s} | {'periodic wrong':>14s} {'silent':>7s} "
            f"{'aliased':>8s} | {'random wrong':>12s} {'silent':>7s}",
        ]
        for point_p, point_r in zip(self.periodic, self.random):
            lines.append(
                f"{point_p.delay_samples:>7d} | {point_p.wrong_rate:>14.2f} "
                f"{point_p.silent_rate:>7.2f} {str(point_p.aliased):>8s} | "
                f"{point_r.wrong_rate:>12.2f} {point_r.silent_rate:>7.2f}"
            )
        return "\n".join(lines)


def run_aliasing(
    n_elements: int = 4,
    spacing_samples: int = 32,
    seed: int = 2016,
    delays: Sequence[int] = (),
    min_confidence: float = 0.5,
) -> AliasingResult:
    """Sweep delays over periodic and random bases of equal size."""
    synthesizer = paper_default_synthesizer()
    grid = synthesizer.grid
    rng = make_rng(seed)
    # A tight coincidence window (2 samples) models a realistic detector;
    # wide windows would re-introduce soft aliasing between *adjacent
    # demux wires*, whose spikes are consecutive source crossings.
    window = 2

    periodic_basis = periodic_spike_basis(n_elements, spacing_samples, grid)
    random_basis = build_demux_basis(n_elements, synthesizer=synthesizer, rng=rng)

    if not delays:
        # Default sweep: within-window values, exact multiples of the
        # spacing (the aliasing points), and off-grid values in between.
        multiples = [k * spacing_samples for k in range(1, n_elements)]
        offsets = [1, window, spacing_samples // 2, spacing_samples + 1]
        delays = sorted(set([0] + offsets + multiples))
    delays = list(delays)

    return AliasingResult(
        delays=delays,
        periodic=misidentification_curve(
            periodic_basis, delays, window=window, min_confidence=min_confidence
        ),
        random=misidentification_curve(
            random_basis, delays, window=window, min_confidence=min_confidence
        ),
        spacing_samples=spacing_samples,
        window=window,
        min_confidence=min_confidence,
    )


def main() -> None:
    """Print the C2 aliasing sweep."""
    print(run_aliasing().render())


if __name__ == "__main__":
    main()
