"""Experiment C3: exponential hyperspace scaling (M = 2^N − 1).

Section 3(ii): "using intersection-based orthogonators and N random
spike trains, we can generate an exponentially larger hyperspace basis
of orthogonal spike trains".  This experiment builds intersection bases
for N = 2..max and records: the basis size, the build cost, and the
sparsest element's spike count — the quantity that bounds worst-case
identification latency as the basis grows (higher-order products are
exponentially rarer without correlation shaping).

Run directly: ``python -m repro.experiments.scaling``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from ..hyperspace.builders import build_intersection_basis, paper_default_synthesizer
from ..noise.synthesis import make_rng

__all__ = ["ScalingPoint", "ScalingResult", "run_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One N of the scaling sweep."""

    n_inputs: int
    basis_size: int
    build_seconds: float
    min_spikes: int
    max_spikes: int
    nonempty_elements: int


@dataclass(frozen=True)
class ScalingResult:
    """The full sweep."""

    points: List[ScalingPoint]
    common_amplitude: float

    def render(self) -> str:
        """Full text report."""
        lines = [
            "C3 — hyperspace scaling (intersection orthogonator, "
            f"common amplitude {self.common_amplitude})",
            f"{'N':>3s} {'M=2^N-1':>8s} {'build(s)':>9s} "
            f"{'min spk':>8s} {'max spk':>8s} {'nonempty':>9s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.n_inputs:>3d} {p.basis_size:>8d} {p.build_seconds:>9.3f} "
                f"{p.min_spikes:>8d} {p.max_spikes:>8d} {p.nonempty_elements:>9d}"
            )
        return "\n".join(lines)


def run_scaling(
    max_inputs: int = 6,
    seed: int = 2016,
    common_amplitude: float = 0.945,
) -> ScalingResult:
    """Build intersection bases of growing order and record the costs.

    ``common_amplitude`` defaults to the paper's homogenizing mix; with
    0.0 the higher-order products go empty quickly, which the sweep also
    documents (set it explicitly to compare).
    """
    synthesizer = paper_default_synthesizer()
    points: List[ScalingPoint] = []
    for n in range(2, max_inputs + 1):
        rng = make_rng(seed + n)
        started = time.perf_counter()
        basis = build_intersection_basis(
            n,
            synthesizer=synthesizer,
            common_amplitude=common_amplitude,
            rng=rng,
        )
        elapsed = time.perf_counter() - started
        counts = [len(t) for t in basis.trains]
        points.append(
            ScalingPoint(
                n_inputs=n,
                basis_size=basis.size,
                build_seconds=elapsed,
                min_spikes=min(counts),
                max_spikes=max(counts),
                nonempty_elements=sum(1 for c in counts if c > 0),
            )
        )
    return ScalingResult(points=points, common_amplitude=common_amplitude)


def main() -> None:
    """Print the C3 scaling sweep."""
    print(run_scaling().render())


if __name__ == "__main__":
    main()
