"""Experiment C3: exponential hyperspace scaling (M = 2^N − 1).

Section 3(ii): "using intersection-based orthogonators and N random
spike trains, we can generate an exponentially larger hyperspace basis
of orthogonal spike trains".  This experiment builds intersection bases
for N = 2..max and records: the basis size, the build cost, and the
sparsest element's spike count — the quantity that bounds worst-case
identification latency as the basis grows (higher-order products are
exponentially rarer without correlation shaping).

Run directly: ``python -m repro.experiments.scaling``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..backend.shared import SharedArena, SharedArraySpec, attach_array
from ..hyperspace.builders import (
    build_intersection_basis,
    generate_basis_records,
    paper_default_synthesizer,
)
from ..noise.synthesis import make_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec

__all__ = ["ScalingConfig", "ScalingPoint", "ScalingResult", "run_scaling"]


@dataclass(frozen=True)
class ScalingConfig:
    """Config of the hyperspace-scaling sweep."""

    max_inputs: int = 6
    seed: int = 2016
    common_amplitude: float = 0.945


@dataclass(frozen=True)
class ScalingPoint:
    """One N of the scaling sweep."""

    n_inputs: int
    basis_size: int
    build_seconds: float
    min_spikes: int
    max_spikes: int
    nonempty_elements: int


@dataclass(frozen=True)
class ScalingResult:
    """The full sweep."""

    points: List[ScalingPoint]
    common_amplitude: float

    def render(self) -> str:
        """Full text report."""
        lines = [
            "C3 — hyperspace scaling (intersection orthogonator, "
            f"common amplitude {self.common_amplitude})",
            f"{'N':>3s} {'M=2^N-1':>8s} {'build(s)':>9s} "
            f"{'min spk':>8s} {'max spk':>8s} {'nonempty':>9s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.n_inputs:>3d} {p.basis_size:>8d} {p.build_seconds:>9.3f} "
                f"{p.min_spikes:>8d} {p.max_spikes:>8d} {p.nonempty_elements:>9d}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ScalingShard:
    """One basis order N of the sweep (the spec's shard unit).

    Each order already draws from its own ``make_rng(seed + n)``, so
    shards are independent by construction.
    """

    n_inputs: int
    seed: int
    common_amplitude: float


@dataclass(frozen=True)
class ScalingSharedShard:
    """One order whose N source records live in shared memory.

    The parent draws each order's records (the synthesis half of the
    build) and exports them; the worker attaches and pays only the
    detection + intersection transform — which ``build_seconds`` then
    measures, the field already excluded from identity comparisons as
    the one intentionally non-deterministic value.
    """

    n_inputs: int
    seed: int
    common_amplitude: float
    records: Tuple[SharedArraySpec, ...]


def _shards(config: ScalingConfig) -> Tuple[ScalingShard, ...]:
    """One shard per basis order N = 2..max."""
    return tuple(
        ScalingShard(n, config.seed, config.common_amplitude)
        for n in range(2, config.max_inputs + 1)
    )


def _run_shard(shard) -> ScalingPoint:
    """Build one order's intersection basis and record the costs."""
    synthesizer = paper_default_synthesizer()
    records = (
        [attach_array(spec) for spec in shard.records]
        if isinstance(shard, ScalingSharedShard)
        else None
    )
    started = time.perf_counter()
    basis = build_intersection_basis(
        shard.n_inputs,
        synthesizer=synthesizer,
        common_amplitude=shard.common_amplitude,
        rng=make_rng(shard.seed + shard.n_inputs),
        records=records,
    )
    elapsed = time.perf_counter() - started
    counts = [len(t) for t in basis.trains]
    return ScalingPoint(
        n_inputs=shard.n_inputs,
        basis_size=basis.size,
        build_seconds=elapsed,
        min_spikes=min(counts),
        max_spikes=max(counts),
        nonempty_elements=sum(1 for c in counts if c > 0),
    )


def _shard_shared(
    config: ScalingConfig, arena: SharedArena
) -> Tuple[ScalingSharedShard, ...]:
    """Draw every order's source records once and ship segment handles."""
    synthesizer = paper_default_synthesizer()
    shards = []
    for shard in _shards(config):
        records = generate_basis_records(
            shard.n_inputs,
            synthesizer=synthesizer,
            common_amplitude=shard.common_amplitude,
            rng=make_rng(shard.seed + shard.n_inputs),
        )
        shards.append(
            ScalingSharedShard(
                n_inputs=shard.n_inputs,
                seed=shard.seed,
                common_amplitude=shard.common_amplitude,
                records=tuple(arena.share_array(r) for r in records),
            )
        )
    return tuple(shards)


def _merge(
    config: ScalingConfig, parts: Sequence[ScalingPoint]
) -> ScalingResult:
    """Reassemble the sweep in order of N.

    ``build_seconds`` is a per-shard wall-time measurement, the one
    intentionally non-deterministic field of any result payload.
    """
    return ScalingResult(
        points=sorted(parts, key=lambda p: p.n_inputs),
        common_amplitude=config.common_amplitude,
    )


def _run(config: ScalingConfig) -> ScalingResult:
    """Serial driver: the same shards, executed in-process."""
    return _merge(config, [_run_shard(shard) for shard in _shards(config)])


def run_scaling(
    max_inputs: int = 6,
    seed: int = 2016,
    common_amplitude: float = 0.945,
) -> ScalingResult:
    """Build intersection bases of growing order and record the costs.

    ``common_amplitude`` defaults to the paper's homogenizing mix; with
    0.0 the higher-order products go empty quickly, which the sweep also
    documents (set it explicitly to compare).
    """
    return _run(
        ScalingConfig(
            max_inputs=max_inputs,
            seed=seed,
            common_amplitude=common_amplitude,
        )
    )


register(
    ExperimentSpec(
        name="scaling",
        description="C3 — exponential hyperspace scaling",
        tier="claim",
        config_type=ScalingConfig,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
        shard_shared=_shard_shared,
    )
)


def main() -> None:
    """Print the C3 scaling sweep."""
    print(run_scaling().render())


if __name__ == "__main__":
    main()
