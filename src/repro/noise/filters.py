"""Time-domain (IIR) band-limiting: the physical noise-source model.

The FFT synthesiser (:mod:`repro.noise.synthesis`) imposes the PSD
exactly but needs the whole record at once — fine for reproducing the
paper's 65 536-point statistics, unsuitable for *streaming* operation or
for modelling what a real chip does.  A physical noise source is white
thermal noise pushed through analog filters; this module provides that
path:

* :func:`design_bandpass` — Butterworth band-pass as second-order
  sections (scipy design, validated against the band edges);
* :class:`IirNoiseShaper` — stateful filter that shapes an i.i.d.
  Gaussian stream block by block with seamless state across blocks;
* :class:`StreamingNoiseSource` — endless band-limited noise stream and
  incremental zero-crossing extraction
  (:meth:`StreamingNoiseSource.spikes`).

The tests verify the streamed spectrum matches the FFT path's band and
that block-by-block output is bit-identical to one-shot filtering —
the "seamless" property the paper's always-on noise sources need.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np
from scipy import signal

from ..errors import ConfigurationError
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid
from .spectra import Band
from .synthesis import RngLike, make_rng

__all__ = ["design_bandpass", "IirNoiseShaper", "StreamingNoiseSource"]


def design_bandpass(
    band: Band,
    grid: SimulationGrid,
    order: int = 4,
) -> np.ndarray:
    """Butterworth band-pass second-order sections for ``band`` on ``grid``.

    ``order`` is the analog prototype order per edge.  Both edges must be
    strictly inside (0, Nyquist).  Returns an SOS array suitable for
    :func:`scipy.signal.sosfilt`.
    """
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order}")
    nyquist = grid.nyquist
    if not (0.0 < band.f_low < band.f_high < nyquist):
        raise ConfigurationError(
            f"band {band.describe()} must sit strictly inside "
            f"(0, Nyquist = {nyquist:g} Hz) for IIR design"
        )
    low = band.f_low / nyquist
    high = band.f_high / nyquist
    return signal.butter(order, [low, high], btype="bandpass", output="sos")


class IirNoiseShaper:
    """Stateful band-limiting filter over an i.i.d. Gaussian stream.

    Blocks filtered in sequence are bit-identical to filtering their
    concatenation in one call (the filter state is carried across
    blocks), so arbitrarily long noise streams can be produced with
    bounded memory.
    """

    def __init__(self, band: Band, grid: SimulationGrid, order: int = 4) -> None:
        self.band = band
        self.grid = grid
        self._sos = design_bandpass(band, grid, order=order)
        self._state = np.zeros((self._sos.shape[0], 2))
        # Normalisation: the filtered process's std depends on the band;
        # estimate it once from the filter's frequency response so every
        # block can be scaled without looking at the data (data-dependent
        # scaling would break seamlessness).
        worN = 4096
        _freqs, response = signal.sosfreqz(self._sos, worN=worN)
        # Input PSD is flat with total variance 1 over [0, Nyquist].
        power_gain = float(np.mean(np.abs(response) ** 2))
        if power_gain <= 0:
            raise ConfigurationError("degenerate filter: zero power gain")
        self._scale = 1.0 / np.sqrt(power_gain)

    def reset(self) -> None:
        """Clear the filter state (restart the stream)."""
        self._state = np.zeros_like(self._state)

    def shape(self, white: np.ndarray) -> np.ndarray:
        """Filter one block of i.i.d. Gaussian samples, carrying state."""
        white = np.asarray(white, dtype=float)
        if white.ndim != 1:
            raise ConfigurationError(f"block must be 1-D, got shape {white.shape}")
        shaped, self._state = signal.sosfilt(self._sos, white, zi=self._state)
        return shaped * self._scale


class StreamingNoiseSource:
    """Endless band-limited Gaussian noise with incremental spike output.

    Produces blocks of band-limited noise (:meth:`blocks`) or, one level
    higher, the zero-crossing spike stream (:meth:`spikes`) with spike
    indices continuing monotonically across block boundaries — including
    crossings that straddle a boundary, which a naive per-block detector
    would miss.
    """

    def __init__(
        self,
        band: Band,
        grid: SimulationGrid,
        seed: RngLike = None,
        order: int = 4,
        warmup_blocks: int = 4,
    ) -> None:
        self.band = band
        self.grid = grid
        self._shaper = IirNoiseShaper(band, grid, order=order)
        self._rng = make_rng(seed)
        self._block = grid.n_samples
        # Let the filter's transient die out before delivering samples.
        for _unused in range(max(0, warmup_blocks)):
            self._shaper.shape(self._rng.standard_normal(self._block))
        self._last_sample: Optional[float] = None
        self._offset = 0

    def next_block(self) -> np.ndarray:
        """The next ``grid.n_samples`` samples of the stream."""
        return self._shaper.shape(self._rng.standard_normal(self._block))

    def blocks(self) -> Iterator[np.ndarray]:
        """Endless iterator of consecutive blocks."""
        while True:
            yield self.next_block()

    def spikes(self, n_blocks: int) -> Tuple[np.ndarray, int]:
        """Zero-crossing spike indices over the next ``n_blocks`` blocks.

        Returns ``(indices, n_samples)`` where indices are global (they
        continue across calls) and ``n_samples`` is the total stream
        length consumed so far.  Boundary-straddling crossings are
        attributed to the first sample of the new block, exactly as the
        one-shot detector would.
        """
        if n_blocks < 1:
            raise ConfigurationError(f"n_blocks must be >= 1, got {n_blocks}")
        collected = []
        for _unused in range(n_blocks):
            block = self.next_block()
            if self._last_sample is not None:
                extended = np.concatenate(([self._last_sample], block))
                local = _sign_change_indices(extended)  # 1-based into block
                collected.append(local - 1 + self._offset)
            else:
                local = _sign_change_indices(block)
                collected.append(local + self._offset)
            self._last_sample = float(block[-1])
            self._offset += block.shape[0]
        indices = (
            np.concatenate(collected) if collected else np.empty(0, dtype=np.int64)
        )
        return indices.astype(np.int64), self._offset

    def spike_train(self, n_blocks: int) -> SpikeTrain:
        """Spikes over the next ``n_blocks`` blocks as a train.

        The train lives on a grid of ``n_blocks × grid.n_samples``
        samples with indices relative to the start of this call.
        """
        start = self._offset
        indices, _total = self.spikes(n_blocks)
        window = SimulationGrid(
            n_samples=n_blocks * self._block, dt=self.grid.dt
        )
        return SpikeTrain(indices - start, window)


def _sign_change_indices(record: np.ndarray) -> np.ndarray:
    """Indices i with sign(record[i]) != sign(record[i-1]), zeros glued back."""
    signs = np.sign(record)
    if np.any(signs == 0):
        nonzero = signs != 0
        positions = np.where(nonzero, np.arange(signs.size), -1)
        np.maximum.accumulate(positions, out=positions)
        signs = np.where(positions >= 0, signs[np.maximum(positions, 0)], 1.0)
    return np.flatnonzero(signs[1:] != signs[:-1]) + 1
