"""High-level noise source objects used by the rest of the library.

A :class:`NoiseSource` couples a spectrum, a grid and a seed policy into
a reusable, independently-seedable stream of records.  The paper's two
headline configurations are exposed as factory functions so experiment
drivers never repeat band constants.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from ..units import (
    PAPER_RECORD_LENGTH,
    SimulationGrid,
    paper_pink_grid,
    paper_white_grid,
)
from .correlated import CommonModeMixer
from .spectra import (
    PAPER_PINK_BAND,
    PAPER_WHITE_BAND,
    PinkSpectrum,
    Spectrum,
    WhiteSpectrum,
)
from .synthesis import NoiseSynthesizer, RngLike, make_rng

__all__ = [
    "NoiseSource",
    "paper_white_source",
    "paper_pink_source",
    "independent_records",
    "correlated_records",
]


class NoiseSource:
    """A seedable stream of noise records with a fixed PSD and grid.

    Iterating the source yields an endless sequence of independent
    records; :meth:`record` returns a single one.  Two sources built with
    different seeds are statistically independent.
    """

    def __init__(
        self,
        spectrum: Spectrum,
        grid: SimulationGrid,
        seed: RngLike = None,
    ) -> None:
        self.synthesizer = NoiseSynthesizer(spectrum, grid)
        self.grid = grid
        self.spectrum = spectrum
        self._rng = make_rng(seed)

    def record(self) -> np.ndarray:
        """Generate and return the next record."""
        return self.synthesizer.generate(self._rng)

    def records(self, count: int) -> np.ndarray:
        """Generate ``count`` records stacked as rows."""
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        return np.stack([self.record() for _ in range(count)])

    def __iter__(self) -> Iterator[np.ndarray]:
        while True:
            yield self.record()

    def expected_zero_crossing_rate(self) -> float:
        """Rice-formula crossing rate (per second)."""
        return self.synthesizer.expected_zero_crossing_rate()

    def describe(self) -> str:
        """Human-readable source summary."""
        return f"NoiseSource({self.spectrum.describe()} on {self.grid.describe()})"


def paper_white_source(
    seed: RngLike = None,
    n_samples: int = PAPER_RECORD_LENGTH,
) -> NoiseSource:
    """The paper's band-limited white source (5 MHz–10 GHz)."""
    grid = paper_white_grid(n_samples=n_samples)
    return NoiseSource(WhiteSpectrum(PAPER_WHITE_BAND), grid, seed=seed)


def paper_pink_source(
    seed: RngLike = None,
    n_samples: int = PAPER_RECORD_LENGTH,
) -> NoiseSource:
    """The paper's band-limited 1/f source (2.5 MHz–10 GHz)."""
    grid = paper_pink_grid(n_samples=n_samples)
    return NoiseSource(PinkSpectrum(PAPER_PINK_BAND), grid, seed=seed)


def independent_records(
    spectrum: Spectrum,
    grid: SimulationGrid,
    count: int,
    seed: RngLike = None,
) -> np.ndarray:
    """``count`` independent records of the given colour, stacked as rows."""
    source = NoiseSource(spectrum, grid, seed=seed)
    return source.records(count)


def correlated_records(
    spectrum: Spectrum,
    grid: SimulationGrid,
    count: int,
    common_amplitude: float,
    private_amplitude: float,
    seed: RngLike = None,
) -> np.ndarray:
    """``count`` records correlated through a common-mode component."""
    mixer = CommonModeMixer(
        NoiseSynthesizer(spectrum, grid),
        common_amplitude=common_amplitude,
        private_amplitude=private_amplitude,
    )
    return mixer.generate(count, rng=make_rng(seed))
