"""FFT-based synthesis of band-limited Gaussian noise records.

The synthesiser draws an i.i.d. complex Gaussian spectrum, weights it by
the target PSD's amplitude mask, and inverse-transforms to the time
domain.  The result is a stationary Gaussian record whose one-sided PSD
matches the requested :class:`~repro.noise.spectra.Spectrum` exactly (in
expectation) and whose marginal distribution is exactly Gaussian — both
properties the paper's zero-crossing spike generators rely on.

Records are normalised to zero mean and unit standard deviation by
default so that noise amplitudes compose linearly in the correlated-noise
mixer (:mod:`repro.noise.correlated`), matching the paper's "amplitude
0.945 / 0.055" convention.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import ConfigurationError
from ..units import SimulationGrid
from .spectra import Spectrum

__all__ = ["NoiseSynthesizer", "make_rng", "spawn_rng", "synthesize"]

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` (int, Generator or None) into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(seed: int, *key: int) -> np.random.Generator:
    """A per-point generator derived from ``(seed, key)``.

    Equivalent to ``np.random.SeedSequence(seed).spawn(...)`` children
    addressed directly by spawn key, so the stream depends only on the
    seed and the point's index — never on how many points ran before it
    in the same process.  This is what lets a sweep experiment shard by
    point while staying bit-identical to its serial run: both paths
    derive point ``i``'s stream as ``spawn_rng(config.seed, i)``.
    """
    spawn_key = tuple(int(k) for k in key)
    return np.random.default_rng(
        np.random.SeedSequence(int(seed), spawn_key=spawn_key)
    )


class NoiseSynthesizer:
    """Generates Gaussian noise records with a prescribed PSD on a grid.

    Parameters
    ----------
    spectrum:
        Target one-sided PSD shape (band-limited).
    grid:
        Simulation grid the records live on.
    normalize:
        If true (default), every record is scaled to unit standard
        deviation (the paper's convention for mixing amplitudes).  When
        false, records keep the natural scale of the PSD weights, which is
        useful when comparing absolute spectral levels.

    Notes
    -----
    The synthesiser caches the per-bin amplitude mask, so generating many
    records from the same configuration costs one rFFT pair per record.
    """

    def __init__(
        self,
        spectrum: Spectrum,
        grid: SimulationGrid,
        normalize: bool = True,
    ) -> None:
        self.spectrum = spectrum
        self.grid = grid
        self.normalize = bool(normalize)
        self._weights = spectrum.amplitude_mask(grid)
        if not np.any(self._weights > 0):
            raise ConfigurationError(
                f"spectrum {spectrum.describe()} has no power on {grid.describe()}"
            )

    @property
    def n_samples(self) -> int:
        """Record length in samples."""
        return self.grid.n_samples

    def generate(self, rng: RngLike = None) -> np.ndarray:
        """Return one noise record of ``grid.n_samples`` float64 samples."""
        rng = make_rng(rng)
        n = self.grid.n_samples
        n_bins = self._weights.shape[0]
        # Independent Gaussian real/imaginary parts give a circularly
        # symmetric complex spectrum; weighting by sqrt(S(f)) imposes the
        # PSD.  Special bins (DC, Nyquist for even n) must stay real, but
        # both are zeroed / irrelevant because DC is masked out and the
        # imaginary part of the Nyquist bin is discarded by irfft.
        real = rng.standard_normal(n_bins)
        imag = rng.standard_normal(n_bins)
        spectrum = (real + 1j * imag) * self._weights
        spectrum[0] = 0.0
        record = np.fft.irfft(spectrum, n=n)
        if self.normalize:
            std = record.std()
            if std == 0.0:
                raise ConfigurationError(
                    "generated record has zero variance; check the spectrum/band"
                )
            record = record / std
        return record

    def generate_many(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Return ``count`` independent records stacked as rows."""
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        rng = make_rng(rng)
        return np.stack([self.generate(rng) for _ in range(count)])

    def expected_zero_crossing_rate(self) -> float:
        """Rice-formula crossing rate (per second) for this configuration."""
        return self.spectrum.expected_zero_crossing_rate()

    def expected_mean_isi(self) -> float:
        """Theoretical mean inter-spike interval (seconds) of the source train."""
        return 1.0 / self.expected_zero_crossing_rate()

    def describe(self) -> str:
        """Human-readable synthesiser summary."""
        return f"NoiseSynthesizer({self.spectrum.describe()} on {self.grid.describe()})"


def synthesize(
    spectrum: Spectrum,
    grid: SimulationGrid,
    rng: RngLike = None,
    normalize: bool = True,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`NoiseSynthesizer`."""
    return NoiseSynthesizer(spectrum, grid, normalize=normalize).generate(rng)
