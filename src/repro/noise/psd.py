"""Spectral estimation utilities (Welch PSD, autocorrelation).

Used to *validate* the noise substrate: generated records must show the
requested band edges and spectral slope before they are trusted to drive
the zero-crossing spike generators.  EXPERIMENTS.md records these checks
next to the paper-vs-measured tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..units import SimulationGrid

__all__ = ["PsdEstimate", "welch_psd", "autocorrelation", "fit_spectral_slope"]

# numpy 2.x renamed trapz to trapezoid; support both.
_trapezoid = getattr(np, "trapezoid", getattr(np, "trapz", None))


@dataclass(frozen=True)
class PsdEstimate:
    """A one-sided PSD estimate: frequencies (Hz) and densities."""

    frequencies: np.ndarray
    densities: np.ndarray

    def band_power(self, f_low: float, f_high: float) -> float:
        """Integrated power between ``f_low`` and ``f_high`` (trapezoid)."""
        mask = (self.frequencies >= f_low) & (self.frequencies <= f_high)
        if mask.sum() < 2:
            return 0.0
        return float(_trapezoid(self.densities[mask], self.frequencies[mask]))

    def total_power(self) -> float:
        """Integrated power over the whole estimate."""
        return float(_trapezoid(self.densities, self.frequencies))

    def fraction_in_band(self, f_low: float, f_high: float) -> float:
        """Fraction of total power falling inside ``[f_low, f_high]``."""
        total = self.total_power()
        if total == 0:
            return 0.0
        return self.band_power(f_low, f_high) / total


def welch_psd(
    record: np.ndarray,
    grid: SimulationGrid,
    segment_length: Optional[int] = None,
    overlap: float = 0.5,
) -> PsdEstimate:
    """Welch-averaged one-sided PSD of ``record`` on ``grid``.

    Hann-windowed segments with the given fractional ``overlap`` are
    periodogram-averaged.  The estimate is normalised so that the
    integral of the PSD over frequency equals the record's variance
    (one-sided convention).
    """
    record = np.asarray(record, dtype=float)
    if record.ndim != 1:
        raise ConfigurationError(f"record must be 1-D, got shape {record.shape}")
    n = record.shape[0]
    if segment_length is None:
        segment_length = max(256, n // 16)
    segment_length = min(segment_length, n)
    if segment_length < 8:
        raise ConfigurationError(f"segment_length too small: {segment_length}")
    if not (0.0 <= overlap < 1.0):
        raise ConfigurationError(f"overlap must lie in [0, 1), got {overlap}")

    step = max(1, int(segment_length * (1.0 - overlap)))
    window = np.hanning(segment_length)
    window_power = float(np.sum(window**2))
    fs = grid.sample_rate

    accum = None
    count = 0
    start = 0
    while start + segment_length <= n:
        segment = record[start : start + segment_length]
        segment = segment - segment.mean()
        spectrum = np.fft.rfft(segment * window)
        periodogram = (np.abs(spectrum) ** 2) / (fs * window_power)
        # One-sided: double everything except DC (and Nyquist for even n).
        periodogram[1:] *= 2.0
        if segment_length % 2 == 0:
            periodogram[-1] /= 2.0
        accum = periodogram if accum is None else accum + periodogram
        count += 1
        start += step
    if count == 0:
        raise ConfigurationError("record shorter than one segment")

    freqs = np.fft.rfftfreq(segment_length, d=grid.dt)
    return PsdEstimate(frequencies=freqs, densities=accum / count)


def autocorrelation(record: np.ndarray, max_lag: int) -> np.ndarray:
    """Biased sample autocorrelation for lags ``0..max_lag`` (normalised).

    ``result[0]`` is 1 by construction (unless the record has zero
    variance, which raises).  FFT-based, O(n log n).
    """
    record = np.asarray(record, dtype=float)
    if record.ndim != 1:
        raise ConfigurationError(f"record must be 1-D, got shape {record.shape}")
    n = record.shape[0]
    if max_lag < 0 or max_lag >= n:
        raise ConfigurationError(f"max_lag must lie in [0, {n - 1}], got {max_lag}")
    centered = record - record.mean()
    variance = float(np.dot(centered, centered))
    if variance == 0.0:
        raise ConfigurationError("record has zero variance")
    n_fft = 1 << (2 * n - 1).bit_length()
    spectrum = np.fft.rfft(centered, n=n_fft)
    acf = np.fft.irfft(spectrum * np.conj(spectrum), n=n_fft)[: max_lag + 1]
    return acf / variance


def fit_spectral_slope(
    estimate: PsdEstimate,
    f_low: float,
    f_high: float,
) -> float:
    """Least-squares log-log slope of the PSD inside ``[f_low, f_high]``.

    Returns the exponent ``a`` of the best-fit ``S(f) ~ f^a``; a
    band-limited white record fits ``a ≈ 0``, a 1/f record ``a ≈ -1``.
    """
    mask = (
        (estimate.frequencies >= f_low)
        & (estimate.frequencies <= f_high)
        & (estimate.densities > 0)
        & (estimate.frequencies > 0)
    )
    if mask.sum() < 4:
        raise ConfigurationError("too few positive PSD points in the fit band")
    log_f = np.log(estimate.frequencies[mask])
    log_s = np.log(estimate.densities[mask])
    slope, _intercept = np.polyfit(log_f, log_s, deg=1)
    return float(slope)
