"""Noise synthesis substrate: band-limited Gaussian sources.

Public surface:

* :class:`Band`, :class:`WhiteSpectrum`, :class:`PinkSpectrum`,
  :class:`PowerLawSpectrum`, :class:`LorentzianSpectrum` — PSD shapes;
* :class:`NoiseSynthesizer`, :func:`synthesize` — FFT-shaped records;
* :class:`NoiseSource`, :func:`paper_white_source`,
  :func:`paper_pink_source` — seedable streams with the paper's bands;
* :class:`CorrelatedNoisePair`, :class:`CommonModeMixer` — the
  common-mode correlation construction of Section 4.2;
* :func:`welch_psd`, :func:`autocorrelation`, :func:`fit_spectral_slope`
  — validation estimators.
"""

from .correlated import (
    PAPER_COMMON_AMPLITUDE,
    PAPER_PRIVATE_AMPLITUDE,
    CommonModeMixer,
    CorrelatedNoisePair,
    amplitudes_from_correlation,
    correlation_from_amplitudes,
)
from .filters import IirNoiseShaper, StreamingNoiseSource, design_bandpass
from .psd import PsdEstimate, autocorrelation, fit_spectral_slope, welch_psd
from .sources import (
    NoiseSource,
    correlated_records,
    independent_records,
    paper_pink_source,
    paper_white_source,
)
from .spectra import (
    PAPER_PINK_BAND,
    PAPER_WHITE_BAND,
    Band,
    LorentzianSpectrum,
    PinkSpectrum,
    PowerLawSpectrum,
    Spectrum,
    WhiteSpectrum,
)
from .synthesis import NoiseSynthesizer, make_rng, spawn_rng, synthesize

__all__ = [
    "Band",
    "Spectrum",
    "WhiteSpectrum",
    "PinkSpectrum",
    "PowerLawSpectrum",
    "LorentzianSpectrum",
    "PAPER_WHITE_BAND",
    "PAPER_PINK_BAND",
    "NoiseSynthesizer",
    "synthesize",
    "make_rng",
    "spawn_rng",
    "NoiseSource",
    "paper_white_source",
    "paper_pink_source",
    "independent_records",
    "correlated_records",
    "CommonModeMixer",
    "CorrelatedNoisePair",
    "PAPER_COMMON_AMPLITUDE",
    "PAPER_PRIVATE_AMPLITUDE",
    "correlation_from_amplitudes",
    "amplitudes_from_correlation",
    "PsdEstimate",
    "welch_psd",
    "autocorrelation",
    "fit_spectral_slope",
    "design_bandpass",
    "IirNoiseShaper",
    "StreamingNoiseSource",
]
