"""Correlated noise construction for pulse-rate homogenization.

Section 4.2 of the paper equalises the output rates of the
intersection-based orthogonator by *correlating* its two source noises:
each source is the sum of a strong common-mode noise (amplitude 0.945)
and a weak private noise (amplitude 0.055).  Strongly correlated sources
cross zero nearly together, so the coincidence product A∩B fires nearly
as often as the exclusive products — Table 2's "correlated" column.

This module generalises that construction to any number of channels and
exposes the algebra connecting mixing amplitudes to the correlation
coefficient, so homogenization targets can be solved for analytically
before being verified by simulation.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..units import SimulationGrid
from .spectra import Spectrum
from .synthesis import NoiseSynthesizer, RngLike, make_rng

__all__ = [
    "PAPER_COMMON_AMPLITUDE",
    "PAPER_PRIVATE_AMPLITUDE",
    "correlation_from_amplitudes",
    "amplitudes_from_correlation",
    "CorrelatedNoisePair",
    "CommonModeMixer",
]

#: The common-mode mixing amplitude quoted in Section 4.2.
PAPER_COMMON_AMPLITUDE = 0.945

#: The private (uncorrelated) mixing amplitude quoted in Section 4.2.
PAPER_PRIVATE_AMPLITUDE = 0.055


def correlation_from_amplitudes(common: float, private: float) -> float:
    """Correlation coefficient of two channels mixed as ``c*C + p*N_i``.

    With independent unit-variance sources, each channel has variance
    ``c² + p²`` and the cross-covariance is ``c²``, hence
    ``rho = c² / (c² + p²)``.  For the paper's 0.945/0.055 mix this gives
    rho ≈ 0.9966 — "strongly correlated" indeed.
    """
    if common < 0 or private < 0:
        raise ConfigurationError("mixing amplitudes must be non-negative")
    denom = common * common + private * private
    if denom == 0:
        raise ConfigurationError("at least one mixing amplitude must be positive")
    return common * common / denom


def amplitudes_from_correlation(rho: float) -> tuple:
    """Invert :func:`correlation_from_amplitudes` under unit total variance.

    Returns ``(common, private)`` with ``common² + private² = 1`` such
    that the mixed channels have correlation ``rho``.
    """
    if not (0.0 <= rho <= 1.0):
        raise ConfigurationError(f"correlation must lie in [0, 1], got {rho}")
    common = math.sqrt(rho)
    private = math.sqrt(1.0 - rho)
    return common, private


class CommonModeMixer:
    """Mixes one common record into K private records.

    Channel ``i`` is ``common_amplitude * C + private_amplitude * N_i``
    where ``C`` and all ``N_i`` are independent unit-variance records
    drawn from the same synthesiser.  Channels are re-normalised to unit
    standard deviation after mixing (the mixing amplitudes control only
    the correlation structure, as in the paper).
    """

    def __init__(
        self,
        synthesizer: NoiseSynthesizer,
        common_amplitude: float = PAPER_COMMON_AMPLITUDE,
        private_amplitude: float = PAPER_PRIVATE_AMPLITUDE,
    ) -> None:
        if common_amplitude < 0 or private_amplitude < 0:
            raise ConfigurationError("mixing amplitudes must be non-negative")
        if common_amplitude == 0 and private_amplitude == 0:
            raise ConfigurationError("at least one mixing amplitude must be positive")
        self.synthesizer = synthesizer
        self.common_amplitude = float(common_amplitude)
        self.private_amplitude = float(private_amplitude)

    @property
    def correlation(self) -> float:
        """Pairwise correlation coefficient implied by the amplitudes."""
        return correlation_from_amplitudes(self.common_amplitude, self.private_amplitude)

    def generate(self, channels: int, rng: RngLike = None) -> np.ndarray:
        """Return ``channels`` mixed records stacked as rows."""
        if channels <= 0:
            raise ConfigurationError(f"channels must be positive, got {channels}")
        rng = make_rng(rng)
        common = self.synthesizer.generate(rng)
        rows = []
        for _ in range(channels):
            private = self.synthesizer.generate(rng)
            mixed = self.common_amplitude * common + self.private_amplitude * private
            std = mixed.std()
            if std == 0.0:
                raise ConfigurationError("mixed record degenerated to zero variance")
            rows.append(mixed / std)
        return np.stack(rows)

    def describe(self) -> str:
        """Human-readable mixer summary."""
        return (
            f"CommonModeMixer(common={self.common_amplitude:g}, "
            f"private={self.private_amplitude:g}, rho={self.correlation:.4f})"
        )


class CorrelatedNoisePair:
    """The paper's two-channel configuration (Section 4.2 / Figure 3).

    Convenience facade over :class:`CommonModeMixer` fixed at two
    channels, with the paper's mixing amplitudes as defaults.
    """

    def __init__(
        self,
        spectrum: Spectrum,
        grid: SimulationGrid,
        common_amplitude: float = PAPER_COMMON_AMPLITUDE,
        private_amplitude: float = PAPER_PRIVATE_AMPLITUDE,
    ) -> None:
        self._mixer = CommonModeMixer(
            NoiseSynthesizer(spectrum, grid),
            common_amplitude=common_amplitude,
            private_amplitude=private_amplitude,
        )
        self.grid = grid
        self.spectrum = spectrum

    @property
    def correlation(self) -> float:
        """Pairwise correlation coefficient of the two channels."""
        return self._mixer.correlation

    def generate(self, rng: RngLike = None) -> tuple:
        """Return the correlated pair ``(a, b)`` of noise records."""
        records = self._mixer.generate(2, rng)
        return records[0], records[1]

    @staticmethod
    def measure_correlation(a: np.ndarray, b: np.ndarray) -> float:
        """Empirical Pearson correlation of two records."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.shape != b.shape:
            raise ConfigurationError(
                f"records must have equal shape, got {a.shape} vs {b.shape}"
            )
        return float(np.corrcoef(a, b)[0, 1])

    def describe(self) -> str:
        """Human-readable pair summary."""
        return f"CorrelatedNoisePair({self._mixer.describe()})"
