"""Power spectral density (PSD) specifications for noise synthesis.

The paper drives its spike generators with *band-limited Gaussian noise*
of two spectral colours:

* white noise over 5 MHz – 10 GHz (Table 1, Figures 1–3), and
* 1/f ("pink") noise over 2.5 MHz – 10 GHz (Table 1).

A :class:`Band` fixes the pass-band edges; a :class:`Spectrum` describes
the PSD shape inside that band.  Spectra are evaluated on the FFT bins of
a :class:`~repro.units.SimulationGrid` to produce the amplitude mask used
by :mod:`repro.noise.synthesis`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SpectrumError
from ..units import GIGAHERTZ, MEGAHERTZ, SimulationGrid, format_frequency

__all__ = [
    "Band",
    "Spectrum",
    "WhiteSpectrum",
    "PowerLawSpectrum",
    "PinkSpectrum",
    "LorentzianSpectrum",
    "PAPER_WHITE_BAND",
    "PAPER_PINK_BAND",
]

#: White-noise band used throughout the paper's demonstrations.
PAPER_WHITE_BAND_EDGES = (5.0 * MEGAHERTZ, 10.0 * GIGAHERTZ)

#: 1/f-noise band used in Table 1.
PAPER_PINK_BAND_EDGES = (2.5 * MEGAHERTZ, 10.0 * GIGAHERTZ)


@dataclass(frozen=True)
class Band:
    """A pass band ``[f_low, f_high]`` in hertz.

    ``f_low`` may be zero for a low-pass band.  ``f_high`` must exceed
    ``f_low``.  The band is validated against a grid at synthesis time:
    it must overlap at least one positive FFT bin below Nyquist.
    """

    f_low: float
    f_high: float

    def __post_init__(self) -> None:
        if self.f_low < 0:
            raise SpectrumError(f"f_low must be non-negative, got {self.f_low}")
        if not (self.f_high > self.f_low):
            raise SpectrumError(
                f"f_high ({self.f_high}) must exceed f_low ({self.f_low})"
            )
        if not math.isfinite(self.f_high):
            raise SpectrumError("f_high must be finite")

    @property
    def width(self) -> float:
        """Band width in hertz."""
        return self.f_high - self.f_low

    @property
    def ratio(self) -> float:
        """Upper-to-lower edge ratio (infinite for a low-pass band)."""
        if self.f_low == 0:
            return math.inf
        return self.f_high / self.f_low

    def contains(self, frequency) -> np.ndarray:
        """Boolean mask: which of ``frequency`` (array, Hz) lie in band."""
        f = np.asarray(frequency, dtype=float)
        return (f >= self.f_low) & (f <= self.f_high)

    def bin_mask(self, grid: SimulationGrid) -> np.ndarray:
        """In-band mask over the positive rFFT bins of ``grid``.

        Bin 0 (DC) is never included: the sources are zero-mean.  Raises
        :class:`SpectrumError` if no bin falls inside the band, which
        would make synthesis silently produce silence.
        """
        freqs = np.fft.rfftfreq(grid.n_samples, d=grid.dt)
        mask = self.contains(freqs)
        mask[0] = False
        if not mask.any():
            raise SpectrumError(
                f"band [{format_frequency(self.f_low)}, "
                f"{format_frequency(self.f_high)}] contains no FFT bin of "
                f"{grid.describe()}"
            )
        return mask

    def describe(self) -> str:
        """Human-readable band description."""
        return f"[{format_frequency(self.f_low)} .. {format_frequency(self.f_high)}]"


#: Ready-made paper bands.
PAPER_WHITE_BAND = Band(*PAPER_WHITE_BAND_EDGES)
PAPER_PINK_BAND = Band(*PAPER_PINK_BAND_EDGES)


class Spectrum:
    """Base class for one-sided PSD shapes restricted to a band.

    Subclasses implement :meth:`density`, the *unnormalised* PSD value at
    each frequency.  Normalisation to unit variance happens in the
    synthesiser, so only the PSD's shape matters here.
    """

    def __init__(self, band: Band) -> None:
        self.band = band

    def density(self, frequency: np.ndarray) -> np.ndarray:
        """Unnormalised PSD evaluated at ``frequency`` (Hz, array)."""
        raise NotImplementedError

    def amplitude_mask(self, grid: SimulationGrid) -> np.ndarray:
        """Per-rFFT-bin amplitude weights ``sqrt(S(f))``, zero out of band."""
        freqs = np.fft.rfftfreq(grid.n_samples, d=grid.dt)
        mask = self.band.bin_mask(grid)
        weights = np.zeros_like(freqs)
        in_band = freqs[mask]
        density = self.density(in_band)
        if np.any(density < 0) or not np.all(np.isfinite(density)):
            raise SpectrumError(
                f"{type(self).__name__} produced a negative or non-finite PSD"
            )
        weights[mask] = np.sqrt(density)
        return weights

    def expected_zero_crossing_rate(self) -> float:
        """Rice-formula zero-crossing rate for a Gaussian process with this PSD.

        Counts *all* crossings (both directions) per second:
        ``rate = 2 * sqrt(m2 / m0)`` with spectral moments
        ``m_k = integral f^k S(f) df`` over the band.  Subclasses provide
        closed forms via :meth:`_spectral_moment`.
        """
        m0 = self._spectral_moment(0)
        m2 = self._spectral_moment(2)
        return 2.0 * math.sqrt(m2 / m0)

    def _spectral_moment(self, order: int) -> float:
        """Closed-form ``integral f^order * S(f) df`` over the band."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable spectrum description."""
        return f"{type(self).__name__}{self.band.describe()}"


class WhiteSpectrum(Spectrum):
    """Flat PSD inside the band (band-limited white noise)."""

    def density(self, frequency: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(frequency, dtype=float))

    def _spectral_moment(self, order: int) -> float:
        f1, f2 = self.band.f_low, self.band.f_high
        k = order + 1
        return (f2**k - f1**k) / k


class PowerLawSpectrum(Spectrum):
    """PSD proportional to ``1 / f**exponent`` inside the band.

    ``exponent`` in ``[0, 2]`` covers white (0), pink (1) and brown (2)
    noise.  A strictly positive lower band edge is required for any
    positive exponent, otherwise the PSD diverges at DC.
    """

    def __init__(self, band: Band, exponent: float) -> None:
        if exponent < 0.0 or exponent > 2.0:
            raise SpectrumError(f"exponent must lie in [0, 2], got {exponent}")
        if exponent > 0.0 and band.f_low <= 0.0:
            raise SpectrumError(
                "1/f^a spectra need a positive lower band edge to stay integrable"
            )
        super().__init__(band)
        self.exponent = float(exponent)

    def density(self, frequency: np.ndarray) -> np.ndarray:
        f = np.asarray(frequency, dtype=float)
        return f**-self.exponent

    def _spectral_moment(self, order: int) -> float:
        f1, f2 = self.band.f_low, self.band.f_high
        power = order - self.exponent
        if abs(power + 1.0) < 1e-12:
            return math.log(f2 / f1)
        k = power + 1.0
        return (f2**k - f1**k) / k

    def describe(self) -> str:
        return f"PowerLaw(1/f^{self.exponent:g}){self.band.describe()}"


class PinkSpectrum(PowerLawSpectrum):
    """PSD proportional to ``1/f`` inside the band (the paper's 1/f source)."""

    def __init__(self, band: Band) -> None:
        super().__init__(band, exponent=1.0)


class LorentzianSpectrum(Spectrum):
    """Lorentzian PSD ``S(f) = 1 / (1 + (f/f_c)^2)`` restricted to a band.

    Not used by the paper's headline experiments but provided as a
    realistic "physical" noise colour for ablations: it models noise that
    has been low-pass filtered by a single-pole RC stage, the simplest
    on-chip realisation of a band-limited noise source.
    """

    def __init__(self, band: Band, corner: float) -> None:
        if corner <= 0:
            raise SpectrumError(f"corner frequency must be positive, got {corner}")
        super().__init__(band)
        self.corner = float(corner)

    def density(self, frequency: np.ndarray) -> np.ndarray:
        f = np.asarray(frequency, dtype=float)
        return 1.0 / (1.0 + (f / self.corner) ** 2)

    def _spectral_moment(self, order: int) -> float:
        f1, f2 = self.band.f_low, self.band.f_high
        c = self.corner
        if order == 0:
            return c * (math.atan(f2 / c) - math.atan(f1 / c))
        if order == 2:
            # integral f^2 / (1 + (f/c)^2) df = c^2 * (f - c*atan(f/c))
            upper = c * c * (f2 - c * math.atan(f2 / c))
            lower = c * c * (f1 - c * math.atan(f1 / c))
            return upper - lower
        raise NotImplementedError(f"moment of order {order} not implemented")

    def describe(self) -> str:
        return f"Lorentzian(fc={format_frequency(self.corner)}){self.band.describe()}"
