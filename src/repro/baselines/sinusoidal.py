"""Baseline: sinusoidal-supply logic (the paper's reference [5]).

Bollapalli, Khatri and Kish demonstrated binary logic with sinusoidal
carriers; the multi-valued generalisation assigns each logic value an
orthogonal sinusoid (distinct frequency, or the same frequency in
quadrature).  Identification correlates the wire against each carrier
over a growing window; two sinusoids separated by Δf need a window of
order 1/Δf to decorrelate, so the identification time is set by the
carrier spacing — faster than continuum noise for well-separated tones,
but the carriers must stay "well beyond the background noise", which is
why the sinusoidal scheme cannot reach the noise scheme's power floor
(Section 1).

:class:`SinusoidalLogic` mirrors the API of
:class:`~repro.baselines.continuum.ContinuumNoiseLogic` so the speed
benchmark can sweep all three schemes uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, IdentificationError
from ..noise.synthesis import RngLike, make_rng
from ..units import SimulationGrid

__all__ = ["SinusoidalLogic", "SinusoidalIdentification"]


@dataclass(frozen=True)
class SinusoidalIdentification:
    """Outcome of a sinusoidal-correlator identification."""

    value: int
    decision_slot: int


class SinusoidalLogic:
    """M-valued logic with orthogonal sinusoidal carriers.

    Parameters
    ----------
    frequencies:
        Carrier frequency per logic value (Hz).  Frequencies must be
        distinct, positive and below Nyquist.
    grid:
        Simulation grid.
    amplitude:
        Carrier amplitude (the sinusoidal scheme's defining parameter:
        it must dominate the background noise).
    """

    def __init__(
        self,
        frequencies: Sequence[float],
        grid: SimulationGrid,
        amplitude: float = 1.0,
    ) -> None:
        freqs = [float(f) for f in frequencies]
        if len(freqs) < 2:
            raise ConfigurationError("need at least 2 carrier frequencies")
        if len(set(freqs)) != len(freqs):
            raise ConfigurationError(f"carrier frequencies must be distinct: {freqs}")
        for f in freqs:
            if not (0.0 < f < grid.nyquist):
                raise ConfigurationError(
                    f"carrier {f} Hz outside (0, Nyquist={grid.nyquist:g})"
                )
        if amplitude <= 0:
            raise ConfigurationError(f"amplitude must be positive, got {amplitude}")
        self.frequencies = tuple(freqs)
        self.grid = grid
        self.amplitude = float(amplitude)
        t = np.arange(grid.n_samples) * grid.dt
        self._sin = np.stack([np.sin(2 * np.pi * f * t) for f in freqs])
        self._cos = np.stack([np.cos(2 * np.pi * f * t) for f in freqs])

    @property
    def n_values(self) -> int:
        """Alphabet size M."""
        return len(self.frequencies)

    def encode(
        self,
        value: int,
        phase: float = 0.0,
        noise_rms: float = 0.0,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Wire signal: the value's carrier at a phase, plus channel noise."""
        if not (0 <= value < self.n_values):
            raise ConfigurationError(f"value {value} outside [0, {self.n_values})")
        t = np.arange(self.grid.n_samples) * self.grid.dt
        signal = self.amplitude * np.sin(
            2 * np.pi * self.frequencies[value] * t + phase
        )
        if noise_rms > 0.0:
            signal = signal + make_rng(rng).normal(0.0, noise_rms, signal.shape)
        return signal

    def running_envelopes(self, wire: np.ndarray) -> np.ndarray:
        """Phase-insensitive running correlation magnitude per carrier.

        Quadrature detection: entry ``[i, t]`` is the RMS-normalised
        magnitude of the wire's projection onto carrier i's sin/cos pair
        over slots ``0..t``.
        """
        wire = np.asarray(wire, dtype=float)
        if wire.shape != (self.grid.n_samples,):
            raise ConfigurationError(
                f"wire shape {wire.shape} does not match grid"
            )
        in_phase = np.cumsum(self._sin * wire[None, :], axis=1)
        quadrature = np.cumsum(self._cos * wire[None, :], axis=1)
        wire_energy = np.cumsum(wire * wire)
        # Carrier energy grows as t/2 per component; normalise by both.
        n = np.arange(1, wire.size + 1, dtype=float)
        carrier_energy = n / 2.0
        denom = np.sqrt(carrier_energy * wire_energy[None, :])
        with np.errstate(divide="ignore", invalid="ignore"):
            magnitude = np.where(
                denom > 0,
                np.sqrt(in_phase**2 + quadrature**2) / denom,
                0.0,
            )
        return magnitude

    def identify(
        self,
        wire: np.ndarray,
        margin: float = 0.2,
    ) -> SinusoidalIdentification:
        """Settled-decision identification (same contract as continuum)."""
        if margin <= 0:
            raise ConfigurationError(f"margin must be positive, got {margin}")
        envelopes = self.running_envelopes(wire)
        order = np.argsort(envelopes, axis=0)
        columns = np.arange(envelopes.shape[1])
        leader = order[-1, :]
        top = envelopes[leader, columns]
        second = envelopes[order[-2, :], columns]
        separated = (top - second) >= margin

        final_leader = int(leader[-1])
        ok = separated & (leader == final_leader)
        failures = np.flatnonzero(~ok)
        if failures.size and failures[-1] == envelopes.shape[1] - 1:
            raise IdentificationError(
                "sinusoidal correlator never settles; increase the record "
                "length or relax the margin"
            )
        decision = int(failures[-1]) + 1 if failures.size else 0
        return SinusoidalIdentification(value=final_leader, decision_slot=decision)

    def identification_time_samples(
        self,
        value: int,
        margin: float = 0.2,
        phase: float = 0.0,
        noise_rms: float = 0.0,
        rng: RngLike = None,
    ) -> int:
        """Encode ``value`` and return its settled decision slot."""
        wire = self.encode(value, phase=phase, noise_rms=noise_rms, rng=rng)
        result = self.identify(wire, margin=margin)
        if result.value != value:
            raise IdentificationError(
                f"sinusoidal correlator settled on {result.value}, expected {value}"
            )
        return result.decision_slot
