"""Comparator schemes from the paper's reference list.

* :class:`ContinuumNoiseLogic` — time-averaged correlation over analog
  noise carriers (ref [3]);
* :class:`SinusoidalLogic` — quadrature correlation over sinusoidal
  carriers (ref [5]);
* periodic spike-train logic and its delay-aliasing failure (Section 6):
  :func:`periodic_spike_basis`, :func:`identification_verdict`,
  :func:`misidentification_curve`.
"""

from .continuum import ContinuumIdentification, ContinuumNoiseLogic
from .periodic import (
    DelaySweepPoint,
    identification_verdict,
    misidentification_curve,
    periodic_spike_basis,
)
from .sinusoidal import SinusoidalIdentification, SinusoidalLogic

__all__ = [
    "ContinuumNoiseLogic",
    "ContinuumIdentification",
    "SinusoidalLogic",
    "SinusoidalIdentification",
    "periodic_spike_basis",
    "identification_verdict",
    "misidentification_curve",
    "DelaySweepPoint",
]
