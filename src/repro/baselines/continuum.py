"""Baseline: continuum noise-based logic (the paper's reference [3]).

In continuum noise-based logic, logic values are *analog* orthogonal
noise carriers: independent band-limited Gaussian processes R_i(t).  A
wire transmits the carrier of its value, and the receiver identifies it
by time-averaged correlation against every reference.  Because two
independent noises are only orthogonal *in the average*, the correlator
must integrate for many correlation times of the band before the correct
reference wins reliably — in contrast with the spike scheme, where a
single coincident spike decides (Section 2's speed argument).

:class:`ContinuumNoiseLogic` implements the scheme; its
:meth:`identification_time_samples` measures how long the running
correlator needs before the correct carrier leads every rival by a given
margin and never loses the lead again — a conservative, deterministic
notion of "identified" that the speed benchmark compares against the
spike scheme's first-coincidence latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, IdentificationError
from ..noise.spectra import Spectrum
from ..noise.synthesis import NoiseSynthesizer, RngLike, make_rng
from ..units import SimulationGrid

__all__ = ["ContinuumNoiseLogic", "ContinuumIdentification"]


@dataclass(frozen=True)
class ContinuumIdentification:
    """Outcome of a continuum-correlator identification.

    Attributes
    ----------
    value:
        Index of the winning reference carrier.
    decision_slot:
        First slot from which the winner leads every rival by the margin
        *for the rest of the record* (the settled decision time).
    """

    value: int
    decision_slot: int


class ContinuumNoiseLogic:
    """M-valued logic with continuum Gaussian noise carriers.

    Parameters
    ----------
    n_values:
        Alphabet size M (number of independent reference carriers).
    spectrum / grid:
        Carrier spectrum and simulation grid.
    seed:
        Seed for drawing the reference carriers.
    """

    def __init__(
        self,
        n_values: int,
        spectrum: Spectrum,
        grid: SimulationGrid,
        seed: RngLike = None,
    ) -> None:
        if n_values < 2:
            raise ConfigurationError(f"n_values must be >= 2, got {n_values}")
        self.n_values = n_values
        self.grid = grid
        self.spectrum = spectrum
        synthesizer = NoiseSynthesizer(spectrum, grid)
        rng = make_rng(seed)
        self.references = np.stack(
            [synthesizer.generate(rng) for _unused in range(n_values)]
        )

    def independent_samples_per_slot(self) -> float:
        """Effective statistically independent samples per grid slot.

        A band of width B carries 2B independent samples per second
        (Nyquist), so each grid slot contributes ``2·B·dt`` effective
        samples to a correlation estimate.  Oversampled records (the
        usual case here) contribute far less than one per slot.
        """
        bandwidth = self.spectrum.band.width
        return min(1.0, 2.0 * bandwidth * self.grid.dt)

    def statistical_settling_slot(self, margin: float, k_sigma: float = 4.0) -> int:
        """Earliest slot at which a margin-based decision is *trustworthy*.

        A rival carrier's sample correlation after n_eff independent
        samples fluctuates with standard deviation ≈ 1/sqrt(n_eff); a
        receiver can only trust a separation of ``margin`` once
        ``k_sigma / sqrt(n_eff) <= margin``.  This is the averaging-time
        requirement of continuum noise-based logic (the paper's ref [3])
        — the cost the spike scheme avoids.
        """
        if margin <= 0:
            raise ConfigurationError(f"margin must be positive, got {margin}")
        if k_sigma <= 0:
            raise ConfigurationError(f"k_sigma must be positive, got {k_sigma}")
        per_slot = self.independent_samples_per_slot()
        required_independent = (k_sigma / margin) ** 2
        return int(np.ceil(required_independent / per_slot))

    def encode(self, value: int, noise_rms: float = 0.0, rng: RngLike = None) -> np.ndarray:
        """Wire signal for ``value``: its carrier plus optional white noise.

        ``noise_rms`` adds i.i.d. Gaussian observation noise, modelling a
        noisy channel; the identification time grows accordingly.
        """
        if not (0 <= value < self.n_values):
            raise ConfigurationError(
                f"value {value} outside [0, {self.n_values})"
            )
        signal = self.references[value].copy()
        if noise_rms > 0.0:
            signal = signal + make_rng(rng).normal(0.0, noise_rms, signal.shape)
        return signal

    def running_correlations(self, wire: np.ndarray) -> np.ndarray:
        """Normalised running correlation of ``wire`` with every reference.

        Entry ``[i, t]`` is the sample correlation coefficient between
        the wire and reference i over slots ``0..t``.  Early slots are
        noisy by construction; the identification logic accounts for it.
        """
        wire = np.asarray(wire, dtype=float)
        if wire.shape != (self.grid.n_samples,):
            raise ConfigurationError(
                f"wire shape {wire.shape} does not match grid "
                f"({self.grid.n_samples} samples)"
            )
        cross = np.cumsum(self.references * wire[None, :], axis=1)
        wire_energy = np.cumsum(wire * wire)
        ref_energy = np.cumsum(self.references * self.references, axis=1)
        denom = np.sqrt(ref_energy * wire_energy[None, :])
        with np.errstate(divide="ignore", invalid="ignore"):
            correlations = np.where(denom > 0, cross / denom, 0.0)
        return correlations

    def identify(
        self,
        wire: np.ndarray,
        margin: float = 0.2,
        k_sigma: float = 4.0,
    ) -> ContinuumIdentification:
        """Settled-decision identification of a wire signal.

        Finds the smallest slot t* such that one reference's running
        correlation exceeds every rival's by ``margin`` at *all* slots
        ≥ t*, then clamps the decision no earlier than
        :meth:`statistical_settling_slot` — before that point the
        separation cannot be trusted regardless of its observed value.
        Raises :class:`IdentificationError` when no reference ever
        settles (record too short or margin too strict).
        """
        if margin <= 0:
            raise ConfigurationError(f"margin must be positive, got {margin}")
        correlations = self.running_correlations(wire)
        order = np.argsort(correlations, axis=0)
        leader = order[-1, :]
        second = correlations[order[-2, :], np.arange(correlations.shape[1])]
        top = correlations[leader, np.arange(correlations.shape[1])]
        separated = (top - second) >= margin

        final_leader = int(leader[-1])
        ok = separated & (leader == final_leader)
        # Find the last slot where the condition fails; settle after it.
        failures = np.flatnonzero(~ok)
        if failures.size and failures[-1] == correlations.shape[1] - 1:
            raise IdentificationError(
                "running correlation never settles; increase the record length "
                "or relax the margin"
            )
        decision = int(failures[-1]) + 1 if failures.size else 0
        decision = max(decision, self.statistical_settling_slot(margin, k_sigma))
        if decision >= correlations.shape[1]:
            raise IdentificationError(
                "record shorter than the statistical settling time "
                f"({decision} slots); lengthen the record"
            )
        return ContinuumIdentification(value=final_leader, decision_slot=decision)

    def identification_time_samples(
        self,
        value: int,
        margin: float = 0.2,
        noise_rms: float = 0.0,
        rng: RngLike = None,
        k_sigma: float = 4.0,
    ) -> int:
        """Convenience: encode ``value`` and return its settled decision slot."""
        wire = self.encode(value, noise_rms=noise_rms, rng=rng)
        result = self.identify(wire, margin=margin, k_sigma=k_sigma)
        if result.value != value:
            raise IdentificationError(
                f"continuum correlator settled on {result.value}, expected {value}"
            )
        return result.decision_slot
