"""Baseline: periodic spike-train logic and its aliasing failure.

Section 6 asks "why noise spikes and why not periodic?" and answers:
orthogonal periodic spike trains are necessarily time-shifted copies of
one pattern, so a circuit delay equal to the wire spacing maps one basis
element *exactly onto another* — the identification aliases and the
circuit fails silently.  Random trains have no such translational
symmetry: a delayed random train coincides with any reference only at
chance level, so delays degrade gracefully instead of catastrophically.

This module builds the periodic basis and quantifies both behaviours:

* :func:`periodic_spike_basis` — M phase-shifted copies of a uniform
  train (the best-filling periodic arrangement the paper describes);
* :func:`identification_verdict` — plurality-coincidence identification
  of a (delayed) signal train against a basis;
* :func:`misidentification_curve` — verdict error rate as a function of
  applied delay, the Figure-style artefact for claim C2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..hyperspace.basis import HyperspaceBasis
from ..spikes.generators import periodic_train
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid

__all__ = [
    "periodic_spike_basis",
    "identification_verdict",
    "DelaySweepPoint",
    "misidentification_curve",
]


def periodic_spike_basis(
    n_elements: int,
    spacing_samples: int,
    grid: SimulationGrid,
) -> HyperspaceBasis:
    """Orthogonal periodic basis: M wires, period ``M × spacing``.

    Wire i fires at ``i * spacing + k * (M * spacing)`` — the densest
    orthogonal periodic packing with inter-wire spacing ``spacing``.
    Delaying wire i by ``j * spacing`` reproduces wire ``(i + j) mod M``
    exactly: the aliasing hazard.
    """
    if n_elements < 2:
        raise ConfigurationError(f"n_elements must be >= 2, got {n_elements}")
    if spacing_samples < 1:
        raise ConfigurationError(
            f"spacing_samples must be >= 1, got {spacing_samples}"
        )
    period = n_elements * spacing_samples
    if period > grid.n_samples:
        raise ConfigurationError(
            f"one period ({period} samples) exceeds the record "
            f"({grid.n_samples} samples)"
        )
    trains = [
        periodic_train(period, grid, phase_samples=i * spacing_samples)
        for i in range(n_elements)
    ]
    labels = [f"P{i}" for i in range(n_elements)]
    return HyperspaceBasis(trains, labels)


def identification_verdict(
    basis: HyperspaceBasis,
    signal: SpikeTrain,
    window: int = 0,
    min_confidence: float = 0.0,
) -> Optional[int]:
    """Plurality-coincidence verdict: which element does ``signal`` match?

    Counts coincidences (within ``window`` samples) between the signal
    and every reference train; returns the element with the most hits, or
    None when no reference ever coincides.  Ties resolve to the lowest
    index — deterministic, and irrelevant in practice because the tests
    operate far from ties.

    ``min_confidence`` (fraction of the signal's spikes that must
    coincide with the winner) turns the verdict into a *fingerprint*
    match: chance-level coincidences with a random basis are rejected as
    "no verdict", while a periodic basis aliased by a spacing-multiple
    delay still matches a wrong element at full confidence — exactly the
    Section 6 distinction.
    """
    if not (0.0 <= min_confidence <= 1.0):
        raise ConfigurationError(
            f"min_confidence must lie in [0, 1], got {min_confidence}"
        )
    best_element: Optional[int] = None
    best_hits = 0
    for element, reference in enumerate(basis.trains):
        if window == 0:
            hits = signal.overlap_count(reference)
        else:
            ref = reference.indices
            positions = np.searchsorted(ref, signal.indices)
            hits = 0
            for spike, pos in zip(signal.indices, positions):
                left = pos > 0 and spike - ref[pos - 1] <= window
                right = pos < ref.size and ref[pos] - spike <= window
                if left or right:
                    hits += 1
        if hits > best_hits:
            best_hits = hits
            best_element = element
    if best_element is not None and len(signal) > 0:
        if best_hits / len(signal) < min_confidence:
            return None
    return best_element


@dataclass(frozen=True)
class DelaySweepPoint:
    """One point of the delay sweep.

    Attributes
    ----------
    delay_samples:
        Applied delay.
    wrong_rate:
        Fraction of elements identified as a *different* element — the
        dangerous failure: the circuit silently computes with a wrong
        value.
    silent_rate:
        Fraction of elements with no verdict at all (no coincidence with
        any reference) — a detectable, recoverable condition.
    aliased:
        True when at least one delayed element was identified as a
        different element with full confidence (every spike coincided) —
        the catastrophic periodic failure mode of Section 6.
    """

    delay_samples: int
    wrong_rate: float
    silent_rate: float
    aliased: bool

    @property
    def error_rate(self) -> float:
        """Total failure fraction (wrong + silent)."""
        return self.wrong_rate + self.silent_rate


def misidentification_curve(
    basis: HyperspaceBasis,
    delays: Sequence[int],
    window: int = 0,
    wrap: bool = True,
    min_confidence: float = 0.0,
) -> List[DelaySweepPoint]:
    """Verdict error rate vs applied delay, over all basis elements.

    For each delay d and element i, the reference train of i is delayed
    by d (wrapping by default, so spike counts stay comparable) and
    re-identified against the undelayed basis.  The periodic basis shows
    error-rate 1.0 exactly at multiples of the wire spacing; a random
    basis stays near 0 for all small delays (spikes stop coinciding with
    anything, but the *correct* element still wins whatever residual
    coincidences remain) and degrades to chance only at delays beyond
    the coincidence window.
    """
    points: List[DelaySweepPoint] = []
    for delay in delays:
        if delay < 0:
            raise ConfigurationError(f"delays must be >= 0, got {delay}")
        wrong = 0
        silent = 0
        aliased = False
        for element, reference in enumerate(basis.trains):
            delayed = reference.shifted(delay, wrap=wrap)
            verdict = identification_verdict(
                basis, delayed, window=window, min_confidence=min_confidence
            )
            if verdict is None:
                silent += 1
            elif verdict != element:
                wrong += 1
                hits = delayed.overlap_count(basis.trains[verdict])
                if hits == len(delayed) and hits > 0:
                    aliased = True
        points.append(
            DelaySweepPoint(
                delay_samples=int(delay),
                wrong_rate=wrong / basis.size,
                silent_rate=silent / basis.size,
                aliased=aliased,
            )
        )
    return points
