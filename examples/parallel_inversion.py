"""Parallel function inversion with set-valued gates.

The hyperspace carries many values on one wire; a set-valued gate
evaluates a function on *all* of them in a single pass.  This example
inverts ``f(x) = (x² + 3) mod 8``: the full input superposition flows
through the lifted gate once, and the preimage of the target output is
read back — contrast with querying f eight times.

Run: ``python examples/parallel_inversion.py``
"""

from repro import Superposition, build_demux_basis, decode_superposition
from repro.logic.gates import gate_from_function
from repro.logic.set_gates import SetValuedGate
from repro.units import format_time


def main() -> None:
    basis = build_demux_basis(8, rng=314)
    f = gate_from_function(
        "f", [basis], basis, lambda x: (x * x + 3) % 8
    )
    lifted = SetValuedGate(f)

    # 1. Forward pass on the FULL superposition: all 8 inputs at once.
    everything = Superposition.full(basis)
    wire_in = everything.encode(basis)
    result = lifted.transmit(wire_in)
    print("f(x) = (x^2 + 3) mod 8 evaluated on all x in one pass:")
    print(f"  input wire:  {len(wire_in)} spikes (8 values superposed)")
    print(f"  image set:   {sorted(result.members)} "
          f"({result.combinations_evaluated} evaluations internally)")

    # 2. Invert: which x give f(x) = 4?  Read the preimage table the
    #    lifted gate exposes — physically this is the routing pattern a
    #    reversed gate would implement.
    target = 4
    preimage = sorted(x for (x,) in lifted.preimage(target))
    print(f"\npreimage of {target}: x in {preimage}")
    # Every odd x has x² ≡ 1 (mod 8), so f(odd) = 4.
    assert preimage == [1, 3, 5, 7]

    # 3. Verify physically: the superposition of the preimage maps to
    #    exactly {target}.
    candidates = Superposition.of(basis, preimage)
    confirmed = lifted.transmit(candidates.encode(basis))
    assert confirmed.members == frozenset({target})
    print(f"confirmed: f({preimage}) = "
          f"{sorted(confirmed.members)} exactly")

    # 4. And the readout is fast: decoding the image wire needs one
    #    coincidence per member.
    first_spikes = sorted(
        basis.train(member).first_spike_index() for member in result.members
    )
    dt = basis.grid.dt
    print(f"\nimage members all witnessed within "
          f"{format_time(first_spikes[-1] * dt)} of observation start")
    decoded = decode_superposition(basis, result.output)
    assert decoded.members == result.members


if __name__ == "__main__":
    main()
