"""Quickstart: neuro-bits in five minutes.

Builds a 4-valued hyperspace from band-limited white noise, transmits a
value, identifies it by its first coincident spike, runs a gate, and
puts several neuro-bits on one wire.

Run: ``python examples/quickstart.py``
"""

from repro import (
    CoincidenceCorrelator,
    Superposition,
    build_demux_basis,
    decode_superposition,
    isi_statistics,
    mod_sum_gate,
)
from repro.units import format_time


def main() -> None:
    # 1. Build a 4-element hyperspace basis: one noise record, its
    #    zero-crossing spikes, dealt over 4 wires by a demultiplexer-based
    #    orthogonator.  Every element is an orthogonal random spike train.
    basis = build_demux_basis(4, rng=2016)
    print("hyperspace:", basis.describe())
    for label, train in basis:
        stats = isi_statistics(train)
        print(f"  {label}: {len(train)} spikes, "
              f"tau = {format_time(stats.mean_isi_seconds)}")

    # 2. Transmit the value 2: the wire carries element 2's reference train.
    wire = basis.encode(2)

    # 3. Identify it.  Because basis elements never share a spike slot,
    #    the FIRST spike decides — no time averaging (the paper's speed
    #    argument).
    correlator = CoincidenceCorrelator(basis)
    result = correlator.identify(wire)
    print(f"\nidentified {result.label} after ONE spike at "
          f"t = {format_time(result.decision_time(basis.grid.dt))}")

    # 4. A multi-valued gate: (a + b) mod 4 over neuro-bit wires.
    gate = mod_sum_gate(basis)
    transmission = gate.transmit(basis.encode(3), basis.encode(2))
    print(f"MODSUM(3, 2) = {transmission.value} "
          f"(decided at {format_time(transmission.decision_slot * basis.grid.dt)})")

    # 5. Several neuro-bits on a single wire: the superposition is the
    #    union of reference trains, recovered exactly on the other end.
    sup = Superposition.of(basis, [0, 3])
    one_wire = sup.encode(basis)
    recovered = decode_superposition(basis, one_wire)
    print(f"superposition {sorted(sup.members)} -> one wire "
          f"({len(one_wire)} spikes) -> {sorted(recovered.members)}")


if __name__ == "__main__":
    main()
