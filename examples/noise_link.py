"""A self-clocked data link: bytes over one neuro-bit wire.

Combines the demux orthogonator's computer time with the symbol codec:
the transmitter and receiver share only (a) the noise-derived package
timeline and (b) which wire is which — then a single wire carries an
arbitrary byte stream with one spike per radix-M digit, clocked by the
noise itself.  Also demonstrates routed delivery: the message is steered
through a 2-stage spike-routing fabric by neuro-bit addresses.

Run: ``python examples/noise_link.py``
"""

from repro import DemuxOrthogonator, build_demux_basis, zero_crossings
from repro.hyperspace.builders import paper_default_synthesizer
from repro.hyperspace.codec import NeuroBitCodec
from repro.logic.routing import RoutingFabric
from repro.noise.synthesis import make_rng
from repro.units import format_time


def main() -> None:
    # Shared infrastructure: one noise record dealt over 16 wires.
    synthesizer = paper_default_synthesizer()
    record = synthesizer.generate(make_rng(77))
    source = zero_crossings(record, synthesizer.grid)
    output = DemuxOrthogonator.with_outputs(16).transform(source)

    codec = NeuroBitCodec(output)
    capacity = codec.capacity()
    print(f"link: radix {capacity.radix}, "
          f"{capacity.digits_per_byte} digits/byte, "
          f"{capacity.packages_available} packages "
          f"=> {capacity.bytes_capacity} bytes per record")

    message = b"Towards Brain-inspired Computing"
    wire = codec.encode(message)
    dt = synthesizer.grid.dt
    last_spike = wire.indices[-1] * dt
    print(f"\nmessage: {message!r}")
    print(f"encoded: {len(wire)} spikes on ONE wire, "
          f"transmitted in {format_time(last_spike)}")

    received = codec.decode(wire)
    print(f"decoded: {received!r}")
    assert received == message

    throughput = len(message) / last_spike
    print(f"throughput: {throughput / 1e9:.2f} GB/s "
          f"(one spike per digit, no clock line)")

    # Routed delivery: two address neuro-bits steer the message wire
    # through a 4-ary, depth-2 routing fabric to leaf 9 (digits 2, 1).
    address_basis = build_demux_basis(4, rng=78)
    fabric = RoutingFabric(address_basis, depth=2)
    delivery = fabric.deliver(
        [address_basis.encode(2), address_basis.encode(1)], wire
    )
    print(f"\nrouted to leaf {delivery.leaf} of {fabric.n_leaves}; "
          f"route established after "
          f"{format_time(delivery.total_latency_slot * dt)}")
    assert delivery.leaf == 9


if __name__ == "__main__":
    main()
