"""Variation tolerance: random spike logic survives delays, periodic fails.

Section 6: delayed periodic spike trains alias exactly onto other basis
elements — a circuit built on them silently computes with wrong values
when processing/environmental variations shift its delays.  Random
trains are unique fingerprints: the same delays at worst suppress the
verdict, which a checker can detect and retry.

This example runs both schemes through the event-driven simulator's
delay line and prints the verdicts side by side.

Run: ``python examples/variation_tolerance.py``
"""

from repro import build_demux_basis
from repro.baselines.periodic import identification_verdict, periodic_spike_basis
from repro.hyperspace.builders import paper_default_synthesizer
from repro.simulator.networks import delayed_identification_network
from repro.units import format_time


def describe(verdict, truth) -> str:
    if verdict is None:
        return "NO VERDICT (detectable, safe)"
    if verdict == truth:
        return f"correct ({verdict})"
    return f"WRONG -> {verdict} (silent corruption!)"


def main() -> None:
    synthesizer = paper_default_synthesizer()
    grid = synthesizer.grid
    spacing = 32  # samples between periodic wires (= 100 ps)

    periodic = periodic_spike_basis(4, spacing, grid)
    random = build_demux_basis(4, synthesizer=synthesizer, rng=6)

    truth = 1  # the element each wire actually carries
    delays = [0, 2, spacing, 2 * spacing]

    print("verdicts for a wire carrying element 1, after a delay line")
    print(f"(coincidence window 2 samples, confidence >= 50%)\n")
    print(f"{'delay':>10s} | {'periodic basis':<34s} | {'random basis':<30s}")
    for delay in delays:
        row = []
        for basis in (periodic, random):
            delayed = basis.trains[truth].shifted(delay, wrap=True)
            verdict = identification_verdict(
                basis, delayed, window=2, min_confidence=0.5
            )
            row.append(describe(verdict, truth))
        print(f"{format_time(delay * grid.dt):>10s} | {row[0]:<34s} | {row[1]:<30s}")

    # The same failure demonstrated on an actual event-driven circuit:
    # signal -> delay line -> coincidence detectors against references.
    print("\nevent-driven circuit (delay = one periodic spacing):")
    engine, probes = delayed_identification_network(
        periodic.trains[0], list(periodic.trains), delay=spacing
    )
    engine.run(until=grid.n_samples + spacing + 4)
    hits = {i: len(p.slots) for i, p in enumerate(probes) if p.slots}
    print(f"  periodic: coincidence counts by reference: {hits}")
    print("  -> every spike of element 0 now matches element 1: aliased.")

    engine, probes = delayed_identification_network(
        random.trains[0], list(random.trains), delay=spacing
    )
    engine.run(until=grid.n_samples + spacing + 4)
    hits = {i: len(p.slots) for i, p in enumerate(probes) if p.slots}
    total = len(random.trains[0])
    print(f"  random:   coincidence counts by reference: {hits} "
          f"(out of {total} spikes)")
    print("  -> chance-level residue only; no confident wrong match.")


if __name__ == "__main__":
    main()
