"""Sequential logic on spike packages: a self-clocked counter.

Section 3(i): the demultiplexer-based orthogonator's spike packages
define a discrete computer time, which "makes easy/natural to construct
sequential logic operations".  This example transmits a symbol stream
(one value per package) and runs two clocked machines over it — a
modulo counter and an accumulator — with no external clock anywhere:
the noise itself paces the computation.

Run: ``python examples/sequential_counter.py``
"""

from repro import DemuxOrthogonator, zero_crossings
from repro.hyperspace.builders import paper_default_synthesizer
from repro.logic.sequential import (
    PackageClock,
    SymbolStream,
    accumulator_machine,
    counter_machine,
)
from repro.noise.synthesis import make_rng
from repro.units import format_time


def main() -> None:
    # Noise -> spikes -> 4-wire demux: the packages are the clock.
    synthesizer = paper_default_synthesizer()
    record = synthesizer.generate(make_rng(2016))
    source = zero_crossings(record, synthesizer.grid)
    output = DemuxOrthogonator.with_outputs(4).transform(source)

    clock = PackageClock(output)
    spans = clock.tick_duration_samples()
    dt = synthesizer.grid.dt
    print(f"computer time: {clock.n_packages} packages "
          f"(mean tick {format_time(float(spans.mean()) * dt)}, "
          f"jitter {format_time(float(spans.std()) * dt)}) — "
          "a self-clocked, variable-period machine\n")

    stream = SymbolStream(clock)
    message = [3, 1, 2, 0, 2, 3, 1, 1]
    wire = stream.encode(message)
    print(f"input stream : {message}")
    print(f"wire spikes  : {len(wire)} (one per package)")

    # Counter: counts ticks modulo 4 regardless of symbol values.
    counter = counter_machine(4)
    counted = stream.decode(counter.run_stream(stream, wire))[: len(message)]
    print(f"counter out  : {counted}")

    # Accumulator: running sum modulo 4.
    accumulator = accumulator_machine(4)
    summed = stream.decode(accumulator.run_stream(stream, wire))[: len(message)]
    print(f"accumulator  : {summed}")

    expected = []
    total = 0
    for value in message:
        total = (total + value) % 4
        expected.append(total)
    assert summed == expected
    assert counted == [(k + 1) % 4 for k in range(len(message))]

    first = clock.packages[0]
    last = clock.packages[len(message) - 1]
    elapsed = (last.end - first.start) * dt
    print(f"\n8 sequential operations completed in {format_time(elapsed)} "
          "of physical time, clocked by noise alone.")


if __name__ == "__main__":
    main()
