"""Build a corpus on disk, host it read-only, query it by row range.

The out-of-core companion to ``serve_and_query.py``: instead of
shipping a packed bitset to the server, the client names a corpus the
server already maps (``docs/corpus.md``) and asks for a row window —
no spike data crosses the wire on the request path at all.

Three stages, shrunk to executable-documentation size:

1. **Build** — stream batches into a :class:`CorpusStore` (what
   ``repro corpus build`` does from the command line).  Each append
   lands as one word-aligned packed segment plus a manifest update.
2. **Serve** — start an embedded server with ``corpus=`` set (the
   ``repro serve --corpus`` path).  The server maps the segments
   read-only; a PING probe advertises what it hosts.
3. **Query** — ``corpus_identify`` / ``corpus_membership`` round
   trips, checked bit-identical against computing the same window
   locally from the mapping.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.logic.correlator import CoincidenceCorrelator
from repro.pipeline.corpus import CorpusStore
from repro.serving.client import ServingClient
from repro.serving.server import ServerConfig, ServerThread, build_serving_basis
from repro.units import paper_white_grid

CONFIG = ServerConfig(
    n_samples=4096, basis_size=8, source_isi_samples=16, seed=11, jobs=1
)
CORPUS_ROWS = 96
APPEND_ROWS = 24  # rows per streamed append (one packed segment each)


def main() -> None:
    basis = build_serving_basis(CONFIG)
    grid = paper_white_grid(n_samples=CONFIG.n_samples)
    rng = np.random.default_rng(11)
    truth = rng.integers(CONFIG.basis_size, size=CORPUS_ROWS)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "library"

        # 1. Build: stream the corpus to disk in segment-sized appends.
        store = CorpusStore.create(root, grid)
        with store.writer() as writer:
            for lo in range(0, CORPUS_ROWS, APPEND_ROWS):
                rows = truth[lo:lo + APPEND_ROWS]
                writer.append(basis.as_batch().select_rows(rows))
        info = store.info()
        print(
            f"built corpus {root.name!r}: {info['n_rows']} rows in "
            f"{info['n_segments']} segments, {info['disk_bytes']} bytes"
        )

        # 2. Serve: host the directory read-only next to the basis.
        serve_config = ServerConfig(
            n_samples=CONFIG.n_samples,
            basis_size=CONFIG.basis_size,
            source_isi_samples=CONFIG.source_isi_samples,
            seed=CONFIG.seed,
            jobs=1,
            corpus=str(root),
            corpus_chunk_rows=16,
        )
        with ServerThread(serve_config) as handle:
            print(f"server listening on {handle.host}:{handle.port}")
            with ServingClient(handle.host, handle.port) as client:
                pong = client.ping()
                print(
                    f"ping: hosting {pong['corpus']!r} "
                    f"({pong['corpus_rows']} rows, "
                    f"protocol v{pong['protocol_version']})"
                )

                # 3. Query by name + row range; nothing packed is sent.
                reply = client.corpus_identify(root.name, 0, CORPUS_ROWS)
                print(
                    f"identified {len(reply.elements)} rows in "
                    f"{reply.summary['n_shards']} mapped chunks "
                    f"(transport {reply.summary['transport']})"
                )
                members = client.corpus_membership(root.name, 8, 40)

        # Ground truth: the same windows computed locally off the map.
        correlator = CoincidenceCorrelator(basis)
        local = correlator.identify_batch(
            store.open_rows(0, CORPUS_ROWS), missing="none"
        )
        local_members = correlator.detect_members_batch(
            store.open_rows(8, 40)
        )

    assert np.array_equal(reply.elements, truth), "served wrong elements"
    assert np.array_equal(reply.elements, local.elements)
    assert np.array_equal(reply.decision_slots, local.decision_slots)
    assert np.array_equal(members.membership, local_members.membership)
    assert np.array_equal(members.first_slots, local_members.first_slots)
    assert reply.summary["server_residency"]["raster"] is False
    print("corpus query answers match local ground truth, bit for bit")


if __name__ == "__main__":
    main()
