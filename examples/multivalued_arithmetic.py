"""Multi-valued arithmetic: one radix-8 wire replaces three binary wires.

The paper's abstract promises "multi-valued logic, significantly
increasing the complexity of computer circuits by allowing several
neuro-bits to be transmitted on a single wire".  This example builds the
same 6-bit addition twice:

* a classic binary ripple adder — 6 digit wires per operand, 12 gates;
* a radix-8 adder — 2 digit wires per operand, 4 gates;

runs both physically on neuro-bit spike trains, and checks them against
integer arithmetic.

Run: ``python examples/multivalued_arithmetic.py``
"""

from repro import build_demux_basis
from repro.logic.synthesis import adder_reference, comparator, ripple_adder
from repro.units import format_time


def run_adder(radix: int, digits: int, a: int, b: int, basis) -> dict:
    """Build, evaluate physically, and summarise one adder configuration."""
    adder = ripple_adder(digits, basis)
    wires = {"cin": basis.encode(0)}
    for d in range(digits):
        wires[f"a{d}"] = basis.encode((a // radix**d) % radix)
        wires[f"b{d}"] = basis.encode((b // radix**d) % radix)
    transmission = adder.transmit(wires)
    total = sum(
        transmission.values[f"s{d}"] * radix**d for d in range(digits)
    ) + transmission.values[f"c{digits}"] * radix**digits
    return {
        "gates": adder.n_gates(),
        "operand_wires": digits,
        "result": total,
        "critical_path": transmission.critical_path_slot,
    }


def main() -> None:
    a, b = 45, 18  # both fit in 6 bits / 2 radix-8 digits
    print(f"computing {a} + {b} = {a + b} in two logic families\n")

    binary_basis = build_demux_basis(2, rng=1)
    radix8_basis = build_demux_basis(8, rng=2)

    binary = run_adder(2, 6, a, b, binary_basis)
    radix8 = run_adder(8, 2, a, b, radix8_basis)

    dt = binary_basis.grid.dt
    print(f"{'':<16s}{'binary':>10s}{'radix-8':>10s}")
    print(f"{'operand wires':<16s}{binary['operand_wires']:>10d}"
          f"{radix8['operand_wires']:>10d}")
    print(f"{'gates':<16s}{binary['gates']:>10d}{radix8['gates']:>10d}")
    print(f"{'result':<16s}{binary['result']:>10d}{radix8['result']:>10d}")
    print(f"{'critical path':<16s}"
          f"{format_time(binary['critical_path'] * dt):>10s}"
          f"{format_time(radix8['critical_path'] * dt):>10s}")

    assert binary["result"] == a + b
    assert radix8["result"] == a + b

    # A radix-8 magnitude comparator on the same wires.
    cmp_circuit = comparator(2, radix8_basis)
    wires = {}
    for d in range(2):
        wires[f"a{d}"] = radix8_basis.encode((a // 8**d) % 8)
        wires[f"b{d}"] = radix8_basis.encode((b // 8**d) % 8)
    verdict = cmp_circuit.transmit(wires).values[cmp_circuit.outputs[0]]
    meaning = {0: "a < b", 1: "a == b", 2: "a > b"}[verdict]
    print(f"\ncomparator verdict: {meaning}")
    assert verdict == 2

    # Sanity against the golden model.
    reference = adder_reference(2, 8, a, b, 0)
    print("golden model digits:", reference)


if __name__ == "__main__":
    main()
