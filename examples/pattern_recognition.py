"""Brain-style recognition: membership tests over a large hyperspace.

Section 5 conjectures "the brain may be using such a logic approach,
allowing it to do many complex reasoning and recognition operations
extremely fast".  This example models a tiny version of that: a
"memory" of concepts lives in a 2^N − 1-element hyperspace built from N
noise wires; a stimulus is a superposition of feature neuro-bits on a
single wire; recognition = set-membership tests, each decided by the
first coincident spike.

Run: ``python examples/pattern_recognition.py``
"""

from repro import (
    CoincidenceCorrelator,
    Superposition,
    build_intersection_basis,
)
from repro.hyperspace.superposition import first_detection_slots
from repro.units import format_time


def main() -> None:
    # A 5-input intersection orthogonator gives 2^5 − 1 = 31 orthogonal
    # neuro-bits from 5 noise wires (homogenized so all fire comparably).
    basis = build_intersection_basis(5, common_amplitude=0.945, rng=99)
    print(f"concept space: {basis.size} neuro-bits from 5 noise wires")
    print(basis.describe())

    # Name a few concepts.
    concepts = {
        "cat": 3, "dog": 7, "bird": 11, "fish": 19,
        "stripes": 23, "fur": 27, "wings": 30,
    }

    # A stimulus: "something with fur and stripes that is a cat" — three
    # neuro-bits superposed on ONE wire.
    stimulus = Superposition.of(
        basis, [concepts["cat"], concepts["fur"], concepts["stripes"]]
    )
    wire = stimulus.encode(basis)
    print(f"\nstimulus wire carries {len(wire)} spikes "
          f"({len(stimulus)} concepts superposed)")

    # Recognition: membership test per concept; the first coincidence
    # with a concept's reference train confirms it.
    correlator = CoincidenceCorrelator(basis)
    detections = first_detection_slots(basis, wire)
    dt = basis.grid.dt

    print("\nrecognition results:")
    for name, element in sorted(concepts.items()):
        if element in detections:
            when = format_time(detections[element] * dt)
            print(f"  {name:<8s} PRESENT  (first coincidence at {when})")
        else:
            present = correlator.contains(wire, element)
            assert not present
            print(f"  {name:<8s} absent")

    recognized = {e for e in detections}
    expected = set(stimulus.members)
    assert recognized == expected, (recognized, expected)

    earliest = min(detections.values()) * dt
    print(f"\nfirst concept recognized after {format_time(earliest)} — "
          "one spike is enough; no averaging, no clock.")


if __name__ == "__main__":
    main()
