"""Serve and query: the packed-bitset RPC front-end, end to end.

Starts an embedded serving front-end (``docs/serving.md``) on an
ephemeral port, sends it a batch of wires over the binary protocol
(``docs/protocol.md``), and checks the streamed answers against local
ground truth — the same round trip ``repro serve`` offers out of
process, shrunk to a grid small enough to run as executable
documentation.

The payload crosses the wire as the ``np.packbits`` bitset and is
computed on in exactly that form: the response's residency blocks
(printed below) must report ``raster=False`` on the server and in
every shard.
"""

import numpy as np

from repro.serving.client import ServingClient
from repro.serving.server import ServerConfig, ServerThread, build_serving_basis

# A small serving universe: an 8-element basis on a 4096-slot grid.
CONFIG = ServerConfig(
    n_samples=4096, basis_size=8, source_isi_samples=16, seed=11, jobs=1
)


def main() -> None:
    # The serving basis is deterministic in the config knobs, so the
    # client side can rebuild it and draw wires with known answers.
    basis = build_serving_basis(CONFIG)
    truth = np.array([3, 1, 4, 4, 0, 7])
    wires = basis.as_batch().select_rows(truth)

    with ServerThread(CONFIG) as handle:
        print(f"server listening on {handle.host}:{handle.port}")
        with ServingClient(handle.host, handle.port) as client:
            reply = client.identify(wires, n_shards=2)
            print(f"identified elements : {reply.elements.tolist()}")
            print(f"decision slots      : {reply.decision_slots.tolist()}")
            print(f"spikes inspected    : {reply.spikes_inspected.tolist()}")
            print(f"transport           : {reply.summary['transport']}")
            print(f"server residency    : {reply.summary['server_residency']}")
            for shard in reply.shards:
                print(
                    f"  shard rows [{shard['row_start']}, "
                    f"{shard['row_stop']}) residency {shard['residency']} "
                    f"in {shard['wall_seconds'] * 1e3:.2f} ms"
                )

            members = client.membership(wires)

    assert np.array_equal(reply.elements, truth), "served wrong elements"
    assert not reply.summary["server_residency"]["raster"]
    assert all(not s["residency"]["raster"] for s in reply.shards)
    # Each wire is a pure basis element: membership is one-hot truth.
    expected = np.zeros((truth.size, CONFIG.basis_size), dtype=bool)
    expected[np.arange(truth.size), truth] = True
    assert np.array_equal(members.membership, expected)
    print("served results match local ground truth")


if __name__ == "__main__":
    main()
