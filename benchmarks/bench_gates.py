"""Benchmark C6: gate correctness and latency over the hyperspace.

Section 5: elementary gate and set operations are exact (deterministic
logic) and fast (first-coincidence latency) even as the alphabet grows.
"""

import pytest

from repro.experiments.gates import run_gates


@pytest.mark.benchmark(group="claims")
def test_gates(benchmark, archive):
    result = benchmark.pedantic(run_gates, rounds=1, iterations=1)
    archive("c6_gates.txt", result.render())

    assert all(p.all_correct for p in result.points)
    assert result.adder_correct
    # Latency stays within a few mean ISIs of the densest element: the
    # M=8 basis fires each element every ~8 source-ISIs (~700 ps), so a
    # physical decision within ~3 ns honours "extremely fast".
    for point in result.points:
        assert point.p90_latency_samples * result.dt < 3e-9
