"""Diff two run-artifact trees and fail on numeric result drift.

The determinism companion to ``compare_bench.py``: where that gate
watches *wall time*, this one watches *values*.  Given a baseline and a
candidate — each either one artifact JSON or a directory of them (as
written by ``repro run --output-dir``) — it deep-compares the
deterministic ``result`` block of every experiment and exits non-zero
when any value drifts beyond tolerance.  Missing experiments, missing
keys and shape mismatches are drift too: a result silently losing a
field must not pass the gate.

Volatile wall-time fields inside result payloads (``wall_seconds``,
``build_seconds`` — the fields the pipeline already documents as the
intentionally non-deterministic ones) are skipped everywhere.

``--require NAME`` (repeatable) pins an experiment into the gate: the
comparison fails if NAME is absent from **either** side.  Without it a
brand-new experiment silently rides through as "(new artifact, not in
baseline)" — CI lists every spec it expects so the gate cannot skip
one that stopped being produced.

Usage::

    python benchmarks/compare_artifacts.py baseline_dir/ candidate_dir/
    python benchmarks/compare_artifacts.py old/table1.json new/table1.json
    python benchmarks/compare_artifacts.py a/ b/ --rtol 1e-6 --atol 1e-12
    python benchmarks/compare_artifacts.py a/ b/ --require logicnet

The default tolerances (``rtol 1e-9``, ``atol 0``) flag anything beyond
float round-off; loosen them for cross-platform comparisons where BLAS
reduction order may differ.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
from typing import Dict, List, Optional, Sequence

#: Result fields that are wall-clock measurements, never values — the
#: same exclusions the pipeline's own identity checks apply.
VOLATILE_KEYS = frozenset({"wall_seconds", "build_seconds"})


def load_results(path: pathlib.Path) -> Dict[str, dict]:
    """Experiment name → deterministic ``result`` block.

    ``path`` is one artifact JSON or a directory of them;
    ``manifest.json`` (run metadata, not a result) is ignored.
    """
    if path.is_dir():
        files = sorted(
            p for p in path.glob("*.json") if p.name != "manifest.json"
        )
        if not files:
            raise ValueError(f"{path}: no artifact JSON files")
    else:
        files = [path]
    results: Dict[str, dict] = {}
    for file in files:
        payload = json.loads(file.read_text())
        if not isinstance(payload, dict) or "result" not in payload:
            raise ValueError(f"{file}: not a run artifact (no 'result' key)")
        results[payload.get("experiment", file.stem)] = payload["result"]
    return results


def _diff_values(
    old, new, rtol: float, atol: float, at: str, drifts: List[str]
) -> None:
    """Append a message to ``drifts`` for every mismatch under ``at``."""
    if isinstance(old, dict) and isinstance(new, dict):
        old_keys = set(old) - VOLATILE_KEYS
        new_keys = set(new) - VOLATILE_KEYS
        for key in sorted(old_keys - new_keys):
            drifts.append(f"{at}.{key}: missing from candidate")
        for key in sorted(new_keys - old_keys):
            drifts.append(f"{at}.{key}: not in baseline")
        for key in sorted(old_keys & new_keys):
            _diff_values(old[key], new[key], rtol, atol, f"{at}.{key}", drifts)
        return
    if isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            drifts.append(f"{at}: length {len(old)} -> {len(new)}")
            return
        for index, (a, b) in enumerate(zip(old, new)):
            _diff_values(a, b, rtol, atol, f"{at}[{index}]", drifts)
        return
    # bool is an int subclass; compare it (and None/str) exactly.
    numeric_old = isinstance(old, (int, float)) and not isinstance(old, bool)
    numeric_new = isinstance(new, (int, float)) and not isinstance(new, bool)
    if numeric_old and numeric_new:
        if not math.isclose(old, new, rel_tol=rtol, abs_tol=atol):
            drifts.append(f"{at}: {old!r} -> {new!r}")
        return
    if old != new:
        drifts.append(f"{at}: {old!r} -> {new!r}")


def compare(
    baseline: Dict[str, dict],
    candidate: Dict[str, dict],
    rtol: float,
    atol: float,
    max_report: int = 8,
    require: Sequence[str] = (),
) -> List[str]:
    """Compare two result maps; returns the list of drift messages.

    ``require`` names experiments that must be present on both sides —
    absence anywhere is drift, not a footnote.
    """
    drifts: List[str] = []
    for name in require:
        for side, results in (("baseline", baseline), ("candidate", candidate)):
            if name not in results:
                drifts.append(f"{name}: required but missing from {side}")
                print(f"{name:<28s} REQUIRED, missing from {side}")
    for name in sorted(baseline):
        if name not in candidate:
            drifts.append(f"{name}: missing from candidate")
            print(f"{name:<28s} MISSING")
            continue
        local: List[str] = []
        _diff_values(baseline[name], candidate[name], rtol, atol, name, local)
        status = "ok" if not local else f"DRIFT ({len(local)} values)"
        print(f"{name:<28s} {status}")
        for message in local[:max_report]:
            print(f"    {message}")
        if len(local) > max_report:
            print(f"    ... and {len(local) - max_report} more")
        drifts.extend(local)
    for name in sorted(set(candidate) - set(baseline)):
        print(f"{name:<28s} (new artifact, not in baseline)")
    return drifts


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="Deep-diff the deterministic 'result' blocks of run "
        "artifacts; non-zero exit on value drift beyond tolerance."
    )
    parser.add_argument("baseline", type=pathlib.Path,
                        help="baseline artifact JSON or directory")
    parser.add_argument("candidate", type=pathlib.Path,
                        help="candidate artifact JSON or directory")
    parser.add_argument(
        "--rtol",
        type=float,
        default=1e-9,
        help="relative tolerance for numeric leaves (default 1e-9)",
    )
    parser.add_argument(
        "--atol",
        type=float,
        default=0.0,
        help="absolute tolerance for numeric leaves (default 0)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="experiment that must exist on both sides (repeatable); "
        "absence is a failure, not a note",
    )
    args = parser.parse_args(argv)
    if args.rtol < 0 or args.atol < 0:
        parser.error("tolerances must be >= 0")

    drifts = compare(
        load_results(args.baseline),
        load_results(args.candidate),
        args.rtol,
        args.atol,
        require=args.require,
    )
    if drifts:
        print(f"\n{len(drifts)} drifted value(s)", file=sys.stderr)
        return 1
    print("\nno drift")
    return 0


if __name__ == "__main__":
    sys.exit(main())
