"""Ablation A2: zero-crossing detector variants.

The paper's generator fires on every crossing.  This ablation compares
the three detector variants on identical noise: all-crossings (paper),
up-crossings only (half rate), and a hysteresis comparator (chatter
suppression), quantifying the rate and regularity trade-off.
"""

import pytest

from repro.noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from repro.noise.synthesis import NoiseSynthesizer
from repro.spikes.statistics import isi_statistics
from repro.spikes.zero_crossing import (
    AllCrossingDetector,
    HysteresisDetector,
    UpCrossingDetector,
)
from repro.units import format_time, paper_white_grid


def sweep():
    grid = paper_white_grid(n_samples=32768)
    record = NoiseSynthesizer(WhiteSpectrum(PAPER_WHITE_BAND), grid).generate(0)
    detectors = {
        "all-crossings": AllCrossingDetector(),
        "up-crossings": UpCrossingDetector(),
        "hysteresis-0.3": HysteresisDetector(0.3),
    }
    return {
        name: isi_statistics(d.detect(record, grid))
        for name, d in detectors.items()
    }


@pytest.mark.benchmark(group="ablations")
def test_detector_variants(benchmark, archive):
    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["A2 — detector variants on identical white noise"]
    for name, s in stats.items():
        lines.append(
            f"  {name:<16s} n={s.n_spikes:5d}  tau={format_time(s.mean_isi_seconds)}"
            f"  CV={s.coefficient_of_variation:.2f}"
        )
    archive("a2_detectors.txt", "\n".join(lines))

    # Up-crossings fire at half the all-crossings rate.
    assert stats["up-crossings"].n_spikes == pytest.approx(
        stats["all-crossings"].n_spikes / 2, rel=0.05
    )
    # Hysteresis removes chatter: fewer spikes, more regular intervals.
    assert stats["hysteresis-0.3"].n_spikes < stats["all-crossings"].n_spikes
    assert (
        stats["hysteresis-0.3"].coefficient_of_variation
        < stats["all-crossings"].coefficient_of_variation * 1.2
    )
