"""Benchmark C3: exponential hyperspace scaling (M = 2^N − 1).

Section 3: N input wires yield an exponentially large orthogonal basis.
The sweep builds intersection bases for N = 2..6 with the paper's
homogenizing correlation and records basis size, build time and element
population.
"""

import pytest

from repro.experiments.scaling import run_scaling


@pytest.mark.benchmark(group="claims")
def test_hyperspace_scaling(benchmark, archive):
    result = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    archive("c3_scaling.txt", result.render())

    sizes = [p.basis_size for p in result.points]
    assert sizes == [2**n - 1 for n in range(2, len(sizes) + 2)]
    # Homogenized construction keeps every element populated up to N=6.
    for point in result.points:
        assert point.nonempty_elements == point.basis_size
    # Build cost stays sub-second per basis on the paper-sized record.
    assert all(p.build_seconds < 2.0 for p in result.points)
