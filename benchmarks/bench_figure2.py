"""Benchmark F2: regenerate Figure 2 (intersection raster, uncorrelated).

The paper's Figure 2 shows inputs A and B from two independent white
noises and the three orthogonal products; the visible feature is the
near-silence of the A·B wire relative to the exclusives.
"""

import pytest

from repro.experiments.figures import run_figure2
from repro.orthogonator.intersection import product_label


@pytest.mark.benchmark(group="figures")
def test_figure2(benchmark, archive, results_dir):
    result = benchmark(run_figure2)
    archive("figure2.txt", result.render())
    (results_dir / "figure2.csv").write_text(result.to_csv())

    counts = dict(result.spike_counts())
    both = counts[product_label(0b11, ("A", "B"))]
    a_only = counts[product_label(0b01, ("A", "B"))]
    b_only = counts[product_label(0b10, ("A", "B"))]
    # Paper's rate structure: coincidences ~25x rarer than exclusives.
    assert a_only > 10 * both
    assert b_only > 10 * both
    # Products partition the union of the inputs.
    assert both + a_only == counts["A"]
    assert both + b_only == counts["B"]
