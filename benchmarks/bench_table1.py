"""Benchmark T1: regenerate Table 1 (demux orthogonator statistics).

Paper reference (65 536 points):

=====================  ========  =========  ========  =========
configuration          τ source  Δτ source  τ output  Δτ output
=====================  ========  =========  ========  =========
white 5 MHz–10 GHz     90 ps     58 ps      267 ps    100 ps
1/f 2.5 MHz–10 GHz     225 ps    469 ps     681 ps    768 ps
=====================  ========  =========  ========  =========

Shape asserted here: τ ratios within 25 %, white superior to 1/f.
"""

import pytest

from repro.experiments.table1 import run_table1


@pytest.mark.benchmark(group="tables")
def test_table1(benchmark, archive):
    result = benchmark(run_table1)
    archive("table1.txt", result.render())

    for table in (result.white, result.pink):
        for row in table.rows:
            ratio = row.tau_ratio()
            assert ratio is not None and 0.75 < ratio < 1.25, (
                f"{table.title} / {row.label}: tau ratio {ratio}"
            )
    # White noise's regularity advantage (the table's conclusion).
    white_cv = result.white.rows[0].measured.coefficient_of_variation
    pink_cv = result.pink.rows[0].measured.coefficient_of_variation
    assert pink_cv > 1.5 * white_cv
