"""Benchmark: batched identification throughput vs the per-train loop.

The backend layer's claim: lifting the spike-train hot paths onto
:class:`~repro.backend.batch.SpikeTrainBatch` turns N Python-side
receiver calls into one vectorised pass against the whole basis.
Measured here on the serving-shaped workload from the ROADMAP: 256
single-valued wires identified against a 16-element basis on the
paper's 65 536-sample grid — per-train loop vs
:meth:`CoincidenceCorrelator.identify_batch` — plus the batched
membership query path and the pipeline's sharded runner (serial vs
``jobs=2`` on the ``identify`` spec, asserting bit-identity).  The
acceptance bar is a ≥ 5× speedup for the batched identification pass.

Every bench records a machine-readable entry in
``benchmarks/BENCH_batch.json`` (schema: experiment, config, seconds,
speedup) so the perf trajectory is tracked across PRs.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch
from repro.backend.shared import SharedArena
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.correlator import CoincidenceCorrelator
from repro.orthogonator.demux import DemuxOrthogonator
from repro.pipeline import Runner, get_spec, to_jsonable
from repro.search.superposition_search import SuperpositionDatabase
from repro.spikes.generators import poisson_train
from repro.units import paper_white_grid

N_WIRES = 256
BASIS_SIZE = 16
#: Mean inter-spike interval of the paper's white source (Table 2).
SOURCE_ISI_SAMPLES = 28


def _best_of(fn, repeats=7):
    """Best-of-N wall time in seconds (minimum damps scheduler noise)."""
    best = float("inf")
    for _unused in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def workload():
    grid = paper_white_grid()
    rng = np.random.default_rng(2016)
    source = poisson_train(
        rate_hz=1.0 / (SOURCE_ISI_SAMPLES * grid.dt), grid=grid, rng=rng
    )
    output = DemuxOrthogonator.with_outputs(BASIS_SIZE).transform(source)
    basis = HyperspaceBasis.from_orthogonator(output)
    elements = rng.integers(BASIS_SIZE, size=N_WIRES)
    wires = [basis.encode(int(e)) for e in elements]
    return basis, wires, elements


def test_batched_identification_speedup(workload, archive, bench_record):
    basis, wires, elements = workload
    correlator = CoincidenceCorrelator(basis)
    # In the batched pipeline wires live in batch form end to end
    # (encode_batch / transform_batch emit batches), so the batch is the
    # pass's natural input, not part of the measured work.
    batch = SpikeTrainBatch.from_trains(wires)

    def per_train_loop():
        return [correlator.identify(wire) for wire in wires]

    def batched_pass():
        return correlator.identify_batch(batch)

    scalar_results = per_train_loop()
    batch_results = batched_pass()
    assert batch_results.results() == scalar_results  # bit-identical receivers
    assert batch_results.elements.tolist() == elements.tolist()

    loop_s = _best_of(per_train_loop)
    batch_s = _best_of(batched_pass)
    speedup = loop_s / batch_s

    per_wire_loop_us = 1e6 * loop_s / N_WIRES
    per_wire_batch_us = 1e6 * batch_s / N_WIRES
    text = "\n".join(
        [
            "Batched identification throughput "
            f"({N_WIRES} wires, M={BASIS_SIZE}, T={basis.grid.n_samples})",
            f"  per-train loop : {1e3 * loop_s:8.3f} ms  "
            f"({per_wire_loop_us:7.2f} us/wire)",
            f"  batched pass   : {1e3 * batch_s:8.3f} ms  "
            f"({per_wire_batch_us:7.2f} us/wire)",
            f"  speedup        : {speedup:8.1f}x",
        ]
    )
    archive("batch_throughput.txt", text)
    bench_record(
        "identify_batch",
        {
            "n_wires": N_WIRES,
            "basis_size": BASIS_SIZE,
            "n_samples": basis.grid.n_samples,
        },
        batch_s,
        speedup,
    )

    assert speedup >= 5.0, (
        f"batched identification only {speedup:.1f}x faster than the "
        f"per-train loop (required: 5x)"
    )


def test_batched_membership_queries(workload, archive, bench_record):
    basis, _wires, _elements = workload
    database = SuperpositionDatabase(basis)
    database.load(range(0, BASIS_SIZE, 2))
    states = list(range(BASIS_SIZE)) * (N_WIRES // BASIS_SIZE)

    def per_query_loop():
        return [database.query(s) for s in states]

    def batched_pass():
        return database.query_batch(states)

    assert batched_pass() == per_query_loop()

    loop_s = _best_of(per_query_loop)
    batch_s = _best_of(batched_pass)
    text = "\n".join(
        [
            f"Batched membership queries ({len(states)} queries, M={BASIS_SIZE})",
            f"  per-query loop : {1e3 * loop_s:8.3f} ms",
            f"  batched pass   : {1e3 * batch_s:8.3f} ms",
            f"  speedup        : {loop_s / batch_s:8.1f}x",
        ]
    )
    archive("batch_queries.txt", text)
    bench_record(
        "membership_queries_batch",
        {"n_queries": len(states), "basis_size": BASIS_SIZE},
        batch_s,
        loop_s / batch_s,
    )
    assert batch_s < loop_s


#: Sharded-runner workload: heavy enough that per-shard identification
#: work dominates the per-worker workload rebuild and pool overhead.
SHARDED_CONFIG = {
    "n_wires": 2048,
    "basis_size": 16,
    "n_trials": 256,
    "n_shards": 4,
}
SHARD_JOBS = 2


def test_sharded_runner_bit_identical_and_timed(archive, bench_record):
    """Serial vs sharded execution of the identify spec.

    The sharded run dispatches through the zero-copy shared-memory
    path: the workload is materialised once, exported into a
    :class:`SharedArena`, and the persistent pool's workers attach
    instead of rebuilding.  Bit-identity holds on any machine (the
    shard plan lives in the config); the wall-clock speedup
    additionally needs real cores, so the speedup assertion is gated
    on the host's CPU count while the measured numbers are recorded
    unconditionally.  The pool is warmed with a throwaway run first —
    the persistent pool is a per-Runner cost, not a per-run cost, and
    the bench measures the steady state a serving deployment sees.
    """
    serial = Runner(jobs=1).run("identify", overrides=SHARDED_CONFIG)
    with Runner(jobs=SHARD_JOBS) as runner:
        runner.run("identify", overrides=dict(SHARDED_CONFIG, n_trials=1))
        sharded = runner.run("identify", overrides=SHARDED_CONFIG)
    assert serial.ok and sharded.ok
    assert to_jsonable(serial.result) == to_jsonable(sharded.result)
    assert serial.rendered == sharded.rendered

    speedup = serial.wall_seconds / sharded.wall_seconds
    text = "\n".join(
        [
            "Sharded identification through the pipeline runner "
            f"({SHARDED_CONFIG['n_wires']} wires, "
            f"{SHARDED_CONFIG['n_trials']} starts, "
            f"{SHARDED_CONFIG['n_shards']} shards)",
            f"  serial (jobs=1)        : {serial.wall_seconds:8.3f} s",
            f"  sharded (jobs={SHARD_JOBS})       : "
            f"{sharded.wall_seconds:8.3f} s",
            f"  speedup                : {speedup:8.2f}x "
            f"(on {os.cpu_count()} cpu(s))",
            "  bit-identical          : True",
        ]
    )
    archive("sharded_runner.txt", text)
    bench_record(
        "identify_sharded",
        dict(SHARDED_CONFIG, jobs=SHARD_JOBS),
        sharded.wall_seconds,
        speedup,
    )

    if (os.cpu_count() or 1) >= 2:
        assert speedup > 1.0, (
            f"sharded run only {speedup:.2f}x the serial run with "
            f"{os.cpu_count()} cpus"
        )


def test_shared_memory_dispatch_payload(archive, bench_record):
    """Zero-copy dispatch: per-shard payload vs pickled rasters.

    The old dispatch alternatives were rebuilding in the worker (slow)
    or pickling the shard's dense raster rows across the pipe (large).
    The shared handle must undercut the pickled raster by ≥ 10×; the
    recorded seconds measure a worker-side attach + materialise of one
    shard, and the bit-identity of the attached rows is asserted.
    """
    spec = get_spec("identify")
    config = spec.make_config(overrides=SHARDED_CONFIG)
    from repro.experiments.identify import _shards, _workload

    _basis, wires, _elements, _start_slots = _workload(config)
    bounds = _shards(config)[0]
    rows = np.arange(bounds.row_start, bounds.row_stop)
    raster_payload = len(pickle.dumps(wires.select_rows(rows).raster))

    with SharedArena() as arena:
        tasks = spec.shard_shared(config, arena)
        shared_payload = max(len(pickle.dumps(task)) for task in tasks)
        reduction = raster_payload / shared_payload

        def attach_one_shard():
            task = tasks[0]
            return SpikeTrainBatch.from_shared(
                task.wires, rows=(task.row_start, task.row_stop)
            )

        attached = attach_one_shard()
        assert attached == wires.select_rows(rows)  # bit-identical payload
        attach_s = _best_of(attach_one_shard)

    text = "\n".join(
        [
            "Zero-copy shard dispatch "
            f"({SHARDED_CONFIG['n_wires']} wires, "
            f"{SHARDED_CONFIG['n_shards']} shards)",
            f"  pickled raster rows    : {raster_payload:12,d} bytes/shard",
            f"  shared-memory handle   : {shared_payload:12,d} bytes/shard",
            f"  payload reduction      : {reduction:10.0f}x",
            f"  attach + materialise   : {1e3 * attach_s:10.3f} ms/shard",
        ]
    )
    archive("shared_memory_dispatch.txt", text)
    bench_record(
        "identify_shared_memory",
        dict(SHARDED_CONFIG, raster_bytes=raster_payload,
             handle_bytes=shared_payload),
        attach_s,
        reduction,
    )

    assert reduction >= 10.0, (
        f"shared handle only {reduction:.1f}x smaller than the pickled "
        f"raster (required: 10x)"
    )
