"""Benchmark: batched identification throughput vs the per-train loop.

The backend layer's claim: lifting the spike-train hot paths onto
:class:`~repro.backend.batch.SpikeTrainBatch` turns N Python-side
receiver calls into one vectorised pass against the whole basis.
Measured here on the serving-shaped workload from the ROADMAP: 256
single-valued wires identified against a 16-element basis on the
paper's 65 536-sample grid — per-train loop vs
:meth:`CoincidenceCorrelator.identify_batch` — plus the batched
membership query path and the pipeline's sharded runner (serial vs
``jobs=2`` on the ``identify`` spec, asserting bit-identity).  The
acceptance bar is a ≥ 5× speedup for the batched identification pass.

Every bench records a machine-readable entry in
``benchmarks/BENCH_batch.json`` (schema: experiment, config, seconds,
speedup) so the perf trajectory is tracked across PRs.
"""

import os
import pickle

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch
from repro.backend.shared import SharedArena
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.correlator import CoincidenceCorrelator
from repro.orthogonator.demux import DemuxOrthogonator
from repro.pipeline import Runner, get_spec, to_jsonable
from repro.search.superposition_search import SuperpositionDatabase
from repro.spikes.generators import poisson_train
from repro.units import paper_white_grid

N_WIRES = 256
BASIS_SIZE = 16
#: Mean inter-spike interval of the paper's white source (Table 2).
SOURCE_ISI_SAMPLES = 28


@pytest.fixture(scope="module")
def workload():
    grid = paper_white_grid()
    rng = np.random.default_rng(2016)
    source = poisson_train(
        rate_hz=1.0 / (SOURCE_ISI_SAMPLES * grid.dt), grid=grid, rng=rng
    )
    output = DemuxOrthogonator.with_outputs(BASIS_SIZE).transform(source)
    basis = HyperspaceBasis.from_orthogonator(output)
    elements = rng.integers(BASIS_SIZE, size=N_WIRES)
    wires = [basis.encode(int(e)) for e in elements]
    return basis, wires, elements


def test_batched_identification_speedup(workload, archive, bench_record, best_of):
    basis, wires, elements = workload
    correlator = CoincidenceCorrelator(basis)
    # In the batched pipeline wires live in batch form end to end
    # (encode_batch / transform_batch emit batches), so the batch is the
    # pass's natural input, not part of the measured work.
    batch = SpikeTrainBatch.from_trains(wires)

    def per_train_loop():
        return [correlator.identify(wire) for wire in wires]

    def batched_pass():
        return correlator.identify_batch(batch)

    scalar_results = per_train_loop()
    batch_results = batched_pass()
    assert batch_results.results() == scalar_results  # bit-identical receivers
    assert batch_results.elements.tolist() == elements.tolist()

    loop_s = best_of(per_train_loop)
    batch_s = best_of(batched_pass)
    speedup = loop_s / batch_s

    per_wire_loop_us = 1e6 * loop_s / N_WIRES
    per_wire_batch_us = 1e6 * batch_s / N_WIRES
    text = "\n".join(
        [
            "Batched identification throughput "
            f"({N_WIRES} wires, M={BASIS_SIZE}, T={basis.grid.n_samples})",
            f"  per-train loop : {1e3 * loop_s:8.3f} ms  "
            f"({per_wire_loop_us:7.2f} us/wire)",
            f"  batched pass   : {1e3 * batch_s:8.3f} ms  "
            f"({per_wire_batch_us:7.2f} us/wire)",
            f"  speedup        : {speedup:8.1f}x",
        ]
    )
    archive("batch_throughput.txt", text)
    bench_record(
        "identify_batch",
        {
            "n_wires": N_WIRES,
            "basis_size": BASIS_SIZE,
            "n_samples": basis.grid.n_samples,
        },
        batch_s,
        speedup,
    )

    assert speedup >= 5.0, (
        f"batched identification only {speedup:.1f}x faster than the "
        f"per-train loop (required: 5x)"
    )


def test_batched_membership_queries(workload, archive, bench_record, best_of):
    basis, _wires, _elements = workload
    database = SuperpositionDatabase(basis)
    database.load(range(0, BASIS_SIZE, 2))
    states = list(range(BASIS_SIZE)) * (N_WIRES // BASIS_SIZE)

    def per_query_loop():
        return [database.query(s) for s in states]

    def batched_pass():
        return database.query_batch(states)

    assert batched_pass() == per_query_loop()

    loop_s = best_of(per_query_loop)
    batch_s = best_of(batched_pass)
    text = "\n".join(
        [
            f"Batched membership queries ({len(states)} queries, M={BASIS_SIZE})",
            f"  per-query loop : {1e3 * loop_s:8.3f} ms",
            f"  batched pass   : {1e3 * batch_s:8.3f} ms",
            f"  speedup        : {loop_s / batch_s:8.1f}x",
        ]
    )
    archive("batch_queries.txt", text)
    bench_record(
        "membership_queries_batch",
        {"n_queries": len(states), "basis_size": BASIS_SIZE},
        batch_s,
        loop_s / batch_s,
    )
    assert batch_s < loop_s


#: Sharded-runner workload: heavy enough that per-shard identification
#: work dominates the per-worker workload rebuild and pool overhead.
SHARDED_CONFIG = {
    "n_wires": 2048,
    "basis_size": 16,
    "n_trials": 256,
    "n_shards": 4,
}
SHARD_JOBS = 2


def test_sharded_runner_bit_identical_and_timed(archive, bench_record):
    """Serial vs sharded execution of the identify spec.

    The sharded run dispatches through the zero-copy shared-memory
    path: the workload is materialised once, exported into a
    :class:`SharedArena`, and the persistent pool's workers attach
    instead of rebuilding.  Bit-identity holds on any machine (the
    shard plan lives in the config); the wall-clock speedup
    additionally needs real cores, so the speedup assertion is gated
    on the host's CPU count while the measured numbers are recorded
    unconditionally.  The pool is warmed with a throwaway run first —
    the persistent pool is a per-Runner cost, not a per-run cost, and
    the bench measures the steady state a serving deployment sees.
    """
    serial = Runner(jobs=1).run("identify", overrides=SHARDED_CONFIG)
    with Runner(jobs=SHARD_JOBS) as runner:
        runner.run("identify", overrides=dict(SHARDED_CONFIG, n_trials=1))
        sharded = runner.run("identify", overrides=SHARDED_CONFIG)
    assert serial.ok and sharded.ok
    assert to_jsonable(serial.result) == to_jsonable(sharded.result)
    assert serial.rendered == sharded.rendered

    speedup = serial.wall_seconds / sharded.wall_seconds
    text = "\n".join(
        [
            "Sharded identification through the pipeline runner "
            f"({SHARDED_CONFIG['n_wires']} wires, "
            f"{SHARDED_CONFIG['n_trials']} starts, "
            f"{SHARDED_CONFIG['n_shards']} shards)",
            f"  serial (jobs=1)        : {serial.wall_seconds:8.3f} s",
            f"  sharded (jobs={SHARD_JOBS})       : "
            f"{sharded.wall_seconds:8.3f} s",
            f"  speedup                : {speedup:8.2f}x "
            f"(on {os.cpu_count()} cpu(s))",
            "  bit-identical          : True",
        ]
    )
    archive("sharded_runner.txt", text)
    bench_record(
        "identify_sharded",
        dict(SHARDED_CONFIG, jobs=SHARD_JOBS),
        sharded.wall_seconds,
        speedup,
    )

    if (os.cpu_count() or 1) >= 2:
        assert speedup > 1.0, (
            f"sharded run only {speedup:.2f}x the serial run with "
            f"{os.cpu_count()} cpus"
        )


def test_shard_dispatch_transport_and_compute(archive, bench_record, best_of):
    """Zero-copy dispatch: transport bytes *and* real per-shard work.

    An earlier version of this bench timed only handle construction
    and reported the payload reduction as a "speedup", which
    overstated the win by orders of magnitude.  What a worker actually
    pays per shard is **attach + compute**, so that is what the
    recorded seconds measure now: resolve the shared handles (through
    the warmed per-process attachment cache, the pool's steady state)
    and run the full shard identification straight on the attached
    bitset view.  The reference pipeline ships the shard's dense
    raster rows through pickle and computes from them.  Transport
    bytes per shard are reported alongside — as payload numbers, not
    as a wall-time claim.
    """
    spec = get_spec("identify")
    config = spec.make_config(overrides=SHARDED_CONFIG)
    from repro.experiments import identify as identify_mod

    basis, wires, elements, start_slots = identify_mod._workload(config)
    bounds = identify_mod._shards(config)[0]
    rows = np.arange(bounds.row_start, bounds.row_stop)
    shard_raster = wires.select_rows(rows).raster
    raster_blob = pickle.dumps(shard_raster)
    raster_payload = len(raster_blob)
    expected = elements[rows]

    def unpickle_and_compute():
        received = SpikeTrainBatch.from_raster(
            pickle.loads(raster_blob), wires.grid, copy=False
        )
        return identify_mod._identify_rows(
            basis, received, expected, start_slots,
            bounds.row_start, bounds.row_stop,
        )

    with SharedArena() as arena:
        tasks = spec.shard_shared(config, arena)
        shared_payload = max(len(pickle.dumps(task)) for task in tasks)
        reduction = raster_payload / shared_payload

        def attach_and_compute():
            return identify_mod._run_shard(tasks[0])

        via_shared = attach_and_compute()
        via_raster = unpickle_and_compute()
        # Bit-identical shard outcome whatever the transport.
        assert via_shared.identifications == via_raster.identifications
        assert via_shared.correct == via_raster.correct
        assert via_shared.misses == via_raster.misses
        assert np.array_equal(via_shared.latencies, via_raster.latencies)
        shared_s = best_of(attach_and_compute)
        raster_s = best_of(unpickle_and_compute)

    speedup = raster_s / shared_s
    text = "\n".join(
        [
            "Zero-copy shard dispatch "
            f"({SHARDED_CONFIG['n_wires']} wires, "
            f"{SHARDED_CONFIG['n_trials']} starts, "
            f"{SHARDED_CONFIG['n_shards']} shards)",
            f"  pickled raster rows    : {raster_payload:12,d} bytes/shard",
            f"  shared-memory handle   : {shared_payload:12,d} bytes/shard",
            f"  transport reduction    : {reduction:10.0f}x (payload, "
            "not wall time)",
            f"  attach+compute (shared): {1e3 * shared_s:10.3f} ms/shard",
            f"  unpickle+compute (dense): {1e3 * raster_s:9.3f} ms/shard",
            f"  per-shard speedup      : {speedup:10.2f}x",
        ]
    )
    archive("shared_memory_dispatch.txt", text)
    bench_record(
        "identify_shard_dispatch",
        dict(SHARDED_CONFIG, raster_bytes=raster_payload,
             handle_bytes=shared_payload,
             transport_reduction=round(reduction, 1)),
        shared_s,
        speedup,
    )

    assert reduction >= 10.0, (
        f"shared handle only {reduction:.1f}x smaller than the pickled "
        f"raster (required: 10x)"
    )
    assert speedup >= 1.0, (
        f"attach+compute slower than the pickled-raster pipeline "
        f"({speedup:.2f}x)"
    )
