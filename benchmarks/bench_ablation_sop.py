"""Ablation A7: cost of canonical SOP synthesis vs radix and arity.

The SOP compiler (S21) realises *any* function but pays the canonical
form's price: gate count ~ (surviving minterms) × (literals + clamp)
plus the OR tree.  This ablation quantifies the growth so users know
when to prefer hand-built gates (e.g. the adder digit gates) over
synthesis — and verifies the depth stays logarithmic, preserving the
scheme's latency story even for synthesised logic.
"""

import pytest

from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.sop import synthesize_sop
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=240, dt=1e-12)


def make_basis(m: int) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 240, m), GRID) for k in range(m)])


CONFIGS = [
    # (radix, arity) — synthesise the modular sum in each configuration.
    (2, 2),
    (2, 3),
    (3, 2),
    (4, 2),
]


def run():
    results = []
    for radix, arity in CONFIGS:
        basis = make_basis(radix)

        def mod_sum(*args):
            return sum(args) % radix

        circuit = synthesize_sop(
            f"modsum_r{radix}_k{arity}", [basis] * arity, basis, mod_sum
        )
        results.append((radix, arity, circuit.n_gates(), circuit.depth()))
    return results


@pytest.mark.benchmark(group="ablations")
def test_sop_cost(benchmark, archive):
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["A7 — canonical SOP cost (modular sum)"]
    for radix, arity, gates, depth in results:
        minterms = radix**arity
        lines.append(
            f"  radix {radix}, {arity} inputs: {minterms:3d} minterms -> "
            f"{gates:4d} gates, depth {depth}"
        )
    archive("a7_sop_cost.txt", "\n".join(lines))

    by_config = {(r, k): (g, d) for r, k, g, d in results}
    # Gate count grows with the minterm count...
    assert by_config[(4, 2)][0] > by_config[(3, 2)][0] > by_config[(2, 2)][0]
    assert by_config[(2, 3)][0] > by_config[(2, 2)][0]
    # ...but depth stays logarithmic (well under the minterm count).
    for (radix, arity), (gates, depth) in by_config.items():
        assert depth <= 12, (radix, arity, depth)
        assert depth < gates
