"""Benchmark C8: set-verification latency on superposition wires.

Ref [2]'s verification motivation: a difference between two sets is
witnessed by the first spike present on exactly one wire (~one ISI);
equality certification must wait out the whole record.  Asserted:
unequal verdicts decide 2–4 orders faster than equal certification, at
every basis size, with all verdicts correct.
"""

import pytest

from repro.experiments.verification import run_verification


@pytest.mark.benchmark(group="claims")
def test_verification(benchmark, archive):
    result = benchmark.pedantic(run_verification, rounds=1, iterations=1)
    archive("c8_verification.txt", result.render())

    for point in result.points:
        assert point.all_verdicts_correct
        # The asymmetry: differences are caught ~immediately.
        assert point.median_unequal_slot * 100 < point.equal_slot
