"""Ablation A3: oversampling factor vs physical-time invariance.

The sample↔picosecond mapping (DESIGN.md) chooses fs = 32 × f_high.
This ablation verifies the physical spike statistics are a property of
the *band*, not the grid: τ in seconds is invariant (within tolerance)
as the oversampling factor changes, while τ in samples scales with fs.
"""

import pytest

from repro.noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from repro.noise.synthesis import NoiseSynthesizer
from repro.spikes.statistics import isi_statistics
from repro.spikes.zero_crossing import AllCrossingDetector
from repro.units import paper_white_grid

FACTORS = (16, 32, 64)


def sweep():
    results = {}
    for factor in FACTORS:
        grid = paper_white_grid(n_samples=32768, oversampling=factor)
        record = NoiseSynthesizer(WhiteSpectrum(PAPER_WHITE_BAND), grid).generate(1)
        train = AllCrossingDetector().detect(record, grid)
        results[factor] = isi_statistics(train)
    return results


@pytest.mark.benchmark(group="ablations")
def test_oversampling_invariance(benchmark, archive):
    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["A3 — oversampling vs physical-time invariance"]
    for factor, s in stats.items():
        lines.append(
            f"  fs = {factor}x f_high: tau = {s.mean_isi_samples:6.1f} samples"
            f" = {s.mean_isi_seconds * 1e12:6.1f} ps"
        )
    archive("a3_oversampling.txt", "\n".join(lines))

    taus = [s.mean_isi_seconds for s in stats.values()]
    # Physical tau invariant across grids (finite-sampling bias < 10%).
    assert max(taus) / min(taus) < 1.10
    # Sample-domain tau scales ~linearly with the factor.
    assert stats[64].mean_isi_samples == pytest.approx(
        2 * stats[32].mean_isi_samples, rel=0.1
    )
