"""Benchmark C1: identification speed — spikes vs continuum vs sinusoids.

Section 2: "the spike-based scheme does not need time averaging and
therefore results in a significant speed-up."  Expected ordering on the
paper's grid (dt = 3.125 ps):

* spike first-coincidence: ~1 mean ISI (~0.1–0.3 ns);
* sinusoidal quadrature: ~1/Δf (~1 ns for 0.33 GHz spacing);
* continuum noise: statistical settling (~20 ns at margin 0.2).
"""

import pytest

from repro.experiments.speed import run_speed


@pytest.mark.benchmark(group="claims")
def test_detection_speed(benchmark, archive):
    result = benchmark.pedantic(run_speed, rounds=1, iterations=1)
    archive("c1_detection_speed.txt", result.render())

    by_name = {latency.scheme: latency for latency in result.latencies}
    assert (
        by_name["spike"].median_samples
        < by_name["sinusoidal"].median_samples
        < by_name["continuum"].median_samples
    )
    # "Significant speed-up": order(s) of magnitude over continuum.
    assert result.speedup_over("continuum") > 20.0
    assert result.speedup_over("sinusoidal") > 2.0
