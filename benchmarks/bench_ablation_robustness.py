"""Ablation A4: identification robustness under physical degradations.

The paper's resilience claim (Sections 1–2), quantified: sweeps of
timing jitter, spike loss and rival-spike injection against the
wrong/silent verdict rates of a confidence-gated identifier.
"""

import numpy as np
import pytest

from repro.analysis.robustness import injection_sweep, jitter_sweep, loss_sweep
from repro.hyperspace.builders import build_demux_basis, paper_default_synthesizer


def sweep():
    synthesizer = paper_default_synthesizer()
    basis = build_demux_basis(4, synthesizer=synthesizer, rng=0)
    rng = np.random.default_rng(0)
    return {
        "jitter": jitter_sweep(basis, [0, 1, 2, 8, 32], rng, trials=2,
                               window=2, min_confidence=0.5),
        "loss": loss_sweep(basis, [0.0, 0.3, 0.6, 0.9], rng, trials=2),
        "injection": injection_sweep(basis, [0, 5, 50], rng, trials=2),
    }


@pytest.mark.benchmark(group="ablations")
def test_robustness(benchmark, archive):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["A4 — identification robustness"]
    for name, points in results.items():
        lines.append(f"  {name}:")
        for p in points:
            lines.append(
                f"    level {p.level:6.2f}: wrong {p.wrong_rate:.2f}, "
                f"silent {p.silent_rate:.2f}"
            )
    archive("a4_robustness.txt", "\n".join(lines))

    # Loss never produces a wrong verdict — only delay or silence.
    assert all(p.wrong_rate == 0.0 for p in results["loss"])
    # Jitter within the coincidence window is essentially free.
    within_window = [p for p in results["jitter"] if p.level <= 2]
    assert all(p.wrong_rate < 0.2 for p in within_window)
    # Gross jitter degrades to silence, not to confident wrong answers.
    assert results["jitter"][-1].wrong_rate == 0.0
    # Light injection is absorbed by plurality.
    light = results["injection"][1]
    assert light.wrong_rate < 0.2
