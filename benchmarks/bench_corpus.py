"""Benchmark: out-of-core corpus scan vs full materialisation.

The corpus tier's claim is a *memory* contract, not a kernel speedup:
a :class:`~repro.pipeline.corpus.CorpusStore` many times larger than
the chunk budget can be scanned — identify and membership — with
results **bit-identical** to loading the whole corpus into RAM, while
the tracked working set stays bounded by one chunk window instead of
the corpus.  One gated entry:

* ``identify_corpus_stream`` — a 4096-row corpus (16x the 256-row
  chunk window, comfortably past the 4x the contract requires) built
  on disk, then scanned three ways:

  1. **full** — ``open_rows(0, n)`` materialises every segment into
     one in-RAM batch, then one batched identify + membership pass
     (the baseline and the bit-identity reference);
  2. **chunked** — ``iter_chunks`` maps one 256-row window at a time
     (single-segment windows are zero-copy views of the mapping) and
     concatenates per-chunk results.  Gates: results bit-identical to
     the full pass in both modes, and the tracemalloc peak of the
     chunked scan at most 1/4 of the full pass's peak;
  3. **served** — an embedded :class:`ServerThread` hosting the same
     directory read-only answers ``FRAME_CORPUS_QUERY`` round trips
     (no bitset payload on the wire) that must merge bit-identical to
     the full pass, with the server-side chunk count matching the
     budget and the raster never materialised.

``seconds`` is the best-of chunked scan wall time; ``speedup`` is
full/chunked — how close the out-of-core scan runs to the all-in-RAM
pass (1.0 means streaming from disk costs nothing).  The CI LUT rerun
(``REPRO_FORCE_POPCOUNT_LUT=1``) repeats every gate on the fallback
popcount path, so bit-identity holds on both.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.backend.batch import SpikeTrainBatch
from repro.logic.correlator import CoincidenceCorrelator
from repro.pipeline.corpus import CorpusStore
from repro.serving.client import ServingClient
from repro.serving.server import ServerConfig, ServerThread, build_serving_basis
from repro.units import paper_white_grid

N_SAMPLES = 16384
BASIS_SIZE = 16
SOURCE_ISI_SAMPLES = 28
CORPUS_ROWS = 4096
CHUNK_ROWS = 256  # corpus is 16x the chunk window (contract needs >= 4x)


@pytest.fixture(scope="module")
def corpus_workload(tmp_path_factory):
    """A 4096-row corpus on disk plus the serving basis it was drawn from."""
    config = ServerConfig(
        seed=2016,
        basis_size=BASIS_SIZE,
        n_samples=N_SAMPLES,
        source_isi_samples=SOURCE_ISI_SAMPLES,
        jobs=1,
    )
    basis = build_serving_basis(config)
    grid = paper_white_grid(n_samples=N_SAMPLES)
    root = tmp_path_factory.mktemp("corpus") / "bench-corpus"
    store = CorpusStore.create(root, grid)
    rng = np.random.default_rng(2016)
    elements = rng.integers(BASIS_SIZE, size=CORPUS_ROWS)
    basis_batch = basis.as_batch()
    with store.writer() as writer:
        for lo in range(0, CORPUS_ROWS, CHUNK_ROWS):
            rows = elements[lo:lo + CHUNK_ROWS]
            writer.append(basis_batch.select_rows(rows))
    assert store.n_rows == CORPUS_ROWS
    return config, basis, root, elements


def _peak_bytes(fn):
    """Run ``fn`` under tracemalloc; return (result, peak_bytes)."""
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        _unused, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def _full_pass(root, basis):
    """Materialise the whole corpus in RAM and run both modes."""
    correlator = CoincidenceCorrelator(basis)
    batch = CorpusStore(root).open_rows(0, CORPUS_ROWS)
    identified = correlator.identify_batch(batch, missing="none")
    members = correlator.detect_members_batch(batch)
    return {
        "elements": np.asarray(identified.elements),
        "decision_slots": np.asarray(identified.decision_slots),
        "membership": np.asarray(members.membership),
        "first_slots": np.asarray(members.first_slots),
    }


def _chunked_pass(root, basis):
    """Scan the corpus one mapped chunk window at a time."""
    correlator = CoincidenceCorrelator(basis)
    store = CorpusStore(root)
    parts = {key: [] for key in
             ("elements", "decision_slots", "membership", "first_slots")}
    n_chunks = 0
    for _lo, _hi, window in store.iter_chunks(CHUNK_ROWS):
        n_chunks += 1
        assert window.packed_materialised and not window.raster_materialised
        identified = correlator.identify_batch(window, missing="none")
        members = correlator.detect_members_batch(window)
        parts["elements"].append(np.asarray(identified.elements))
        parts["decision_slots"].append(np.asarray(identified.decision_slots))
        parts["membership"].append(np.asarray(members.membership))
        parts["first_slots"].append(np.asarray(members.first_slots))
    assert n_chunks == CORPUS_ROWS // CHUNK_ROWS
    return {key: np.concatenate(values) for key, values in parts.items()}


def test_identify_corpus_stream(corpus_workload, archive, bench_record,
                                best_of):
    config, basis, root, elements = corpus_workload

    full, full_peak = _peak_bytes(lambda: _full_pass(root, basis))
    chunked, chunk_peak = _peak_bytes(lambda: _chunked_pass(root, basis))

    # Bit-identity: the out-of-core scan must answer exactly what the
    # all-in-RAM pass answers, in both modes.
    assert np.array_equal(full["elements"], elements)
    for key in ("elements", "decision_slots", "membership", "first_slots"):
        assert np.array_equal(chunked[key], full[key]), key

    # The memory contract: scanning a corpus 16x the chunk window must
    # track at most a quarter of the full materialisation's peak.
    assert chunk_peak * 4 <= full_peak, (
        f"chunked scan peaked at {chunk_peak} B, "
        f"full materialisation at {full_peak} B"
    )

    full_s = best_of(lambda: _full_pass(root, basis), repeats=3)
    chunked_s = best_of(lambda: _chunked_pass(root, basis), repeats=3)
    streaming_cost = full_s / chunked_s

    # The served path: the same directory hosted read-only, queried by
    # name + row range (no bitset ever crosses the wire), must merge
    # bit-identical to the full pass.
    serve_config = ServerConfig(
        seed=config.seed,
        basis_size=config.basis_size,
        n_samples=config.n_samples,
        source_isi_samples=config.source_isi_samples,
        jobs=1,
        corpus=str(root),
        corpus_chunk_rows=CHUNK_ROWS,
    )
    with ServerThread(serve_config) as handle:
        with ServingClient(handle.host, handle.port) as client:
            pong = client.ping()
            assert pong["corpus"] == root.name
            assert pong["corpus_rows"] == CORPUS_ROWS
            reply = client.corpus_identify(root.name, 0, CORPUS_ROWS)
            assert np.array_equal(reply.elements, full["elements"])
            assert np.array_equal(reply.decision_slots,
                                  full["decision_slots"])
            assert reply.summary["n_shards"] == CORPUS_ROWS // CHUNK_ROWS
            assert reply.summary["transport"] == "corpus-mmap"
            assert reply.summary["server_residency"]["raster"] is False
            started_rpc = best_of(
                lambda: client.corpus_identify(root.name, 0, CORPUS_ROWS),
                repeats=3,
            )
            members = client.corpus_membership(root.name, 0, CORPUS_ROWS)
            assert np.array_equal(members.membership, full["membership"])
            assert np.array_equal(members.first_slots, full["first_slots"])

    text = "\n".join(
        [
            "Out-of-core corpus scan "
            f"({CORPUS_ROWS} rows x T={N_SAMPLES}, M={BASIS_SIZE}, "
            f"chunk window {CHUNK_ROWS} rows = 1/{CORPUS_ROWS // CHUNK_ROWS} "
            "of the corpus)",
            f"  full pass      : {1e3 * full_s:8.3f} ms "
            f"(tracemalloc peak {full_peak / 1e6:7.2f} MB)",
            f"  chunked scan   : {1e3 * chunked_s:8.3f} ms "
            f"(tracemalloc peak {chunk_peak / 1e6:7.2f} MB, "
            f"{full_peak / max(chunk_peak, 1):.1f}x smaller)",
            f"  served query   : {1e3 * started_rpc:8.3f} ms "
            f"({CORPUS_ROWS // CHUNK_ROWS} chunks streamed, corpus-mmap)",
            f"  streaming cost : full/chunked = {streaming_cost:.2f} "
            "(1.0 = out-of-core is free)",
        ]
    )
    archive("identify_corpus_stream.txt", text)
    bench_record(
        "identify_corpus_stream",
        {
            "corpus_rows": CORPUS_ROWS,
            "chunk_rows": CHUNK_ROWS,
            "n_samples": N_SAMPLES,
            "basis_size": BASIS_SIZE,
            "full_seconds": round(full_s, 6),
            "rpc_seconds": round(started_rpc, 6),
            "full_peak_bytes": int(full_peak),
            "chunk_peak_bytes": int(chunk_peak),
        },
        seconds=chunked_s,
        speedup=streaming_cost,
    )
