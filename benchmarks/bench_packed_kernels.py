"""Benchmark: packed-word kernels vs the dense-raster path.

The tentpole claim of the packed backend: when a wire batch arrives in
its transport form (the ``np.packbits`` bitset — what
``SpikeTrainBatch.to_shared`` ships and shard workers attach), the
receivers should compute *on the bitset* rather than unpacking to a
``(N, n_samples)`` boolean raster first.  These benches measure both
pipelines end to end on the serving workload (256 wires, M=16,
T=65536):

* **raster path** — ``np.unpackbits`` + ``from_raster`` (CSR scatter)
  + the CSR receiver: what the code did before the packed kernels;
* **packed path** — adopt the words zero-copy (exactly what
  ``from_shared`` does with an attached segment) + the packed
  receiver: no unpack, no raster, no CSR.

The acceptance bar is a ≥ 4× wall-time improvement with a peak working
set (tracemalloc) ≤ 1/8 of the raster path's, asserted here and
recorded in ``BENCH_batch.json`` (bytes touched included) so
``compare_bench.py`` gates the trajectory.  CI runs this file on both
popcount implementations (``np.bitwise_count`` and the 16-bit-LUT
fallback via ``REPRO_FORCE_POPCOUNT_LUT=1``).
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch, parallel
from repro.backend import packed as packed_kernels
from repro.pipeline.runner import Runner
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.correlator import CoincidenceCorrelator
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.generators import poisson_train
from repro.units import paper_white_grid

N_WIRES = 256
BASIS_SIZE = 16
#: Mean inter-spike interval of the paper's white source (Table 2).
SOURCE_ISI_SAMPLES = 28

#: Required wall-time improvement of the packed path.
MIN_SPEEDUP = 4.0
#: Required peak-working-set reduction of the packed path.
MIN_MEMORY_RATIO = 8.0

# Pool-parallel dispatch shape: enough wire rows that the per-call
# arena + pickle overhead is small against the kernel it distributes.
POOL_WIRES = 4096
POOL_REFS = 64
POOL_JOBS = 2
#: Required pool speedup over the serial kernel — asserted only on
#: hosts with a second core to run the second worker.
MIN_POOL_SPEEDUP = 1.5


def _peak_bytes(fn):
    """Peak tracemalloc allocation of one invocation."""
    tracemalloc.start()
    fn()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


@pytest.fixture(scope="module")
def workload():
    """Basis, packed wire payload, and a warmed correlator.

    The payload is the batch's transport form: the word-aligned bitset
    (what a shared-memory handle carries) plus its trimmed packbits
    byte view (what the raster path would unpack).  Basis projections
    (owner vector, owned-words bitset) are warmed — in the serving
    system they are per-basis caches shared across every shard.
    """
    grid = paper_white_grid()
    rng = np.random.default_rng(2016)
    source = poisson_train(
        rate_hz=1.0 / (SOURCE_ISI_SAMPLES * grid.dt), grid=grid, rng=rng
    )
    output = DemuxOrthogonator.with_outputs(BASIS_SIZE).transform(source)
    basis = HyperspaceBasis.from_orthogonator(output)
    elements = rng.integers(BASIS_SIZE, size=N_WIRES)
    wires = basis.as_batch().select_rows(elements)
    words = np.ascontiguousarray(wires.packed_words())
    payload = np.ascontiguousarray(wires.packbits())
    correlator = CoincidenceCorrelator(basis)
    correlator.identify_batch(wires)
    correlator.detect_members_batch(wires)
    return basis, correlator, words, payload


def _raster_batch(payload, grid):
    """The pre-packed-kernel pipeline: unpack, scatter CSR, wrap."""
    raster = np.unpackbits(payload, axis=1, count=grid.n_samples).astype(bool)
    return SpikeTrainBatch.from_raster(raster, grid, copy=False)


def _packed_batch(words, grid):
    """The attach pipeline: adopt the shipped words zero-copy, exactly
    as ``from_shared`` wraps a mapped segment."""
    return SpikeTrainBatch._from_packed_words(words, grid, validate=False)


def _kernel_bench(
    name, archive, bench_record, best_of, raster_fn, packed_fn, equal, describe
):
    """Time + peak-measure one receiver on both pipelines and gate it."""
    assert equal(raster_fn(), packed_fn()), "paths disagree bit-for-bit"

    raster_s = best_of(raster_fn)
    packed_s = best_of(packed_fn)
    raster_peak = _peak_bytes(raster_fn)
    packed_peak = _peak_bytes(packed_fn)
    speedup = raster_s / packed_s
    memory_ratio = raster_peak / packed_peak

    text = "\n".join(
        [
            f"{describe} ({N_WIRES} wires, M={BASIS_SIZE}, T=65536, "
            f"popcount={packed_kernels.popcount_impl()})",
            f"  raster path (unpack+CSR) : {1e3 * raster_s:9.3f} ms, "
            f"peak {raster_peak:12,d} B",
            f"  packed path (on bitset)  : {1e3 * packed_s:9.3f} ms, "
            f"peak {packed_peak:12,d} B",
            f"  wall-time speedup        : {speedup:9.1f}x "
            f"(required: {MIN_SPEEDUP}x)",
            f"  working-set reduction    : {memory_ratio:9.1f}x "
            f"(required: {MIN_MEMORY_RATIO}x)",
        ]
    )
    archive(f"{name}.txt", text)
    bench_record(
        name,
        {
            "n_wires": N_WIRES,
            "basis_size": BASIS_SIZE,
            "n_samples": 65536,
            "raster_seconds": round(raster_s, 6),
            "raster_peak_bytes": raster_peak,
            "packed_peak_bytes": packed_peak,
            "popcount": packed_kernels.popcount_impl(),
        },
        packed_s,
        speedup,
    )

    assert speedup >= MIN_SPEEDUP, (
        f"packed {describe} only {speedup:.1f}x faster than the raster "
        f"path (required: {MIN_SPEEDUP}x)"
    )
    assert packed_peak * MIN_MEMORY_RATIO <= raster_peak, (
        f"packed peak {packed_peak:,} B exceeds 1/{MIN_MEMORY_RATIO:.0f} "
        f"of the raster path's {raster_peak:,} B"
    )


def test_packed_identify_kernel(workload, archive, bench_record, best_of):
    """First-coincidence identification from the transport bitset."""
    basis, correlator, words, payload = workload
    grid = basis.grid

    def raster_fn():
        return correlator.identify_batch(_raster_batch(payload, grid))

    def packed_fn():
        return correlator.identify_batch(_packed_batch(words, grid))

    _kernel_bench(
        "identify_packed_kernel",
        archive,
        bench_record,
        best_of,
        raster_fn,
        packed_fn,
        lambda a, b: a.results() == b.results(),
        "Packed-kernel identification",
    )


def test_packed_membership_kernel(workload, archive, bench_record, best_of):
    """Set-membership readout from the transport bitset."""
    basis, correlator, words, payload = workload
    grid = basis.grid

    def raster_fn():
        return correlator.detect_members_batch(_raster_batch(payload, grid))

    def packed_fn():
        return correlator.detect_members_batch(_packed_batch(words, grid))

    _kernel_bench(
        "membership_packed_kernel",
        archive,
        bench_record,
        best_of,
        raster_fn,
        packed_fn,
        lambda a, b: np.array_equal(a.first_slots, b.first_slots),
        "Packed-kernel membership",
    )


def test_packed_setops_throughput(workload, archive, bench_record, best_of):
    """Row-wise set algebra on the bitset vs the dense raster pass.

    Not part of the acceptance gate but recorded for the trajectory:
    one AND/OR over the whole batch touches 1/8 the bytes, and the
    result stays packed (no eager CSR decode).
    """
    basis, _correlator, words, payload = workload
    grid = basis.grid
    packed_a = _packed_batch(words, grid)
    packed_b = packed_a.select_rows(np.arange(N_WIRES)[::-1].copy())
    raster_a = _raster_batch(payload, grid)
    raster_b = raster_a.select_rows(np.arange(N_WIRES)[::-1].copy())
    raster_a.raster, raster_b.raster  # materialise the dense operands

    assert (packed_a & packed_b) == (raster_a & raster_b)

    packed_s = best_of(lambda: packed_a & packed_b)
    raster_s = best_of(lambda: raster_a & raster_b)
    text = "\n".join(
        [
            f"Packed set algebra ({N_WIRES} wires x 65536 slots, AND)",
            f"  raster pass : {1e3 * raster_s:8.3f} ms",
            f"  packed pass : {1e3 * packed_s:8.3f} ms",
            f"  speedup     : {raster_s / packed_s:8.1f}x",
        ]
    )
    archive("packed_setops.txt", text)
    bench_record(
        "setops_packed_kernel",
        {"n_wires": N_WIRES, "n_samples": 65536, "op": "and",
         "popcount": packed_kernels.popcount_impl()},
        packed_s,
        raster_s / packed_s,
    )
    assert packed_s < raster_s


def test_pool_parallel_kernels(workload, archive, bench_record, best_of):
    """Fork-pool dispatch of the chunked kernels over the row axis.

    The pool path splits the wire rows into ``(handle, row_range)``
    tasks on a warmed :class:`Runner` fork pool, ships the operands
    once through a ``SharedArena``, and concatenates the slices in row
    order — so identity with the serial kernel is asserted on every
    host, while the ≥ ``MIN_POOL_SPEEDUP`` wall-time gate only fires
    where a second core exists to run the second worker.
    """
    basis, _correlator, _words, _payload = workload
    rng = np.random.default_rng(7)
    wires = basis.as_batch().select_rows(
        rng.integers(BASIS_SIZE, size=POOL_WIRES)
    )
    refs = basis.as_batch().select_rows(
        rng.integers(BASIS_SIZE, size=POOL_REFS)
    )
    wire_words = np.ascontiguousarray(wires.packed_words())
    ref_words = np.ascontiguousarray(refs.packed_words())

    kernels = [
        ("pairwise_counts", packed_kernels.pairwise_counts,
         parallel.pairwise_counts),
        ("first_slots", packed_kernels.first_coincident_slots,
         parallel.first_coincident_slots),
    ]
    lines = [
        f"Pool-parallel packed kernels ({POOL_WIRES} wires x {POOL_REFS} "
        f"refs, T=65536, jobs={POOL_JOBS}, {os.cpu_count()} cpu(s), "
        f"popcount={packed_kernels.popcount_impl()})"
    ]
    with Runner(jobs=POOL_JOBS) as pool:
        # Warm the pool outside the measured spans: fork the workers
        # and prime the per-process attach cache.
        parallel.pairwise_counts(wire_words, ref_words, runner=pool)
        for name, serial_fn, pool_fn in kernels:
            serial_out = serial_fn(wire_words, ref_words)
            pool_out = pool_fn(wire_words, ref_words, runner=pool)
            assert pool_out.dtype == serial_out.dtype
            assert np.array_equal(pool_out, serial_out), (
                f"pool-parallel {name} is not bit-identical to serial"
            )

            serial_s = best_of(
                lambda: serial_fn(wire_words, ref_words), repeats=3
            )
            pool_s = best_of(
                lambda: pool_fn(wire_words, ref_words, runner=pool),
                repeats=3,
            )
            speedup = serial_s / pool_s
            lines.append(
                f"  {name:<16s}: serial {1e3 * serial_s:8.3f} ms, "
                f"pool {1e3 * pool_s:8.3f} ms, speedup {speedup:6.2f}x"
            )
            bench_record(
                f"{name}_pool_parallel",
                {
                    "n_wires": POOL_WIRES,
                    "n_refs": POOL_REFS,
                    "n_samples": 65536,
                    "jobs": POOL_JOBS,
                    "serial_seconds": round(serial_s, 6),
                    "popcount": packed_kernels.popcount_impl(),
                },
                pool_s,
                speedup,
            )
            if os.cpu_count() >= POOL_JOBS:
                assert speedup >= MIN_POOL_SPEEDUP, (
                    f"pool-parallel {name} only {speedup:.2f}x over serial "
                    f"on {os.cpu_count()} cpus (required: "
                    f"{MIN_POOL_SPEEDUP}x)"
                )
    archive("pool_parallel_kernels.txt", "\n".join(lines))
