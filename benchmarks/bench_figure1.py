"""Benchmark F1: regenerate Figure 1 (demux orthogonator raster).

The paper's Figure 1 shows the white-noise source spike train (top) and
the three orthogonal sub-trains a second-order demultiplexer-based
orthogonator deals it onto.  The regenerated artifact is the ASCII
raster plus the spike-time CSV.
"""

import pytest

from repro.experiments.figures import run_figure1


@pytest.mark.benchmark(group="figures")
def test_figure1(benchmark, archive, results_dir):
    result = benchmark(run_figure1)
    archive("figure1.txt", result.render())
    (results_dir / "figure1.csv").write_text(result.to_csv())

    counts = dict(result.spike_counts())
    # The three wires partition the source train...
    assert counts["source"] == counts["W1"] + counts["W2"] + counts["W3"]
    # ...at equal rates (within one spike).
    wire_counts = [counts["W1"], counts["W2"], counts["W3"]]
    assert max(wire_counts) - min(wire_counts) <= 1
    # Source rate matches the paper's ~90 ps ISI (65 536 x 3.125 ps record).
    assert 2000 < counts["source"] < 2900
