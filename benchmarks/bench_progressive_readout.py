"""Benchmark C4: rough-then-refine readout over an inhomogeneous basis.

Section 4.2: without homogenization, assigning the slow A·B product to
the low-value bit gives a quick rough output refined later; the adverse
assignment (slow element on the top digit) delays any usable estimate.
"""

import pytest

from repro.experiments.progressive import run_progressive


@pytest.mark.benchmark(group="claims")
def test_progressive_readout(benchmark, archive):
    result = benchmark(run_progressive)
    archive("c4_progressive.txt", result.render())

    rough_paper = result.time_to_error(result.paper_assignment, 0.2)
    rough_adverse = result.time_to_error(result.adverse_assignment, 0.2)
    # The paper assignment reaches 20% accuracy much sooner.
    assert rough_paper < 0.5 * rough_adverse
    # Both eventually converge exactly.
    assert result.paper_assignment[-1][1] == pytest.approx(0.0)
    assert result.adverse_assignment[-1][1] == pytest.approx(0.0)
