"""Ablation A1: common-mode amplitude vs output-rate spread.

Why 0.945?  The paper hand-picks the common-mode mixing amplitude; this
ablation sweeps it and verifies (a) the spread falls monotonically into
the strongly-correlated region and (b) an automated search lands in the
same neighbourhood the paper chose.
"""

import pytest

from repro.noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from repro.noise.synthesis import NoiseSynthesizer
from repro.orthogonator.homogenize import Homogenizer, search_common_amplitude
from repro.units import paper_white_grid

AMPLITUDES = (0.0, 0.5, 0.8, 0.9, 0.945, 0.98)


def sweep():
    synthesizer = NoiseSynthesizer(
        WhiteSpectrum(PAPER_WHITE_BAND), paper_white_grid(n_samples=16384)
    )
    homogenizer = Homogenizer(synthesizer)
    spreads = {a: homogenizer.run(a, rng=0).spread for a in AMPLITUDES}
    best = search_common_amplitude(homogenizer, seed=0, n_grid=8, n_refine=2)
    return spreads, best


@pytest.mark.benchmark(group="ablations")
def test_homogenization_sweep(benchmark, archive):
    spreads, best = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["A1 — rate spread vs common-mode amplitude"]
    lines += [f"  c = {a:5.3f}: spread {s:8.2f}x" for a, s in spreads.items()]
    lines.append(
        f"  search optimum: c = {best.common_amplitude:.3f} "
        f"(spread {best.spread:.2f}x; paper used 0.945)"
    )
    archive("a1_homogenization.txt", "\n".join(lines))

    # Spread shrinks with correlation and is ~flat near the paper's pick.
    assert spreads[0.0] > spreads[0.8] > spreads[0.945]
    assert spreads[0.945] < 1.6
    assert 0.85 <= best.common_amplitude <= 0.99
