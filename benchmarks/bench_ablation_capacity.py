"""Ablation A5: link capacity vs demux width (the ternary optimum).

On a fixed spike budget the sequential link's capacity is
``(R/M)·log2 M``, which peaks at M = 3.  Measured on the paper-band
noise source; a design rule the paper does not state but its scheme
implies.
"""

import pytest

from repro.analysis.capacity import capacity_sweep, optimal_radix
from repro.hyperspace.builders import paper_default_synthesizer
from repro.noise.synthesis import make_rng
from repro.spikes.zero_crossing import AllCrossingDetector

RADIXES = (2, 3, 4, 6, 8, 16)


def sweep():
    synthesizer = paper_default_synthesizer()
    record = synthesizer.generate(make_rng(0))
    train = AllCrossingDetector().detect(record, synthesizer.grid)
    return capacity_sweep(train, RADIXES), len(train) / synthesizer.grid.duration


@pytest.mark.benchmark(group="ablations")
def test_capacity_sweep(benchmark, archive):
    capacities, spike_rate = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["A5 — sequential-link capacity vs demux width"]
    for c in capacities:
        lines.append(
            f"  M = {c.radix:2d}: {c.package_rate / 1e9:6.2f} Gsym/s x "
            f"{c.bits_per_package:4.2f} bit = {c.bits_per_second / 1e9:6.2f} Gbit/s"
        )
    archive("a5_capacity.txt", "\n".join(lines))

    best = max(capacities, key=lambda c: c.bits_per_second)
    assert best.radix == 3
    assert best.radix == optimal_radix(RADIXES, spike_rate)
    # Capacity is unimodal around the optimum over this sweep.
    values = [c.bits_per_second for c in capacities]
    peak = values.index(max(values))
    assert all(a < b for a, b in zip(values[:peak], values[1 : peak + 1]))
    assert all(a > b for a, b in zip(values[peak:], values[peak + 1 :]))
