"""Benchmark F3: regenerate Figure 3 (intersection raster, correlated).

Same circuit as Figure 2 with strongly correlated sources (0.945/0.055
common-mode mix): the three product wires now fire at comparable rates
while staying orthogonal — the homogenization result.
"""

import pytest

from repro.experiments.figures import run_figure3
from repro.orthogonator.intersection import product_label


@pytest.mark.benchmark(group="figures")
def test_figure3(benchmark, archive, results_dir):
    result = benchmark(run_figure3)
    archive("figure3.txt", result.render())
    (results_dir / "figure3.csv").write_text(result.to_csv())

    counts = dict(result.spike_counts())
    products = [
        counts[product_label(mask, ("A", "B"))] for mask in (0b11, 0b01, 0b10)
    ]
    # Homogenized: all three products within a factor 1.3.
    assert max(products) < 1.3 * min(products)
    # Orthogonality bookkeeping: products still partition the input union.
    both, a_only, b_only = products
    assert both + a_only == counts["A"]
    assert both + b_only == counts["B"]
