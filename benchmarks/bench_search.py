"""Benchmark C7: search — superposition coincidence vs classical vs Grover.

The paper's intro cites that the hyperspace scheme "was shown to
outperform a quantum search algorithm" (ref [2]).  Measured here:
membership-query cost vs database size K = 2^N − 1 for the
coincidence scheme (flat), exact Grover simulation (~sqrt K oracle
calls) and the classical scan (~K/2).
"""

import pytest

from repro.experiments.search import run_search


@pytest.mark.benchmark(group="claims")
def test_search(benchmark, archive):
    result = benchmark.pedantic(run_search, rounds=1, iterations=1)
    archive("c7_search.txt", result.render())

    for point in result.points:
        # The spike scheme answers in ONE coincidence at every K.
        assert point.spike_checks == 1
        # Grover needs the optimal iteration count with high success.
        assert point.grover_success > 0.85
        # Ordering: spike < grover < classical, everywhere.
        assert point.spike_checks < point.grover_queries < point.classical_queries

    # Grover scales ~sqrt(K): quadrupling K roughly doubles the calls.
    first, last = result.points[0], result.points[-1]
    growth = last.grover_queries / first.grover_queries
    size_growth = (last.n_items / first.n_items) ** 0.5
    assert growth == pytest.approx(size_growth, rel=0.5)
