"""Diff two BENCH_batch.json files and fail on wall-time regressions.

The perf trajectory's first regression gate: given a *baseline* bench
file (typically the committed ``benchmarks/BENCH_batch.json``) and a
*candidate* (a fresh bench run), compare the per-experiment ``seconds``
and exit non-zero when any experiment regressed by more than the
threshold (default 20%).  Experiments missing from the candidate are
regressions too — a bench silently disappearing must not pass the gate.

Experiments present only in the candidate are **informational**: a new
bench (say ``bench_corpus.py``) lands cleanly in the PR that adds it,
without needing its entry hand-edited into the committed baseline in
the same commit — the entry simply starts gating on the next baseline
refresh.  Speedups likewise never fail.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CANDIDATE.json
    python benchmarks/compare_bench.py old.json new.json --threshold 0.5

The threshold is a fraction: ``--threshold 0.2`` fails when candidate
seconds exceed ``baseline * 1.2``.  Cross-machine comparisons (CI vs a
laptop) should pass a generous threshold — the entries' ``cpus`` /
``python`` / ``commit`` provenance fields are printed whenever the two
files disagree about the machine.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Sequence


def load_entries(path: pathlib.Path) -> Dict[str, dict]:
    """A bench file's entries, keyed by experiment name.

    Validates the shape up front so a malformed entry — hand-edited,
    or written by a buggy new bench — fails with the file, index and
    field named instead of a ``KeyError`` traceback deep in the diff.
    """
    entries = json.loads(path.read_text())
    if not isinstance(entries, list):
        raise ValueError(f"{path}: expected a JSON list of bench entries")
    by_name: Dict[str, dict] = {}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: entry {index} is not an object")
        name = entry.get("experiment")
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"{path}: entry {index} has no 'experiment' name"
            )
        seconds = entry.get("seconds")
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            raise ValueError(
                f"{path}: entry {index} ({name!r}) has a non-numeric "
                f"'seconds' field: {seconds!r}"
            )
        if name in by_name:
            raise ValueError(f"{path}: duplicate experiment {name!r}")
        by_name[name] = entry
    return by_name


def _provenance(entry: dict) -> str:
    """One-line machine/commit description of an entry."""
    return (
        f"cpus={entry.get('cpus', '?')} python={entry.get('python', '?')} "
        f"commit={entry.get('commit', '?')}"
    )


def compare(
    baseline: Dict[str, dict],
    candidate: Dict[str, dict],
    threshold: float,
    min_seconds: float = 0.0,
) -> List[str]:
    """Compare two entry maps; returns the list of regression messages.

    Entries whose baseline is below ``min_seconds`` are reported but
    never fail: sub-millisecond micro-timings are machine noise when
    the baseline and candidate come from different hosts.
    """
    regressions: List[str] = []
    for name in sorted(baseline):
        old = baseline[name]
        new = candidate.get(name)
        if new is None:
            regressions.append(f"{name}: missing from candidate")
            continue
        old_s, new_s = float(old["seconds"]), float(new["seconds"])
        ratio = new_s / old_s if old_s > 0 else float("inf")
        status = "ok"
        if old_s < min_seconds:
            status = "ok (below min-seconds floor)"
        elif new_s > old_s * (1.0 + threshold):
            status = "REGRESSION"
            regressions.append(
                f"{name}: {old_s:.6f}s -> {new_s:.6f}s "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
        print(
            f"{name:<28s} {old_s:>12.6f}s -> {new_s:>12.6f}s "
            f"({ratio:>5.2f}x)  {status}"
        )
        if _provenance(old) != _provenance(new):
            print(f"{'':<28s} baseline : {_provenance(old)}")
            print(f"{'':<28s} candidate: {_provenance(new)}")
    for name in sorted(set(candidate) - set(baseline)):
        # Informational by design: a new bench must land in the PR
        # that adds it without a hand-edited baseline entry.
        print(
            f"{name:<28s} (new entry: "
            f"{float(candidate[name]['seconds']):.6f}s, gates once it "
            "reaches the baseline)"
        )
    return regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_batch.json files; non-zero exit on "
        "wall-time regressions beyond the threshold."
    )
    parser.add_argument("baseline", type=pathlib.Path,
                        help="baseline bench JSON (e.g. the committed file)")
    parser.add_argument("candidate", type=pathlib.Path,
                        help="candidate bench JSON (a fresh run)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed fractional slowdown before failing (default 0.2)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.0,
        help="entries with a baseline below this never fail — "
        "micro-timings are noise across machines (default 0.0)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error(f"threshold must be >= 0, got {args.threshold}")

    regressions = compare(
        load_entries(args.baseline),
        load_entries(args.candidate),
        args.threshold,
        min_seconds=args.min_seconds,
    )
    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
