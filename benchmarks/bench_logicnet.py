"""Benchmark: batched logic-network evaluation vs the per-gate reference.

The ``logicnet`` tentpole's perf claim: evaluating N random 2-input
gate networks layer-by-layer on packed words
(:meth:`~repro.logic.netbatch.LogicNetBatch.evaluate`) beats the
obvious per-gate truth-table evaluator
(:func:`~repro.testing.differential.reference_evaluate` — one network,
one layer, one gate at a time on dense booleans).  Measured at the
serving-shaped scale from the issue: 256 networks × 256 gates
(4 layers × 64) over 16 shared input lines on the paper's
65 536-sample grid.  The acceptance bar is a ≥ 4× speedup, and the
batched pass must hold the packed-primary invariant — the input
batch's raster stays unmaterialised.

The reference walks in network chunks (a full dense ``(N, G, T)``
boolean would be ~4 GB) and reduces each chunk to popcounts — the same
summary the batched pass emits, compared for bit-identity before any
timing.  Runs on either popcount path; set ``REPRO_FORCE_POPCOUNT_LUT``
to record the LUT fallback.

Every bench records a machine-readable entry in
``benchmarks/BENCH_batch.json`` (schema: experiment, config, seconds,
speedup) so the perf trajectory is tracked across PRs.
"""

import numpy as np
import pytest

from repro.backend.packed import popcount_impl
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.netbatch import LogicNetBatch
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.generators import poisson_train
from repro.testing import differential
from repro.units import paper_white_grid

N_NETWORKS = 256
N_GATES = 64
DEPTH = 4
BASIS_SIZE = 16
#: Mean inter-spike interval of the paper's white source (Table 2).
SOURCE_ISI_SAMPLES = 28
#: Networks per reference chunk — bounds the dense boolean working set.
REFERENCE_CHUNK = 16


@pytest.fixture(scope="module")
def workload():
    grid = paper_white_grid()
    rng = np.random.default_rng(2016)
    source = poisson_train(
        rate_hz=1.0 / (SOURCE_ISI_SAMPLES * grid.dt), grid=grid, rng=rng
    )
    output = DemuxOrthogonator.with_outputs(BASIS_SIZE).transform(source)
    basis = HyperspaceBasis.from_orthogonator(output)
    nets = LogicNetBatch.random(N_NETWORKS, N_GATES, DEPTH, BASIS_SIZE, 2016)
    return basis, nets


def _reference_popcounts(nets, raster):
    """Per-gate output popcounts via the single-gate reference path.

    Network-chunked so the dense boolean stays bounded; each chunk's
    ``(n, G, T)`` outputs reduce to the same ``(n, G)`` summary the
    batched pass emits.
    """
    chunks = []
    for lo in range(0, nets.n_networks, REFERENCE_CHUNK):
        sub = nets.select_networks(lo, lo + REFERENCE_CHUNK)
        chunks.append(
            differential.reference_evaluate(sub, raster).sum(
                axis=-1, dtype=np.int64
            )
        )
    return np.concatenate(chunks)


def test_logicnet_batched_speedup(workload, archive, bench_record, best_of):
    basis, nets = workload
    # The batched pipeline's natural input is the basis batch's packed
    # words; the reference reads the same lines as dense booleans,
    # unpacked from a words *copy* so no raster ever attaches to the
    # measured batch.
    hot = basis.as_batch()
    words = hot.packed_words()
    n_samples = hot.grid.n_samples
    raster = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), axis=-1
    )[:, :n_samples].astype(bool)

    def batched_pass():
        return nets.evaluate(words, n_samples)

    outcome = {}

    def per_gate_reference():
        outcome["popcounts"] = _reference_popcounts(nets, raster)

    popcounts, checksums = batched_pass()
    reference_s = best_of(per_gate_reference, repeats=1)
    np.testing.assert_array_equal(
        popcounts,
        outcome["popcounts"],
        err_msg="batched logicnet pass diverged from the per-gate reference",
    )
    # Packed-primary invariant: the measured path never built a raster.
    assert not hot.raster_materialised

    batch_s = best_of(batched_pass, repeats=3)
    speedup = reference_s / batch_s

    total_gates = N_NETWORKS * N_GATES * DEPTH
    text = "\n".join(
        [
            "logicnet batched evaluation "
            f"({N_NETWORKS} nets x {DEPTH}x{N_GATES} gates, "
            f"{BASIS_SIZE} lines, {n_samples} slots, "
            f"popcount={popcount_impl()})",
            f"  per-gate reference : {reference_s:.3f} s "
            f"({1e6 * reference_s / total_gates:.1f} us/gate)",
            f"  batched packed     : {batch_s:.3f} s "
            f"({1e6 * batch_s / total_gates:.2f} us/gate)",
            f"  speedup            : {speedup:.1f}x",
            f"  output spikes      : {int(popcounts.sum())}",
            f"  checksum fold      : 0x{int(np.bitwise_xor.reduce(checksums)):016x}",
        ]
    )
    archive(f"bench_logicnet_{popcount_impl()}.txt", text)
    bench_record(
        f"logicnet_batched_{popcount_impl()}",
        config={
            "n_networks": N_NETWORKS,
            "n_gates": N_GATES,
            "depth": DEPTH,
            "basis_size": BASIS_SIZE,
            "n_samples": n_samples,
            "reference_seconds": round(reference_s, 6),
            "popcount": popcount_impl(),
        },
        seconds=batch_s,
        speedup=speedup,
    )
    assert speedup >= 4.0, (
        f"batched logicnet evaluation must be >= 4x the per-gate "
        f"reference, got {speedup:.2f}x"
    )
