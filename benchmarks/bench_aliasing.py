"""Benchmark C2: delay aliasing — periodic vs random spike bases.

Section 6: delayed periodic trains alias exactly onto other basis
elements (confident wrong answers); delayed random trains at worst go
silent (detectable).  The sweep applies delays including exact multiples
of the periodic wire spacing.
"""

import pytest

from repro.experiments.aliasing import run_aliasing


@pytest.mark.benchmark(group="claims")
def test_aliasing(benchmark, archive):
    result = benchmark(run_aliasing)
    archive("c2_aliasing.txt", result.render())

    # The periodic basis aliases at every multiple of the spacing.
    for k in (1, 2, 3):
        assert k * result.spacing_samples in result.periodic_alias_delays()
    # The random basis never returns a confident wrong verdict.
    assert result.max_random_wrong_rate() == 0.0
    # Both schemes are clean at zero delay.
    assert result.periodic[0].error_rate == 0.0
    assert result.random[0].error_rate == 0.0
