"""Ablation A6: circuit-level variation tolerance (Monte Carlo).

Section 1: "variation tolerant circuits can be designed, while speed is
retained".  Random per-connection delays are injected into an
event-driven half adder built on a sparse random basis with
confidence-gated receivers: across all corners the circuit must never
compute a wrong value — misaligned gates stall detectably instead.  A
dense periodic basis under the same treatment DOES produce confident
wrong values (the Section 6 counterpoint).
"""

import numpy as np
import pytest

from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.circuits import Circuit
from repro.logic.gates import and_gate, buffer_gate, xor_gate
from repro.simulator.variation import variation_monte_carlo
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=8192, dt=3.125e-12)


def run():
    rng = np.random.default_rng(0)
    slots = np.sort(rng.choice(GRID.n_samples, size=512, replace=False))
    random_basis = HyperspaceBasis([SpikeTrain(slots[k::2], GRID) for k in range(2)])

    circuit = Circuit("half_adder", {"a": random_basis, "b": random_basis})
    circuit.add_gate("sum", xor_gate(random_basis), ["a", "b"])
    circuit.add_gate("carry", and_gate(random_basis), ["a", "b"])
    circuit.mark_output("sum")
    circuit.mark_output("carry")

    outcomes = {}
    for delay in (0, 8, 32, 128):
        wires = {"a": random_basis.encode(1), "b": random_basis.encode(1)}
        outcomes[delay] = variation_monte_carlo(
            circuit, wires, max_extra_delay=delay, trials=6, rng=rng
        )

    periodic = HyperspaceBasis(
        [SpikeTrain(range(k, GRID.n_samples, 2), GRID) for k in range(2)]
    )
    periodic_circuit = Circuit("buf", {"a": periodic})
    periodic_circuit.add_gate("y", buffer_gate(periodic), ["a"])
    periodic_circuit.mark_output("y")
    periodic_outcome = variation_monte_carlo(
        periodic_circuit, {"a": periodic.encode(0)},
        max_extra_delay=5, trials=10, rng=rng,
    )
    return outcomes, periodic_outcome


@pytest.mark.benchmark(group="ablations")
def test_variation_tolerance(benchmark, archive):
    outcomes, periodic_outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["A6 — circuit-level variation Monte Carlo (random basis)"]
    for delay, outcome in outcomes.items():
        lines.append(
            f"  max delay {delay:4d} samples: wrong {outcome.wrong_value_trials}"
            f"/{outcome.trials}, stalled {outcome.unsettled_trials}"
            f"/{outcome.trials}"
        )
    lines.append(
        f"  periodic basis, delays <= 5: wrong "
        f"{periodic_outcome.wrong_value_trials}/{periodic_outcome.trials} "
        "(aliasing, as Section 6 predicts)"
    )
    archive("a6_variation.txt", "\n".join(lines))

    # Random basis: never silently wrong at any corner.
    for outcome in outcomes.values():
        assert outcome.wrong_value_trials == 0
    # Zero-variation corner settles every trial.
    assert outcomes[0].unsettled_trials == 0
    # The periodic counterpoint does corrupt.
    assert periodic_outcome.wrong_value_trials > 0
