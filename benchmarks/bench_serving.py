"""Benchmark: end-to-end serving throughput and request latency.

The serving layer's claim is not a kernel speedup — it is that the RPC
boundary adds only framing and transport on top of the packed compute
path.  Two shapes are measured against one embedded
:class:`~repro.serving.server.SpikeServer`:

* ``serving_identify_rpc`` — the serial shape (256 wires, M=16,
  T=65536, one request at a time): whole-request wall time (encode →
  socket → from_packed → compute → binary result frame → merge) with
  the in-process ``identify_batch`` wall time of the same batch as
  the no-RPC baseline.  Served on the fast path with version-2 binary
  responses.
* ``serving_identify_rpc_concurrent`` — the production shape (many
  connections × pipelined streams of small 16-wire requests, request
  coalescing on): per-request latency under concurrency, where the
  server stacks compatible requests into wide micro-batches.  The
  gate is that p50 stays within ~3× of the in-process compute of one
  *round* of in-flight work (closed-loop streams each keep a request
  outstanding, so a saturated request waits roughly a round) — i.e.
  the serving layer adds at most a couple of compute-times of
  overhead even at load — and the recorded req/s is the throughput
  floor ``compare_bench.py`` holds future runs to.
* ``serving_identify_rpc_workers2`` — the same concurrent shape
  against a two-worker :class:`~repro.serving.cluster.ServerCluster`
  (``repro serve --workers 2``): forked worker *processes*, so the
  packed compute leaves the client's GIL entirely.  Correctness
  (aggregated cluster counters account for every request sent) is
  asserted everywhere; the "more workers → more req/s than the
  single-process entry" gate only fires on hosts with a second core
  to run the second worker.

Both entries record ``seconds`` as the **best-of** request latency —
the same minimum-damps-scheduler-noise methodology every gated entry
uses (p50 would make the cross-machine ``compare_bench.py`` gate fire
on TCP/thread scheduling noise); ``speedup`` is baseline/best — the
fraction of a request that is compute rather than serving overhead
(1.0 would mean a free RPC layer).  p50, p99 and requests/sec travel
in the config blocks.
"""

import asyncio
import json
import os
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.logic.correlator import CoincidenceCorrelator
from repro.serving.client import AsyncServingClient, RetryPolicy, ServingClient
from repro.serving.cluster import ServerCluster
from repro.serving.server import ServerConfig, ServerThread, build_serving_basis
from repro.testing import faults

N_WIRES = 256
BASIS_SIZE = 16
N_SAMPLES = 65536
SOURCE_ISI_SAMPLES = 28
N_REQUESTS = 30

# Production-shaped concurrent load: many connections, each running
# several pipelined streams of small requests.
N_CLIENTS = 4
STREAMS_PER_CLIENT = 8
REQUESTS_PER_STREAM = 12
WIRES_PER_REQUEST = 16


@pytest.fixture(scope="module", autouse=True)
def tight_gil_switch():
    """Shorten the GIL switch interval around the serving benchmarks.

    The bench colocates the client thread(s) and the server's event
    loop in one process (``ServerThread``), so every response puts the
    interpreter's thread handoff in the measured path — and the
    default 5 ms switch interval turns each handoff into a
    multi-millisecond stall that a cross-process deployment never
    sees.  0.1 ms keeps the handoff cost proportionate to the RPC
    itself without touching the serving code under test.
    """
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    yield
    sys.setswitchinterval(previous)


@pytest.fixture(scope="module")
def serving_workload():
    config = ServerConfig(
        seed=2016,
        basis_size=BASIS_SIZE,
        n_samples=N_SAMPLES,
        source_isi_samples=SOURCE_ISI_SAMPLES,
        jobs=1,
    )
    basis = build_serving_basis(config)
    rng = np.random.default_rng(2016)
    elements = rng.integers(BASIS_SIZE, size=N_WIRES)
    wires = basis.as_batch().select_rows(elements)
    return config, basis, wires, elements


def test_serving_identify_rpc(serving_workload, archive, bench_record, best_of):
    config, basis, wires, elements = serving_workload
    correlator = CoincidenceCorrelator(basis)
    local = correlator.identify_batch(wires, missing="none")
    # The no-RPC baseline: the same batched pass, in process.
    local_s = best_of(lambda: correlator.identify_batch(wires, missing="none"))

    with ServerThread(config) as handle:
        with ServingClient(handle.host, handle.port) as client:
            reply = client.identify(wires)  # warm-up + correctness
            assert np.array_equal(reply.elements, local.elements)
            assert np.array_equal(reply.elements, elements)
            assert reply.summary["server_residency"]["raster"] is False

            latencies = []
            span_start = time.perf_counter()
            for _request in range(N_REQUESTS):
                started = time.perf_counter()
                client.identify(wires)
                latencies.append(time.perf_counter() - started)
            span = time.perf_counter() - span_start

    latencies = np.sort(np.array(latencies))
    best = float(latencies[0])
    p50 = float(np.percentile(latencies, 50))
    p99 = float(np.percentile(latencies, 99))
    requests_per_second = N_REQUESTS / span
    wires_per_second = requests_per_second * N_WIRES
    compute_fraction = local_s / best

    text = "\n".join(
        [
            "Serving front-end, end-to-end identify RPC "
            f"({N_WIRES} wires, M={BASIS_SIZE}, T={N_SAMPLES}, "
            f"{N_REQUESTS} requests)",
            f"  request best   : {1e3 * best:8.3f} ms",
            f"  request p50    : {1e3 * p50:8.3f} ms",
            f"  request p99    : {1e3 * p99:8.3f} ms",
            f"  throughput     : {requests_per_second:8.1f} req/s "
            f"({wires_per_second:9.0f} wires/s)",
            f"  in-process pass: {1e3 * local_s:8.3f} ms "
            f"(compute fraction of best: {compute_fraction:.2f})",
        ]
    )
    archive("serving_identify_rpc.txt", text)
    bench_record(
        "serving_identify_rpc",
        {
            "n_wires": N_WIRES,
            "basis_size": BASIS_SIZE,
            "n_samples": N_SAMPLES,
            "requests": N_REQUESTS,
            "p50_seconds": round(p50, 6),
            "p99_seconds": round(p99, 6),
            "requests_per_second": round(requests_per_second, 1),
            "local_seconds": round(local_s, 6),
        },
        seconds=best,
        speedup=compute_fraction,
    )
    # The RPC layer must not swamp the compute it fronts: at this
    # payload size the request should stay within ~50x of the raw
    # batched pass even on a noisy CI machine.
    assert best < local_s * 50 + 0.05


def test_serving_identify_rpc_concurrent(
    serving_workload, archive, bench_record, best_of
):
    config, basis, wires, elements = serving_workload
    correlator = CoincidenceCorrelator(basis)

    # Each stream owns one small batch sliced from the big wire set.
    rng = np.random.default_rng(7)
    n_streams = N_CLIENTS * STREAMS_PER_CLIENT
    streams = []
    for _ in range(n_streams):
        rows = rng.integers(0, N_WIRES, size=WIRES_PER_REQUEST)
        streams.append((wires.select_rows(rows), elements[rows]))

    # The fast-path baseline: one small batch, computed in process.
    small_batch = streams[0][0]
    local_s = best_of(
        lambda: correlator.identify_batch(small_batch, missing="none")
    )

    serve_config = ServerConfig(
        seed=config.seed,
        basis_size=config.basis_size,
        n_samples=config.n_samples,
        source_isi_samples=config.source_isi_samples,
        jobs=1,
        coalesce_window=0.002,
        coalesce_max_wires=128,
    )

    latencies = []

    async def stream(client, batch, expected):
        loop = asyncio.get_running_loop()
        for _request in range(REQUESTS_PER_STREAM):
            started = loop.time()
            reply = await client.identify(batch)
            latencies.append(loop.time() - started)
            assert np.array_equal(reply.elements, expected)

    async def drive(host, port):
        clients = [
            await AsyncServingClient.open(host, port)
            for _client in range(N_CLIENTS)
        ]
        try:
            await asyncio.gather(
                *[
                    stream(
                        clients[index % N_CLIENTS],
                        batch,
                        expected,
                    )
                    for index, (batch, expected) in enumerate(streams)
                ]
            )
            return await clients[0].stats()
        finally:
            for client in clients:
                await client.aclose()

    with ServerThread(serve_config) as handle:
        # Warm-up round (connection setup, first from_packed, JIT-warm
        # caches) before the measured span.
        asyncio.run(drive(handle.host, handle.port))
        latencies.clear()
        span_start = time.perf_counter()
        stats = asyncio.run(drive(handle.host, handle.port))
        span = time.perf_counter() - span_start

    n_requests = n_streams * REQUESTS_PER_STREAM
    latencies = np.sort(np.array(latencies))
    assert latencies.size == n_requests
    best = float(latencies[0])
    p50 = float(np.percentile(latencies, 50))
    p99 = float(np.percentile(latencies, 99))
    requests_per_second = n_requests / span
    wires_per_second = requests_per_second * WIRES_PER_REQUEST
    compute_fraction = local_s / best

    text = "\n".join(
        [
            "Serving front-end, concurrent identify RPC "
            f"({N_CLIENTS} connections x {STREAMS_PER_CLIENT} streams, "
            f"{WIRES_PER_REQUEST} wires/request, M={BASIS_SIZE}, "
            f"T={N_SAMPLES}, {n_requests} requests, coalescing on)",
            f"  request best   : {1e3 * best:8.3f} ms",
            f"  request p50    : {1e3 * p50:8.3f} ms",
            f"  request p99    : {1e3 * p99:8.3f} ms",
            f"  throughput     : {requests_per_second:8.1f} req/s "
            f"({wires_per_second:9.0f} wires/s)",
            f"  coalescing     : {stats['coalesced_requests']} requests in "
            f"{stats['coalesced_batches']} batches",
            f"  in-process pass: {1e3 * local_s:8.3f} ms "
            f"(compute fraction of best: {compute_fraction:.2f})",
        ]
    )
    archive("serving_identify_rpc_concurrent.txt", text)
    bench_record(
        "serving_identify_rpc_concurrent",
        {
            "connections": N_CLIENTS,
            "streams": n_streams,
            "wires_per_request": WIRES_PER_REQUEST,
            "basis_size": BASIS_SIZE,
            "n_samples": N_SAMPLES,
            "requests": n_requests,
            "p50_seconds": round(p50, 6),
            "p99_seconds": round(p99, 6),
            "requests_per_second": round(requests_per_second, 1),
            "coalesced_batches": int(stats["coalesced_batches"]),
            "local_seconds": round(local_s, 6),
        },
        seconds=best,
        speedup=compute_fraction,
    )
    # The tentpole gate: closed-loop streams keep one request in
    # flight each, so under saturation every request waits roughly one
    # full round of in-flight work — the in-process baseline for a
    # round is ``n_streams`` times the one-batch pass.  p50 within ~3x
    # of that bounds the serving layer's per-request overhead at a
    # couple of compute-times even at full load; the additive floor
    # absorbs the coalescing window and scheduler noise on shared CI
    # machines.
    assert p50 < 3 * n_streams * local_s + 0.008
    # Coalescing must actually be engaging under this load.
    assert stats["coalesced_batches"] < n_requests


def test_serving_identify_rpc_workers2(
    serving_workload, archive, bench_record, best_of
):
    """The concurrent shape against a two-worker cluster on one port."""
    config, basis, wires, elements = serving_workload
    correlator = CoincidenceCorrelator(basis)

    rng = np.random.default_rng(7)
    n_streams = N_CLIENTS * STREAMS_PER_CLIENT
    streams = []
    for _ in range(n_streams):
        rows = rng.integers(0, N_WIRES, size=WIRES_PER_REQUEST)
        streams.append((wires.select_rows(rows), elements[rows]))

    small_batch = streams[0][0]
    local_s = best_of(
        lambda: correlator.identify_batch(small_batch, missing="none")
    )

    cluster_config = ServerConfig(
        seed=config.seed,
        basis_size=config.basis_size,
        n_samples=config.n_samples,
        source_isi_samples=config.source_isi_samples,
        jobs=1,
        workers=2,
        coalesce_window=0.002,
        coalesce_max_wires=128,
    )

    latencies = []

    async def stream(client, batch, expected):
        loop = asyncio.get_running_loop()
        for _request in range(REQUESTS_PER_STREAM):
            started = loop.time()
            reply = await client.identify(batch)
            latencies.append(loop.time() - started)
            assert np.array_equal(reply.elements, expected)

    async def drive(host, port):
        clients = [
            await AsyncServingClient.open(host, port)
            for _client in range(N_CLIENTS)
        ]
        try:
            await asyncio.gather(
                *[
                    stream(clients[index % N_CLIENTS], batch, expected)
                    for index, (batch, expected) in enumerate(streams)
                ]
            )
            return await clients[0].stats()
        finally:
            for client in clients:
                await client.aclose()

    n_requests = n_streams * REQUESTS_PER_STREAM
    with ServerCluster(cluster_config) as cluster:
        host = cluster_config.host
        # Warm-up round: connections, forked workers' first from_packed.
        asyncio.run(drive(host, cluster.port))
        latencies.clear()
        span_start = time.perf_counter()
        stats = asyncio.run(drive(host, cluster.port))
        span = time.perf_counter() - span_start

    # The cluster-wide counters must account for every request sent —
    # warm-up plus measured round — regardless of which worker each
    # connection landed on.  This is the cross-worker STATS gate: any
    # worker answers with the aggregate of all of them.
    assert stats["scope"] == "cluster"
    assert stats["workers"] == 2
    assert stats["requests_served"] == 2 * n_requests
    assert (
        sum(w["requests_served"] for w in stats["per_worker"])
        == 2 * n_requests
    )

    latencies = np.sort(np.array(latencies))
    assert latencies.size == n_requests
    best = float(latencies[0])
    p50 = float(np.percentile(latencies, 50))
    p99 = float(np.percentile(latencies, 99))
    requests_per_second = n_requests / span
    compute_fraction = local_s / best
    per_worker = [int(w["requests_served"]) for w in stats["per_worker"]]

    text = "\n".join(
        [
            "Serving front-end, concurrent identify RPC, 2-worker cluster "
            f"({N_CLIENTS} connections x {STREAMS_PER_CLIENT} streams, "
            f"{WIRES_PER_REQUEST} wires/request, M={BASIS_SIZE}, "
            f"T={N_SAMPLES}, {n_requests} requests, {os.cpu_count()} cpu(s))",
            f"  request best   : {1e3 * best:8.3f} ms",
            f"  request p50    : {1e3 * p50:8.3f} ms",
            f"  request p99    : {1e3 * p99:8.3f} ms",
            f"  throughput     : {requests_per_second:8.1f} req/s",
            f"  worker split   : {per_worker} "
            "(warm-up + measured rounds)",
            f"  in-process pass: {1e3 * local_s:8.3f} ms "
            f"(compute fraction of best: {compute_fraction:.2f})",
        ]
    )
    archive("serving_identify_rpc_workers2.txt", text)
    bench_record(
        "serving_identify_rpc_workers2",
        {
            "connections": N_CLIENTS,
            "streams": n_streams,
            "wires_per_request": WIRES_PER_REQUEST,
            "basis_size": BASIS_SIZE,
            "n_samples": N_SAMPLES,
            "requests": n_requests,
            "workers": 2,
            "p50_seconds": round(p50, 6),
            "p99_seconds": round(p99, 6),
            "requests_per_second": round(requests_per_second, 1),
            "local_seconds": round(local_s, 6),
        },
        seconds=best,
        speedup=compute_fraction,
    )

    # More workers must mean more throughput — but only where a second
    # core exists to run the second worker; on one CPU the cluster adds
    # proxy/reuseport hops without adding compute.
    if os.cpu_count() >= 2:
        bench_json = pathlib.Path(__file__).parent / "BENCH_batch.json"
        entries = {
            entry["experiment"]: entry
            for entry in json.loads(bench_json.read_text())
        }
        single = entries.get("serving_identify_rpc_concurrent")
        if single is not None:
            single_rps = single["config"]["requests_per_second"]
            assert requests_per_second > single_rps, (
                f"2-worker cluster served {requests_per_second:.0f} req/s, "
                f"below the single-process entry's {single_rps:.0f} req/s"
            )


# --- fault-tolerance overhead -----------------------------------------

FAULT_N_SAMPLES = 4096
FAULT_BASIS_SIZE = 8
FAULT_REQUESTS = 250
FAULT_KILL_RATE = 0.01


def test_serving_identify_rpc_under_faults(archive, bench_record):
    """Request latency against a self-healing cluster under injected kills.

    The same sequential identify load is driven twice against a
    two-worker :class:`~repro.serving.cluster.ServerCluster` — once
    calm, once with ``serving.handle_frame=kill:p=0.01`` armed, so
    ~1% of requests SIGKILL the worker serving them mid-request.  The
    client's :class:`~repro.serving.client.RetryPolicy` reconnects and
    re-issues; the cluster monitor respawns the victims.  The gate:
    the p50 under faults stays within 2x the fault-free p50 (plus a
    small additive floor for sub-millisecond noise) — fault tolerance
    is overhead-free for the requests that hit no fault, and the
    killed requests land in the tail, not the median.  ``seconds``
    records the faulted p50 (the quantity the gate protects), unlike
    the best-of latency entries above.
    """
    config = ServerConfig(
        seed=2016,
        basis_size=FAULT_BASIS_SIZE,
        n_samples=FAULT_N_SAMPLES,
        source_isi_samples=16,
        jobs=1,
        workers=2,
    )
    basis = build_serving_basis(config)
    rng = np.random.default_rng(2016)
    elements = rng.integers(FAULT_BASIS_SIZE, size=16)
    wires = basis.as_batch().select_rows(elements)
    expected = CoincidenceCorrelator(basis).identify_batch(
        wires, missing="none"
    )
    retry = RetryPolicy(attempts=8, base_delay=0.02, max_delay=0.25)

    def drive(port):
        latencies = []
        with ServingClient(
            "127.0.0.1", port, retry=retry, timeout=30.0
        ) as client:
            for _warm in range(5):
                client.identify(wires)
            for _request in range(FAULT_REQUESTS):
                started = time.perf_counter()
                reply = client.identify(wires)
                latencies.append(time.perf_counter() - started)
                assert np.array_equal(reply.elements, expected.elements)
            stats = client.stats()
        return np.sort(np.array(latencies)), stats

    faults.disarm()
    with ServerCluster(config) as cluster:
        calm, _calm_stats = drive(cluster.port)
    try:
        # Armed before the fork so every worker inherits the fault.
        faults.arm(f"serving.handle_frame=kill:p={FAULT_KILL_RATE}")
        with ServerCluster(config) as cluster:
            faulted, stats = drive(cluster.port)
    finally:
        faults.disarm()

    calm_p50 = float(np.percentile(calm, 50))
    p50 = float(np.percentile(faulted, 50))
    p99 = float(np.percentile(faulted, 99))
    respawns = int(stats.get("respawns", 0))

    text = "\n".join(
        [
            "Serving front-end, identify RPC under injected worker kills "
            f"(2-worker cluster, {FAULT_REQUESTS} requests, "
            f"{100 * FAULT_KILL_RATE:.0f}% kill rate, "
            f"M={FAULT_BASIS_SIZE}, T={FAULT_N_SAMPLES})",
            f"  calm p50       : {1e3 * calm_p50:8.3f} ms",
            f"  faulted p50    : {1e3 * p50:8.3f} ms",
            f"  faulted p99    : {1e3 * p99:8.3f} ms",
            f"  worker respawns: {respawns}",
        ]
    )
    archive("serving_identify_rpc_under_faults.txt", text)
    bench_record(
        "serving_identify_rpc_under_faults",
        {
            "workers": 2,
            "requests": FAULT_REQUESTS,
            "kill_rate": FAULT_KILL_RATE,
            "basis_size": FAULT_BASIS_SIZE,
            "n_samples": FAULT_N_SAMPLES,
            "calm_p50_seconds": round(calm_p50, 6),
            "p50_seconds": round(p50, 6),
            "p99_seconds": round(p99, 6),
            "respawns": respawns,
        },
        seconds=p50,
        speedup=calm_p50 / p50,
    )
    # The fault-tolerance gate: the median request must not pay for
    # the recovery machinery.  Killed requests (~1% of the load) ride
    # retries into the tail; the p50 stays within 2x of calm.
    assert p50 < 2 * calm_p50 + 0.005, (
        f"faulted p50 {1e3 * p50:.3f} ms exceeds twice the calm p50 "
        f"{1e3 * calm_p50:.3f} ms"
    )
