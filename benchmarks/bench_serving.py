"""Benchmark: end-to-end serving throughput and request latency.

The serving layer's claim is not a kernel speedup — it is that the RPC
boundary adds only framing and transport on top of the packed compute
path.  Measured here on the serving-shaped workload (256 wires,
M=16, T=65536, the same shape as the ``identify_batch`` bench): a
client drives one embedded :class:`~repro.serving.server.SpikeServer`
over TCP, timing whole requests (encode → socket → from_packed →
shards → streamed JSON → merge) and reporting requests/sec plus
p50/p99 latency, with the in-process ``identify_batch`` wall time of
the same batch as the no-RPC baseline.

Records the ``serving_identify_rpc`` entry in
``benchmarks/BENCH_batch.json``: ``seconds`` is the **best-of**
request latency — the same minimum-damps-scheduler-noise methodology
every gated entry uses (p50 would make the cross-machine
``compare_bench.py`` gate fire on TCP/thread scheduling noise);
``speedup`` is baseline/best — the fraction of a request that is
compute rather than serving overhead (1.0 would mean a free RPC
layer).  p50, p99 and requests/sec travel in the config block.
"""

import numpy as np
import pytest

from repro.logic.correlator import CoincidenceCorrelator
from repro.serving.client import ServingClient
from repro.serving.server import ServerConfig, ServerThread, build_serving_basis

N_WIRES = 256
BASIS_SIZE = 16
N_SAMPLES = 65536
SOURCE_ISI_SAMPLES = 28
N_REQUESTS = 30


@pytest.fixture(scope="module")
def serving_workload():
    config = ServerConfig(
        seed=2016,
        basis_size=BASIS_SIZE,
        n_samples=N_SAMPLES,
        source_isi_samples=SOURCE_ISI_SAMPLES,
        jobs=1,
    )
    basis = build_serving_basis(config)
    rng = np.random.default_rng(2016)
    elements = rng.integers(BASIS_SIZE, size=N_WIRES)
    wires = basis.as_batch().select_rows(elements)
    return config, basis, wires, elements


def test_serving_identify_rpc(serving_workload, archive, bench_record, best_of):
    import time

    config, basis, wires, elements = serving_workload
    correlator = CoincidenceCorrelator(basis)
    local = correlator.identify_batch(wires, missing="none")
    # The no-RPC baseline: the same batched pass, in process.
    local_s = best_of(lambda: correlator.identify_batch(wires, missing="none"))

    with ServerThread(config) as handle:
        with ServingClient(handle.host, handle.port) as client:
            reply = client.identify(wires)  # warm-up + correctness
            assert np.array_equal(reply.elements, local.elements)
            assert np.array_equal(reply.elements, elements)
            assert reply.summary["server_residency"]["raster"] is False

            latencies = []
            span_start = time.perf_counter()
            for _request in range(N_REQUESTS):
                started = time.perf_counter()
                client.identify(wires)
                latencies.append(time.perf_counter() - started)
            span = time.perf_counter() - span_start

    latencies = np.sort(np.array(latencies))
    best = float(latencies[0])
    p50 = float(np.percentile(latencies, 50))
    p99 = float(np.percentile(latencies, 99))
    requests_per_second = N_REQUESTS / span
    wires_per_second = requests_per_second * N_WIRES
    compute_fraction = local_s / best

    text = "\n".join(
        [
            "Serving front-end, end-to-end identify RPC "
            f"({N_WIRES} wires, M={BASIS_SIZE}, T={N_SAMPLES}, "
            f"{N_REQUESTS} requests)",
            f"  request best   : {1e3 * best:8.3f} ms",
            f"  request p50    : {1e3 * p50:8.3f} ms",
            f"  request p99    : {1e3 * p99:8.3f} ms",
            f"  throughput     : {requests_per_second:8.1f} req/s "
            f"({wires_per_second:9.0f} wires/s)",
            f"  in-process pass: {1e3 * local_s:8.3f} ms "
            f"(compute fraction of best: {compute_fraction:.2f})",
        ]
    )
    archive("serving_identify_rpc.txt", text)
    bench_record(
        "serving_identify_rpc",
        {
            "n_wires": N_WIRES,
            "basis_size": BASIS_SIZE,
            "n_samples": N_SAMPLES,
            "requests": N_REQUESTS,
            "p50_seconds": round(p50, 6),
            "p99_seconds": round(p99, 6),
            "requests_per_second": round(requests_per_second, 1),
            "local_seconds": round(local_s, 6),
        },
        seconds=best,
        speedup=compute_fraction,
    )
    # The RPC layer must not swamp the compute it fronts: at this
    # payload size the request should stay within ~50x of the raw
    # batched pass even on a noisy CI machine.
    assert best < local_s * 50 + 0.05
