"""Benchmark harness support.

Every benchmark regenerates one paper artifact (table, figure or
quantitative claim), times the regeneration with pytest-benchmark, and
archives the rendered result under ``benchmarks/results/`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from disk.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Machine-readable perf trajectory, committed so speedups are tracked
#: across PRs.  Schema: a list of {experiment, config, seconds, speedup}.
BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_batch.json"


@pytest.fixture(scope="session")
def best_of():
    """Callable: best_of(fn, repeats=7) — best-of-N wall seconds.

    The one timing methodology shared by every bench that records into
    ``BENCH_batch.json`` (the minimum damps scheduler noise); changing
    it here changes it for all of them at once.
    """

    def _best_of(fn, repeats=7):
        best = float("inf")
        for _unused in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    return _best_of


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where rendered artifacts are archived."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Callable: archive(name, text) writes text and echoes it to stdout."""

    def _archive(name: str, text: str) -> None:
        path = results_dir / name
        path.write_text(text + "\n")
        print(f"\n{text}\n[archived to {path}]")

    return _archive


def _git_commit() -> str:
    """The recording commit (short hash, ``-dirty`` when uncommitted)."""
    here = pathlib.Path(__file__).parent
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=here, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        if not commit:
            return "unknown"
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=here, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        return f"{commit}-dirty" if dirty else commit
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@pytest.fixture
def bench_record():
    """Callable: record one BENCH_batch.json entry (replacing by name).

    Entries keep the {experiment, config, seconds, speedup} schema plus
    uniform provenance fields — ``cpus``, ``python`` and ``commit`` —
    added here so every bench records them identically (they are what
    ``compare_bench.py`` prints when two files disagree about the
    machine).  The file is read-modify-written so benches can run
    individually without clobbering each other's entries.
    """

    def _record(experiment: str, config: dict, seconds: float,
                speedup: float) -> None:
        entries = []
        if BENCH_JSON.exists():
            entries = json.loads(BENCH_JSON.read_text())
        entries = [e for e in entries if e.get("experiment") != experiment]
        entries.append(
            {
                "experiment": experiment,
                "config": config,
                "seconds": round(seconds, 6),
                "speedup": round(speedup, 3),
                "cpus": os.cpu_count(),
                "python": platform.python_version(),
                "commit": _git_commit(),
            }
        )
        entries.sort(key=lambda e: e["experiment"])
        BENCH_JSON.write_text(json.dumps(entries, indent=2) + "\n")
        print(f"[BENCH_batch.json] {experiment}: {seconds:.4f}s, "
              f"{speedup:.2f}x")

    return _record
