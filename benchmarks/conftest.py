"""Benchmark harness support.

Every benchmark regenerates one paper artifact (table, figure or
quantitative claim), times the regeneration with pytest-benchmark, and
archives the rendered result under ``benchmarks/results/`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from disk.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where rendered artifacts are archived."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Callable: archive(name, text) writes text and echoes it to stdout."""

    def _archive(name: str, text: str) -> None:
        path = results_dir / name
        path.write_text(text + "\n")
        print(f"\n{text}\n[archived to {path}]")

    return _archive
