"""Benchmark C5: energy per gate operation — noise-spike vs clocked.

Sections 1–2: the noise-spike scheme's timing reference is free thermal
noise and it needs no variation guard band, so its energy per operation
undercuts a periodic-clock design by an order of magnitude at equal
reliability (first-order models; the paper argues orders, not percent).
"""

import pytest

from repro.energy.thermal import landauer_limit
from repro.experiments.energy import run_energy


@pytest.mark.benchmark(group="claims")
def test_energy_model(benchmark, archive):
    result = benchmark(run_energy)
    archive("c5_energy.txt", result.render())

    for target, schemes in result.rows:
        noise = next(s for s in schemes if s.name == "noise-spike")
        clocked = next(s for s in schemes if s.name == "periodic-clock")
        # Ordering and rough factor.
        assert result.advantage(target) > 10.0
        # Timing energy: free for noise, dominant for the clocked scheme.
        assert noise.timing_energy_per_op == 0.0
        assert clocked.timing_energy_per_op > clocked.logic_energy_per_op
        # Physical floor respected.
        assert noise.total_per_op > landauer_limit()
