"""Benchmark T2: regenerate Table 2 (intersection orthogonator, homogenization).

Paper reference (65 536 points, white 5 MHz–10 GHz):

============  ==============  ==============
train         uncorrelated τ  correlated τ
============  ==============  ==============
A             28 (90 ps)      28 (90 ps)
B             28 (90 ps)      28 (90 ps)
A·B           697 (2.24 ns)   52 (167 ps)
A·B̄          29 (93 ps)      58 (186 ps)
Ā·B           30 (96.4 ps)    59 (190 ps)
============  ==============  ==============

Shape asserted: the ~25× uncorrelated rate spread collapses to < 1.3×
after the 0.945/0.055 common-mode correlation; all τ ratios within 35 %.
"""

import pytest

from repro.experiments.table2 import run_table2


@pytest.mark.benchmark(group="tables")
def test_table2(benchmark, archive):
    result = benchmark(run_table2)
    archive("table2.txt", result.render())

    assert result.spread_uncorrelated > 10.0
    assert result.spread_correlated < 1.3

    for table in (result.uncorrelated, result.correlated):
        for row in table.rows:
            ratio = row.tau_ratio()
            assert ratio is not None and 0.65 < ratio < 1.35, (
                f"{table.title} / {row.label}: tau ratio {ratio}"
            )
