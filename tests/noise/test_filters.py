"""Tests for repro.noise.filters: IIR shaping and streaming sources."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise.filters import (
    IirNoiseShaper,
    StreamingNoiseSource,
    design_bandpass,
)
from repro.noise.psd import welch_psd
from repro.noise.spectra import Band
from repro.spikes.zero_crossing import AllCrossingDetector
from repro.units import GIGAHERTZ, SimulationGrid, paper_white_grid


@pytest.fixture
def grid():
    return paper_white_grid(n_samples=4096)


@pytest.fixture
def band():
    return Band(1 * GIGAHERTZ, 5 * GIGAHERTZ)


class TestDesign:
    def test_sos_shape(self, band, grid):
        sos = design_bandpass(band, grid, order=4)
        assert sos.ndim == 2 and sos.shape[1] == 6

    def test_band_must_fit_nyquist(self, grid):
        with pytest.raises(ConfigurationError):
            design_bandpass(Band(1e9, grid.nyquist * 2), grid)

    def test_lowpass_band_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            design_bandpass(Band(0.0, 1e9), grid)

    def test_order_validated(self, band, grid):
        with pytest.raises(ConfigurationError):
            design_bandpass(band, grid, order=0)


class TestIirNoiseShaper:
    def test_blockwise_equals_oneshot(self, band, grid):
        """Seamlessness: filtering in blocks == filtering concatenation."""
        rng = np.random.default_rng(0)
        white = rng.standard_normal(3 * grid.n_samples)

        shaper_a = IirNoiseShaper(band, grid)
        oneshot = shaper_a.shape(white)

        shaper_b = IirNoiseShaper(band, grid)
        pieces = [
            shaper_b.shape(white[k * grid.n_samples : (k + 1) * grid.n_samples])
            for k in range(3)
        ]
        assert np.allclose(np.concatenate(pieces), oneshot)

    def test_output_power_in_band(self, band, grid):
        rng = np.random.default_rng(1)
        shaper = IirNoiseShaper(band, grid)
        shaper.shape(rng.standard_normal(grid.n_samples))  # warm up
        shaped = shaper.shape(rng.standard_normal(8 * grid.n_samples))
        long_grid = SimulationGrid(n_samples=shaped.size, dt=grid.dt)
        estimate = welch_psd(shaped, long_grid, segment_length=2048)
        # Butterworth skirts leak more than the brick-wall FFT mask.
        assert estimate.fraction_in_band(band.f_low, band.f_high) > 0.8

    def test_unit_variance_scale(self, band, grid):
        rng = np.random.default_rng(2)
        shaper = IirNoiseShaper(band, grid)
        shaper.shape(rng.standard_normal(grid.n_samples))  # warm up
        shaped = shaper.shape(rng.standard_normal(16 * grid.n_samples))
        assert shaped.std() == pytest.approx(1.0, rel=0.15)

    def test_reset_restarts_state(self, band, grid):
        rng = np.random.default_rng(3)
        white = rng.standard_normal(grid.n_samples)
        shaper = IirNoiseShaper(band, grid)
        first = shaper.shape(white)
        shaper.reset()
        again = shaper.shape(white)
        assert np.allclose(first, again)

    def test_rejects_2d(self, band, grid):
        shaper = IirNoiseShaper(band, grid)
        with pytest.raises(ConfigurationError):
            shaper.shape(np.zeros((2, 4)))


class TestStreamingNoiseSource:
    def test_blocks_advance(self, band, grid):
        source = StreamingNoiseSource(band, grid, seed=0)
        first = source.next_block()
        second = source.next_block()
        assert first.shape == (grid.n_samples,)
        assert not np.array_equal(first, second)

    def test_spike_indices_monotone_across_blocks(self, band, grid):
        source = StreamingNoiseSource(band, grid, seed=1)
        indices, total = source.spikes(3)
        assert total == 3 * grid.n_samples
        assert np.all(np.diff(indices) > 0)
        assert indices[-1] < total

    def test_spikes_continue_across_calls(self, band, grid):
        source = StreamingNoiseSource(band, grid, seed=2)
        first, total1 = source.spikes(1)
        second, total2 = source.spikes(1)
        assert total2 == 2 * grid.n_samples
        assert second.min() >= total1 - 1

    def test_boundary_crossings_counted(self, band, grid):
        """Streamed detection == one-shot detection on the same stream."""
        seed = 7
        source = StreamingNoiseSource(band, grid, seed=seed, warmup_blocks=0)
        streamed, total = source.spikes(4)

        # Rebuild the identical stream in one shot.
        shaper = IirNoiseShaper(band, grid)
        rng = np.random.default_rng(seed)
        white = rng.standard_normal(4 * grid.n_samples)
        record = shaper.shape(white)
        long_grid = SimulationGrid(n_samples=record.size, dt=grid.dt)
        oneshot = AllCrossingDetector().detect(record, long_grid)
        assert np.array_equal(streamed, oneshot.indices)

    def test_spike_train_window(self, band, grid):
        source = StreamingNoiseSource(band, grid, seed=3)
        train = source.spike_train(2)
        assert train.grid.n_samples == 2 * grid.n_samples
        assert len(train) > 0

    def test_rate_matches_fft_path(self, band, grid):
        """IIR-shaped noise crosses at roughly the band's Rice rate."""
        from repro.noise.spectra import WhiteSpectrum

        source = StreamingNoiseSource(band, grid, seed=4)
        indices, total = source.spikes(8)
        measured = indices.size / (total * grid.dt)
        theory = WhiteSpectrum(band).expected_zero_crossing_rate()
        # Butterworth skirts soften the band edges; 20% tolerance.
        assert measured == pytest.approx(theory, rel=0.2)

    def test_invalid_blocks(self, band, grid):
        with pytest.raises(ConfigurationError):
            StreamingNoiseSource(band, grid, seed=0).spikes(0)
