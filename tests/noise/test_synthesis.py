"""Tests for repro.noise.synthesis: FFT-shaped Gaussian records."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import ConfigurationError
from repro.noise.psd import welch_psd
from repro.noise.spectra import Band, WhiteSpectrum
from repro.noise.synthesis import NoiseSynthesizer, make_rng, synthesize
from repro.units import GIGAHERTZ, paper_white_grid


@pytest.fixture
def band():
    return Band(1 * GIGAHERTZ, 5 * GIGAHERTZ)


@pytest.fixture
def grid():
    return paper_white_grid(n_samples=8192)


class TestMakeRng:
    def test_from_int(self):
        rng = make_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_from_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_same_seed_same_stream(self):
        assert make_rng(7).standard_normal() == make_rng(7).standard_normal()


class TestNoiseSynthesizer:
    def test_record_length_and_type(self, band, grid):
        record = NoiseSynthesizer(WhiteSpectrum(band), grid).generate(0)
        assert record.shape == (grid.n_samples,)
        assert record.dtype == np.float64

    def test_normalized_unit_std(self, band, grid):
        record = NoiseSynthesizer(WhiteSpectrum(band), grid).generate(1)
        assert record.std() == pytest.approx(1.0)
        assert abs(record.mean()) < 0.05

    def test_unnormalized_mode(self, band, grid):
        synth = NoiseSynthesizer(WhiteSpectrum(band), grid, normalize=False)
        record = synth.generate(1)
        # Unnormalised records have arbitrary scale but must not be
        # silently rescaled to 1.
        assert record.std() != pytest.approx(1.0, abs=1e-9)

    def test_deterministic_given_seed(self, band, grid):
        synth = NoiseSynthesizer(WhiteSpectrum(band), grid)
        assert np.array_equal(synth.generate(5), synth.generate(5))

    def test_different_seeds_differ(self, band, grid):
        synth = NoiseSynthesizer(WhiteSpectrum(band), grid)
        assert not np.array_equal(synth.generate(1), synth.generate(2))

    def test_marginal_is_gaussian(self, band, grid):
        record = NoiseSynthesizer(WhiteSpectrum(band), grid).generate(3)
        # Kolmogorov-Smirnov against the standard normal; generous alpha.
        statistic, p_value = stats.kstest(record, "norm")
        assert p_value > 1e-4

    def test_power_confined_to_band(self, band, grid):
        record = NoiseSynthesizer(WhiteSpectrum(band), grid).generate(4)
        # Long segments keep Hann-window leakage past the edges to a few %.
        estimate = welch_psd(record, grid, segment_length=2048)
        in_band = estimate.fraction_in_band(band.f_low, band.f_high)
        assert in_band > 0.90

    def test_generate_many_shape_and_independence(self, band, grid):
        synth = NoiseSynthesizer(WhiteSpectrum(band), grid)
        records = synth.generate_many(3, rng=0)
        assert records.shape == (3, grid.n_samples)
        corr = np.corrcoef(records[0], records[1])[0, 1]
        assert abs(corr) < 0.1

    def test_generate_many_invalid_count(self, band, grid):
        synth = NoiseSynthesizer(WhiteSpectrum(band), grid)
        with pytest.raises(ConfigurationError):
            synth.generate_many(0)

    def test_expected_isi_matches_rice(self, band, grid):
        synth = NoiseSynthesizer(WhiteSpectrum(band), grid)
        assert synth.expected_mean_isi() == pytest.approx(
            1.0 / WhiteSpectrum(band).expected_zero_crossing_rate()
        )

    def test_synthesize_shortcut(self, band, grid):
        record = synthesize(WhiteSpectrum(band), grid, rng=0)
        assert record.shape == (grid.n_samples,)

    def test_zero_mean_exactly_no_dc(self, band, grid):
        record = NoiseSynthesizer(WhiteSpectrum(band), grid).generate(6)
        spectrum = np.fft.rfft(record)
        # DC bin was masked out; residual mean comes only from float error
        # and the unit-std normalisation.
        assert abs(spectrum[0]) / grid.n_samples < 1e-10
