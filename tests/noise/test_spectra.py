"""Tests for repro.noise.spectra: bands and PSD shapes."""

import math

import numpy as np
import pytest

from repro.errors import SpectrumError
from repro.noise.spectra import (
    PAPER_PINK_BAND,
    PAPER_WHITE_BAND,
    Band,
    LorentzianSpectrum,
    PinkSpectrum,
    PowerLawSpectrum,
    WhiteSpectrum,
)
from repro.units import GIGAHERTZ, MEGAHERTZ, SimulationGrid, paper_white_grid


class TestBand:
    def test_width_and_ratio(self):
        band = Band(5 * MEGAHERTZ, 10 * GIGAHERTZ)
        assert band.width == pytest.approx(10 * GIGAHERTZ - 5 * MEGAHERTZ)
        assert band.ratio == pytest.approx(2000.0)

    def test_lowpass_band_ratio_infinite(self):
        band = Band(0.0, 1 * GIGAHERTZ)
        assert math.isinf(band.ratio)

    def test_contains(self):
        band = Band(1.0, 10.0)
        mask = band.contains(np.array([0.5, 1.0, 5.0, 10.0, 11.0]))
        assert mask.tolist() == [False, True, True, True, False]

    def test_invalid_edges(self):
        with pytest.raises(SpectrumError):
            Band(10.0, 1.0)
        with pytest.raises(SpectrumError):
            Band(-1.0, 10.0)
        with pytest.raises(SpectrumError):
            Band(1.0, math.inf)

    def test_bin_mask_excludes_dc(self):
        grid = SimulationGrid(n_samples=64, dt=1e-9)
        band = Band(0.0, grid.nyquist)
        mask = band.bin_mask(grid)
        assert not mask[0]
        assert mask[1:].all()

    def test_bin_mask_empty_band_raises(self):
        grid = SimulationGrid(n_samples=64, dt=1e-9)
        # Band far above Nyquist: no bins.
        band = Band(1e12, 2e12)
        with pytest.raises(SpectrumError):
            band.bin_mask(grid)

    def test_paper_bands(self):
        assert PAPER_WHITE_BAND.f_low == pytest.approx(5 * MEGAHERTZ)
        assert PAPER_WHITE_BAND.f_high == pytest.approx(10 * GIGAHERTZ)
        assert PAPER_PINK_BAND.f_low == pytest.approx(2.5 * MEGAHERTZ)


class TestWhiteSpectrum:
    def test_density_flat(self):
        spectrum = WhiteSpectrum(Band(1.0, 10.0))
        values = spectrum.density(np.array([1.0, 5.0, 10.0]))
        assert np.allclose(values, 1.0)

    def test_amplitude_mask_zero_out_of_band(self):
        grid = paper_white_grid(n_samples=1024)
        spectrum = WhiteSpectrum(Band(1 * GIGAHERTZ, 5 * GIGAHERTZ))
        weights = spectrum.amplitude_mask(grid)
        freqs = np.fft.rfftfreq(grid.n_samples, d=grid.dt)
        out_of_band = (freqs < 1 * GIGAHERTZ) | (freqs > 5 * GIGAHERTZ)
        assert np.all(weights[out_of_band] == 0.0)
        assert np.all(weights[~out_of_band] > 0.0)

    def test_rice_rate_white_closed_form(self):
        # rate = 2*sqrt((f2^3-f1^3)/(3(f2-f1))); f1→0 gives 2*f2/sqrt(3).
        spectrum = WhiteSpectrum(Band(0.0, 9.0))
        assert spectrum.expected_zero_crossing_rate() == pytest.approx(
            2 * 9.0 / math.sqrt(3.0)
        )

    def test_paper_white_rate_is_86_6ps(self):
        spectrum = WhiteSpectrum(PAPER_WHITE_BAND)
        isi = 1.0 / spectrum.expected_zero_crossing_rate()
        assert isi == pytest.approx(86.6e-12, rel=0.01)


class TestPowerLawSpectrum:
    def test_pink_density_shape(self):
        spectrum = PinkSpectrum(Band(1.0, 100.0))
        values = spectrum.density(np.array([1.0, 10.0, 100.0]))
        assert values[0] / values[1] == pytest.approx(10.0)
        assert values[1] / values[2] == pytest.approx(10.0)

    def test_pink_needs_positive_lower_edge(self):
        with pytest.raises(SpectrumError):
            PinkSpectrum(Band(0.0, 10.0))

    def test_exponent_range(self):
        with pytest.raises(SpectrumError):
            PowerLawSpectrum(Band(1.0, 10.0), exponent=-0.5)
        with pytest.raises(SpectrumError):
            PowerLawSpectrum(Band(1.0, 10.0), exponent=2.5)

    def test_exponent_zero_matches_white(self):
        band = Band(1.0, 10.0)
        power_law = PowerLawSpectrum(band, exponent=0.0)
        white = WhiteSpectrum(band)
        assert power_law.expected_zero_crossing_rate() == pytest.approx(
            white.expected_zero_crossing_rate()
        )

    def test_paper_pink_rate_is_204ps(self):
        spectrum = PinkSpectrum(PAPER_PINK_BAND)
        isi = 1.0 / spectrum.expected_zero_crossing_rate()
        assert isi == pytest.approx(204e-12, rel=0.02)

    def test_log_moment_branch(self):
        # exponent=1, order=0 hits the logarithmic moment branch.
        spectrum = PowerLawSpectrum(Band(1.0, math.e), exponent=1.0)
        assert spectrum._spectral_moment(0) == pytest.approx(1.0)


class TestLorentzianSpectrum:
    def test_density_halves_at_corner(self):
        spectrum = LorentzianSpectrum(Band(0.0, 100.0), corner=10.0)
        values = spectrum.density(np.array([0.0, 10.0]))
        assert values[1] == pytest.approx(values[0] / 2.0)

    def test_invalid_corner(self):
        with pytest.raises(SpectrumError):
            LorentzianSpectrum(Band(0.0, 10.0), corner=0.0)

    def test_crossing_rate_finite(self):
        spectrum = LorentzianSpectrum(Band(0.0, 100.0), corner=10.0)
        rate = spectrum.expected_zero_crossing_rate()
        assert rate > 0 and math.isfinite(rate)

    def test_moment_orders(self):
        spectrum = LorentzianSpectrum(Band(0.0, 10.0), corner=1.0)
        with pytest.raises(NotImplementedError):
            spectrum._spectral_moment(1)
