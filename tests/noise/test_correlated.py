"""Tests for repro.noise.correlated: common-mode mixing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise.correlated import (
    PAPER_COMMON_AMPLITUDE,
    PAPER_PRIVATE_AMPLITUDE,
    CommonModeMixer,
    CorrelatedNoisePair,
    amplitudes_from_correlation,
    correlation_from_amplitudes,
)
from repro.noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from repro.noise.synthesis import NoiseSynthesizer
from repro.units import paper_white_grid


@pytest.fixture
def synth():
    return NoiseSynthesizer(
        WhiteSpectrum(PAPER_WHITE_BAND), paper_white_grid(n_samples=8192)
    )


class TestAmplitudeAlgebra:
    def test_paper_amplitudes_give_high_correlation(self):
        rho = correlation_from_amplitudes(
            PAPER_COMMON_AMPLITUDE, PAPER_PRIVATE_AMPLITUDE
        )
        assert rho == pytest.approx(0.9966, abs=1e-3)

    def test_zero_common_gives_zero(self):
        assert correlation_from_amplitudes(0.0, 1.0) == 0.0

    def test_zero_private_gives_one(self):
        assert correlation_from_amplitudes(1.0, 0.0) == 1.0

    def test_round_trip(self):
        for rho in (0.0, 0.3, 0.9, 0.9966, 1.0):
            c, p = amplitudes_from_correlation(rho)
            assert correlation_from_amplitudes(c, p) == pytest.approx(rho)

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ConfigurationError):
            correlation_from_amplitudes(-0.1, 0.5)

    def test_both_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            correlation_from_amplitudes(0.0, 0.0)

    def test_correlation_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            amplitudes_from_correlation(1.5)


class TestCommonModeMixer:
    def test_channel_shape(self, synth):
        mixer = CommonModeMixer(synth)
        records = mixer.generate(3, rng=0)
        assert records.shape == (3, synth.grid.n_samples)

    def test_channels_unit_std(self, synth):
        records = CommonModeMixer(synth).generate(2, rng=1)
        for row in records:
            assert row.std() == pytest.approx(1.0)

    def test_empirical_correlation_matches_prediction(self, synth):
        mixer = CommonModeMixer(synth, common_amplitude=0.945, private_amplitude=0.055)
        a, b = mixer.generate(2, rng=2)
        measured = float(np.corrcoef(a, b)[0, 1])
        assert measured == pytest.approx(mixer.correlation, abs=0.01)

    def test_uncorrelated_when_common_zero(self, synth):
        mixer = CommonModeMixer(synth, common_amplitude=0.0, private_amplitude=1.0)
        a, b = mixer.generate(2, rng=3)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_invalid_channels(self, synth):
        with pytest.raises(ConfigurationError):
            CommonModeMixer(synth).generate(0)

    def test_invalid_amplitudes(self, synth):
        with pytest.raises(ConfigurationError):
            CommonModeMixer(synth, common_amplitude=-1.0)
        with pytest.raises(ConfigurationError):
            CommonModeMixer(synth, common_amplitude=0.0, private_amplitude=0.0)

    def test_describe_mentions_rho(self, synth):
        text = CommonModeMixer(synth).describe()
        assert "rho" in text


class TestCorrelatedNoisePair:
    def test_generate_pair(self, synth):
        pair = CorrelatedNoisePair(synth.spectrum, synth.grid)
        a, b = pair.generate(rng=0)
        assert a.shape == b.shape == (synth.grid.n_samples,)

    def test_measure_correlation_identity(self, synth):
        pair = CorrelatedNoisePair(synth.spectrum, synth.grid)
        a, _b = pair.generate(rng=1)
        assert CorrelatedNoisePair.measure_correlation(a, a) == pytest.approx(1.0)

    def test_measure_correlation_shape_mismatch(self, synth):
        with pytest.raises(ConfigurationError):
            CorrelatedNoisePair.measure_correlation(
                np.zeros(4), np.zeros(5)
            )

    def test_paper_defaults(self, synth):
        pair = CorrelatedNoisePair(synth.spectrum, synth.grid)
        assert pair.correlation == pytest.approx(0.9966, abs=1e-3)
