"""Tests for repro.noise.sources: seedable record streams."""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise.sources import (
    NoiseSource,
    correlated_records,
    independent_records,
    paper_pink_source,
    paper_white_source,
)
from repro.noise.spectra import Band, WhiteSpectrum
from repro.units import GIGAHERTZ, paper_white_grid


class TestNoiseSource:
    def test_stream_advances(self):
        source = paper_white_source(seed=0, n_samples=2048)
        first = source.record()
        second = source.record()
        assert not np.array_equal(first, second)

    def test_same_seed_same_stream(self):
        a = paper_white_source(seed=3, n_samples=2048)
        b = paper_white_source(seed=3, n_samples=2048)
        assert np.array_equal(a.record(), b.record())

    def test_records_stacks(self):
        source = paper_white_source(seed=1, n_samples=2048)
        block = source.records(4)
        assert block.shape == (4, 2048)

    def test_records_invalid_count(self):
        with pytest.raises(ConfigurationError):
            paper_white_source(seed=1, n_samples=2048).records(0)

    def test_iterator_protocol(self):
        source = paper_white_source(seed=2, n_samples=2048)
        records = list(itertools.islice(iter(source), 3))
        assert len(records) == 3
        assert records[0].shape == (2048,)

    def test_expected_rate_positive(self):
        source = paper_white_source(seed=0, n_samples=2048)
        assert source.expected_zero_crossing_rate() > 1e9

    def test_pink_source_band(self):
        source = paper_pink_source(seed=0, n_samples=2048)
        assert source.spectrum.band.f_low == pytest.approx(2.5e6)


class TestHelpers:
    def test_independent_records(self):
        grid = paper_white_grid(n_samples=2048)
        spectrum = WhiteSpectrum(Band(1 * GIGAHERTZ, 5 * GIGAHERTZ))
        block = independent_records(spectrum, grid, count=3, seed=0)
        assert block.shape == (3, 2048)
        assert abs(np.corrcoef(block[0], block[1])[0, 1]) < 0.15

    def test_correlated_records(self):
        grid = paper_white_grid(n_samples=4096)
        spectrum = WhiteSpectrum(Band(1 * GIGAHERTZ, 5 * GIGAHERTZ))
        block = correlated_records(
            spectrum, grid, count=2,
            common_amplitude=0.945, private_amplitude=0.055, seed=0,
        )
        assert np.corrcoef(block[0], block[1])[0, 1] > 0.98
