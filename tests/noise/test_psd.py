"""Tests for repro.noise.psd: Welch estimation, autocorrelation, slope."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise.psd import autocorrelation, fit_spectral_slope, welch_psd
from repro.noise.spectra import Band, PinkSpectrum, WhiteSpectrum
from repro.noise.synthesis import NoiseSynthesizer
from repro.units import GIGAHERTZ, MEGAHERTZ, paper_white_grid


@pytest.fixture
def grid():
    return paper_white_grid(n_samples=16384)


class TestWelchPsd:
    def test_total_power_matches_variance(self, grid):
        record = NoiseSynthesizer(
            WhiteSpectrum(Band(1 * GIGAHERTZ, 5 * GIGAHERTZ)), grid
        ).generate(0)
        estimate = welch_psd(record, grid, segment_length=2048)
        assert estimate.total_power() == pytest.approx(record.var(), rel=0.15)

    def test_band_edges_visible(self, grid):
        band = Band(1 * GIGAHERTZ, 3 * GIGAHERTZ)
        record = NoiseSynthesizer(WhiteSpectrum(band), grid).generate(1)
        estimate = welch_psd(record, grid, segment_length=2048)
        assert estimate.fraction_in_band(band.f_low, band.f_high) > 0.90

    def test_white_slope_near_zero(self, grid):
        band = Band(100 * MEGAHERTZ, 8 * GIGAHERTZ)
        record = NoiseSynthesizer(WhiteSpectrum(band), grid).generate(2)
        estimate = welch_psd(record, grid, segment_length=2048)
        slope = fit_spectral_slope(estimate, 0.5 * GIGAHERTZ, 6 * GIGAHERTZ)
        assert abs(slope) < 0.3

    def test_pink_slope_near_minus_one(self, grid):
        band = Band(100 * MEGAHERTZ, 8 * GIGAHERTZ)
        record = NoiseSynthesizer(PinkSpectrum(band), grid).generate(3)
        estimate = welch_psd(record, grid, segment_length=2048)
        slope = fit_spectral_slope(estimate, 0.5 * GIGAHERTZ, 6 * GIGAHERTZ)
        assert slope == pytest.approx(-1.0, abs=0.35)

    def test_rejects_2d_input(self, grid):
        with pytest.raises(ConfigurationError):
            welch_psd(np.zeros((4, 4)), grid)

    def test_rejects_bad_overlap(self, grid):
        with pytest.raises(ConfigurationError):
            welch_psd(np.zeros(grid.n_samples), grid, overlap=1.0)

    def test_rejects_tiny_segment(self, grid):
        with pytest.raises(ConfigurationError):
            welch_psd(np.zeros(grid.n_samples), grid, segment_length=4)


class TestAutocorrelation:
    def test_lag_zero_is_one(self, grid):
        record = NoiseSynthesizer(
            WhiteSpectrum(Band(1 * GIGAHERTZ, 5 * GIGAHERTZ)), grid
        ).generate(4)
        acf = autocorrelation(record, max_lag=64)
        assert acf[0] == pytest.approx(1.0)

    def test_band_limited_decay(self, grid):
        # Correlation time of a band-limited process ~ 1/bandwidth; at
        # lags far beyond it the ACF must be near zero.
        record = NoiseSynthesizer(
            WhiteSpectrum(Band(1 * GIGAHERTZ, 5 * GIGAHERTZ)), grid
        ).generate(5)
        acf = autocorrelation(record, max_lag=512)
        assert abs(acf[400:]).max() < 0.2

    def test_invalid_lag(self, grid):
        record = np.random.default_rng(0).normal(size=grid.n_samples)
        with pytest.raises(ConfigurationError):
            autocorrelation(record, max_lag=-1)
        with pytest.raises(ConfigurationError):
            autocorrelation(record, max_lag=grid.n_samples)

    def test_zero_variance_rejected(self):
        with pytest.raises(ConfigurationError):
            autocorrelation(np.zeros(100), max_lag=10)

    def test_periodic_signal_periodicity(self, grid):
        t = np.arange(grid.n_samples)
        period = 100
        record = np.sin(2 * np.pi * t / period)
        acf = autocorrelation(record, max_lag=2 * period)
        assert acf[period] == pytest.approx(1.0, abs=0.02)
        assert acf[period // 2] == pytest.approx(-1.0, abs=0.02)


class TestSlopeFit:
    def test_too_few_points_rejected(self, grid):
        record = NoiseSynthesizer(
            WhiteSpectrum(Band(1 * GIGAHERTZ, 5 * GIGAHERTZ)), grid
        ).generate(6)
        estimate = welch_psd(record, grid, segment_length=2048)
        with pytest.raises(ConfigurationError):
            fit_spectral_slope(estimate, 1e14, 2e14)
