"""Every example script must run clean end to end.

The examples are executable documentation; each contains its own
assertions, so running them under pytest both smoke-tests the public
API surface and keeps the docs honest.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_expected_examples_present():
    names = {script.stem for script in EXAMPLES}
    assert {
        "quickstart",
        "multivalued_arithmetic",
        "pattern_recognition",
        "variation_tolerance",
        "sequential_counter",
        "noise_link",
    } <= names
