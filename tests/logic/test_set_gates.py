"""Tests for repro.logic.set_gates: parallel evaluation on superpositions."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.hyperspace.basis import HyperspaceBasis
from repro.hyperspace.superposition import Superposition, decode_superposition
from repro.logic.gates import and_gate, xor_gate
from repro.logic.multivalued import mod_sum_gate
from repro.logic.set_gates import SetValuedGate
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=120, dt=1e-12)


def make_basis(m: int) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 120, m), GRID) for k in range(m)])


@pytest.fixture
def b4():
    return make_basis(4)


@pytest.fixture
def b2():
    return make_basis(2)


class TestImage:
    def test_singletons_reduce_to_plain_gate(self, b4):
        lifted = SetValuedGate(mod_sum_gate(b4))
        for a, b in itertools.product(range(4), repeat=2):
            image = lifted.image(frozenset({a}), frozenset({b}))
            assert image == frozenset({(a + b) % 4})

    def test_full_product(self, b4):
        lifted = SetValuedGate(mod_sum_gate(b4))
        image = lifted.image(frozenset({0, 1}), frozenset({0, 2}))
        assert image == frozenset({0, 1, 2, 3})

    def test_xor_parity_structure(self, b2):
        lifted = SetValuedGate(xor_gate(b2))
        image = lifted.image(frozenset({0, 1}), frozenset({1}))
        assert image == frozenset({0, 1})

    def test_empty_set_propagates(self, b4):
        lifted = SetValuedGate(mod_sum_gate(b4))
        assert lifted.image(frozenset(), frozenset({1})) == frozenset()

    def test_arity_checked(self, b4):
        lifted = SetValuedGate(mod_sum_gate(b4))
        with pytest.raises(LogicError):
            lifted.image(frozenset({0}))

    def test_member_range_checked(self, b4):
        lifted = SetValuedGate(mod_sum_gate(b4))
        with pytest.raises(LogicError):
            lifted.image(frozenset({9}), frozenset({0}))

    @given(
        st.sets(st.integers(min_value=0, max_value=3)),
        st.sets(st.integers(min_value=0, max_value=3)),
    )
    @settings(max_examples=40)
    def test_image_matches_set_semantics(self, xs, ys):
        basis = make_basis(4)
        lifted = SetValuedGate(mod_sum_gate(basis))
        image = lifted.image(frozenset(xs), frozenset(ys))
        expected = {(a + b) % 4 for a in xs for b in ys}
        assert image == frozenset(expected)


class TestPreimage:
    def test_and_preimage_of_one(self, b2):
        lifted = SetValuedGate(and_gate(b2))
        assert lifted.preimage(1) == frozenset({(1, 1)})

    def test_preimages_partition_input_space(self, b4):
        lifted = SetValuedGate(mod_sum_gate(b4))
        all_combos = set()
        for value in range(4):
            all_combos |= lifted.preimage(value)
        assert all_combos == set(itertools.product(range(4), repeat=2))

    def test_range_checked(self, b4):
        lifted = SetValuedGate(mod_sum_gate(b4))
        with pytest.raises(LogicError):
            lifted.preimage(4)


class TestPhysical:
    def test_transmit_produces_image_superposition(self, b4):
        lifted = SetValuedGate(mod_sum_gate(b4))
        wire_a = Superposition(frozenset({0, 1})).encode(b4)
        wire_b = Superposition(frozenset({2})).encode(b4)
        result = lifted.transmit(wire_a, wire_b)
        assert result.members == frozenset({2, 3})
        assert result.combinations_evaluated == 2
        decoded = decode_superposition(b4, result.output)
        assert decoded.members == result.members

    def test_composition(self, b4):
        """Set-valued gates compose: output wires feed the next stage."""
        lifted = SetValuedGate(mod_sum_gate(b4))
        stage1 = lifted.transmit(
            Superposition(frozenset({1, 2})).encode(b4),
            Superposition(frozenset({0})).encode(b4),
        )
        stage2 = lifted.transmit(
            stage1.output, Superposition(frozenset({2})).encode(b4)
        )
        assert stage2.members == frozenset({3, 0})

    def test_silent_wire_stays_silent(self, b4):
        lifted = SetValuedGate(mod_sum_gate(b4))
        result = lifted.transmit(
            SpikeTrain.empty(GRID), Superposition(frozenset({1})).encode(b4)
        )
        assert result.members == frozenset()
        assert len(result.output) == 0
        assert result.combinations_evaluated == 0
