"""Tests for repro.logic.multivalued: MVL gate families."""

import itertools

import pytest

from repro.errors import LogicError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.multivalued import (
    MultiValuedAlphabet,
    literal_gate,
    max_gate,
    min_gate,
    mod_product_gate,
    mod_sum_gate,
    negation_gate,
    successor_gate,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=80, dt=1e-12)


def make_basis(m: int) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 80, m), GRID) for k in range(m)])


@pytest.fixture
def b5():
    return make_basis(5)


class TestAlphabet:
    def test_default_digits(self, b5):
        alphabet = MultiValuedAlphabet(b5)
        assert alphabet.radix == 5
        assert alphabet.element_of(3) == 3
        assert alphabet.symbol_of(3) == 3

    def test_custom_symbols(self, b5):
        alphabet = MultiValuedAlphabet(b5, symbols="abcde")
        assert alphabet.element_of("c") == 2
        assert alphabet.symbol_of(4) == "e"

    def test_encode(self, b5):
        alphabet = MultiValuedAlphabet(b5, symbols="abcde")
        assert alphabet.encode("a") == b5.encode(0)

    def test_unknown_symbol(self, b5):
        with pytest.raises(LogicError):
            MultiValuedAlphabet(b5).element_of(9)

    def test_symbol_count_mismatch(self, b5):
        with pytest.raises(LogicError):
            MultiValuedAlphabet(b5, symbols="abc")

    def test_duplicate_symbols(self, b5):
        with pytest.raises(LogicError):
            MultiValuedAlphabet(b5, symbols="aabbc")

    def test_element_out_of_range(self, b5):
        with pytest.raises(LogicError):
            MultiValuedAlphabet(b5).symbol_of(5)


class TestPostAlgebra:
    def test_min_max_tables(self, b5):
        lo = min_gate(b5)
        hi = max_gate(b5)
        for a, b in itertools.product(range(5), repeat=2):
            assert lo.evaluate(a, b) == min(a, b)
            assert hi.evaluate(a, b) == max(a, b)

    def test_negation(self, b5):
        gate = negation_gate(b5)
        assert [gate.evaluate(v) for v in range(5)] == [4, 3, 2, 1, 0]

    def test_de_morgan_for_post_algebra(self, b5):
        """NEG(MIN(a,b)) == MAX(NEG(a), NEG(b)) — the MVL De Morgan law."""
        neg = negation_gate(b5)
        lo = min_gate(b5)
        hi = max_gate(b5)
        for a, b in itertools.product(range(5), repeat=2):
            assert neg.evaluate(lo.evaluate(a, b)) == hi.evaluate(
                neg.evaluate(a), neg.evaluate(b)
            )

    def test_mixed_radix_rejected(self, b5):
        with pytest.raises(LogicError):
            min_gate(b5, make_basis(3))


class TestModularArithmetic:
    def test_mod_sum(self, b5):
        gate = mod_sum_gate(b5)
        for a, b in itertools.product(range(5), repeat=2):
            assert gate.evaluate(a, b) == (a + b) % 5

    def test_mod_product(self, b5):
        gate = mod_product_gate(b5)
        for a, b in itertools.product(range(5), repeat=2):
            assert gate.evaluate(a, b) == (a * b) % 5

    def test_successor_cycles(self, b5):
        gate = successor_gate(b5)
        value = 0
        seen = []
        for _step in range(5):
            value = gate.evaluate(value)
            seen.append(value)
        assert seen == [1, 2, 3, 4, 0]


class TestLiteral:
    def test_window_semantics(self, b5):
        gate = literal_gate(b5, 1, 3)
        assert [gate.evaluate(v) for v in range(5)] == [0, 4, 4, 4, 0]

    def test_minterm(self, b5):
        gate = literal_gate(b5, 2, 2)
        assert [gate.evaluate(v) for v in range(5)] == [0, 0, 4, 0, 0]

    def test_invalid_window(self, b5):
        with pytest.raises(LogicError):
            literal_gate(b5, 3, 1)
        with pytest.raises(LogicError):
            literal_gate(b5, 0, 5)


class TestPhysicalLevel:
    def test_min_gate_transmits_correctly(self, b5):
        gate = min_gate(b5)
        t = gate.transmit(b5.encode(3), b5.encode(1))
        assert t.value == 1
        assert t.output == b5.encode(1)

    def test_mod_sum_transmits_correctly(self, b5):
        gate = mod_sum_gate(b5)
        t = gate.transmit(b5.encode(4), b5.encode(3))
        assert t.value == 2
