"""Degenerate logicnet shapes, plus sharded ≡ serial at the spec level.

The batched evaluator's contract has to hold at the edges of its shape
space — 0 networks, single-gate networks, 1-slot grids, all-silent
inputs — and the ``logicnet`` experiment's shard plan has to reassemble
those edges bit-identically through every dispatch path (serial,
rebuild shards, shared-arena shards), exactly as
``tests/backend/test_degenerate.py`` demands of the bitset batches.
"""

import json

import numpy as np
import pytest

from repro.backend import packed
from repro.backend.batch import SpikeTrainBatch
from repro.backend.shared import HAVE_SHARED_MEMORY, SharedArena
from repro.logic.netbatch import LogicNetBatch, output_summary
from repro.pipeline import Runner, get_spec, to_jsonable
from repro.testing import differential
from repro.units import SimulationGrid

#: A small spec config the sharded-equality tests share.
SMALL_SPEC = {
    "n_networks": 10,
    "n_gates": 6,
    "depth": 2,
    "basis_size": 4,
    "n_shards": 3,
}


def _packed_lines(raster, n_samples):
    grid = SimulationGrid(n_samples=n_samples, dt=1e-12)
    return SpikeTrainBatch.from_raster(raster, grid).packed_words()


class TestZeroNetworks:
    """N=0 is a legal empty sweep on every path."""

    def test_random_zero_networks(self):
        nets = LogicNetBatch.random(0, 4, 2, 3, seed=1)
        assert nets.n_networks == 0
        assert nets.op_ids.shape == (0, 2, 4)
        assert nets.wiring.shape == (0, 2, 4, 2)

    def test_evaluate_zero_networks(self):
        nets = LogicNetBatch.random(0, 4, 2, 3, seed=1)
        raster = np.zeros((3, 100), dtype=bool)
        words = _packed_lines(raster, 100)
        popcounts, checksums = nets.evaluate(words, 100)
        assert popcounts.shape == (0, 4)
        assert checksums.shape == (0,)
        assert checksums.dtype == np.uint64

    def test_select_empty_range(self):
        nets = LogicNetBatch.random(5, 4, 2, 3, seed=1)
        empty = nets.select_networks(2, 2)
        assert empty.n_networks == 0
        words = _packed_lines(np.zeros((3, 64), dtype=bool), 64)
        popcounts, _ = empty.evaluate(words, 64)
        assert popcounts.shape == (0, 4)

    def test_output_summary_of_empty(self):
        outputs = np.empty((0, 4, 2), dtype=np.uint64)
        popcounts, checksums = output_summary(outputs)
        assert popcounts.shape == (0, 4)
        assert checksums.shape == (0,)


class TestSingleGateNetworks:
    """G=1, depth=1 — the smallest network — still matches the reference."""

    def test_matches_reference(self):
        nets = LogicNetBatch.random(6, 1, 1, 2, seed=3)
        rng = np.random.default_rng(4)
        raster = rng.random((2, 90)) < 0.5
        words = _packed_lines(raster, 90)
        expected = differential.reference_evaluate(nets, raster)
        popcounts, _ = nets.evaluate(words, 90)
        np.testing.assert_array_equal(
            popcounts, expected.sum(axis=-1, dtype=np.int64)
        )

    def test_deep_single_gate_chain(self):
        """depth>1 with G=1: every deep layer can only wire to gate 0."""
        nets = LogicNetBatch.random(3, 1, 4, 2, seed=5)
        assert int(nets.wiring[:, 1:].max()) == 0
        rng = np.random.default_rng(6)
        raster = rng.random((2, 65)) < 0.5
        words = _packed_lines(raster, 65)
        expected = differential.reference_evaluate(nets, raster)
        popcounts, _ = nets.evaluate(words, 65)
        np.testing.assert_array_equal(
            popcounts, expected.sum(axis=-1, dtype=np.int64)
        )


class TestOneSlotGrids:
    """n_samples=1: one word, 63 tail bits to keep clean."""

    @pytest.mark.parametrize("bit", [False, True])
    def test_single_slot(self, bit):
        nets = LogicNetBatch.random(4, 3, 2, 2, seed=7)
        raster = np.full((2, 1), bit, dtype=bool)
        words = _packed_lines(raster, 1)
        expected = differential.reference_evaluate(nets, raster)
        out_words = nets.evaluate_words(words, 1)
        assert packed.check_tail_clean(out_words, 1)
        popcounts, _ = nets.evaluate(words, 1)
        np.testing.assert_array_equal(
            popcounts, expected.sum(axis=-1, dtype=np.int64)
        )
        assert set(popcounts.ravel().tolist()) <= {0, 1}


class TestAllZeroInputs:
    """Silent lines: outputs are pure functions of the constant columns."""

    def test_matches_reference_on_silence(self):
        nets = LogicNetBatch.random(5, 4, 3, 3, seed=11)
        raster = np.zeros((3, 130), dtype=bool)
        words = _packed_lines(raster, 130)
        expected = differential.reference_evaluate(nets, raster)
        popcounts, _ = nets.evaluate(words, 130)
        np.testing.assert_array_equal(
            popcounts, expected.sum(axis=-1, dtype=np.int64)
        )
        # On constant-zero inputs a gate's output column is constant,
        # so each per-gate count is all-or-nothing.
        assert set(popcounts.ravel().tolist()) <= {0, 130}


class TestShardedEqualsSerial:
    """The spec's three dispatch paths serialise identically."""

    def test_rebuild_shards_merge_to_serial(self):
        spec = get_spec("logicnet")
        config = spec.make_config(overrides=SMALL_SPEC)
        serial = spec.run(config)
        parts = [spec.run_shard(shard) for shard in spec.shard(config)]
        merged = spec.merge(config, parts)
        assert json.dumps(to_jsonable(merged)) == json.dumps(
            to_jsonable(serial)
        )

    @pytest.mark.skipif(
        not HAVE_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
    )
    def test_shared_shards_merge_to_serial(self):
        spec = get_spec("logicnet")
        config = spec.make_config(overrides=SMALL_SPEC)
        serial = spec.run(config)
        with SharedArena() as arena:
            parts = [
                spec.run_shard(shard)
                for shard in spec.shard_shared(config, arena)
            ]
            merged = spec.merge(config, parts)
        assert json.dumps(to_jsonable(merged)) == json.dumps(
            to_jsonable(serial)
        )

    @pytest.mark.skipif(
        not HAVE_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
    )
    def test_two_job_run_bit_identical(self):
        serial = Runner(jobs=1).run("logicnet", overrides=SMALL_SPEC)
        with Runner(jobs=2) as runner:
            sharded = runner.run("logicnet", overrides=SMALL_SPEC)
        assert serial.ok, serial.error
        assert sharded.ok, sharded.error
        assert json.dumps(to_jsonable(serial.result)) == json.dumps(
            to_jsonable(sharded.result)
        )
        assert serial.rendered == sharded.rendered

    def test_single_shard_plan_equals_many(self):
        spec = get_spec("logicnet")
        many = spec.make_config(overrides=SMALL_SPEC)
        one = spec.make_config(overrides={**SMALL_SPEC, "n_shards": 1})
        a, b = spec.run(many), spec.run(one)
        assert a.popcounts == b.popcounts
        assert a.checksums == b.checksums
        assert a.checksum == b.checksum

    def test_more_shards_than_networks_is_capped(self):
        spec = get_spec("logicnet")
        config = spec.make_config(
            overrides={**SMALL_SPEC, "n_networks": 2, "n_shards": 7}
        )
        shards = spec.shard(config)
        assert len(shards) == 2
        result = spec.merge(
            config, [spec.run_shard(shard) for shard in shards]
        )
        assert result.n_networks == 2
