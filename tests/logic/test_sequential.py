"""Tests for repro.logic.sequential: package clock, symbol streams, machines."""

import numpy as np
import pytest

from repro.errors import LogicError
from repro.logic.sequential import (
    MooreMachine,
    PackageClock,
    SymbolStream,
    accumulator_machine,
    counter_machine,
)
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=1000, dt=1e-12)


@pytest.fixture
def demux_output():
    source = SpikeTrain(np.arange(0, 1000, 7), GRID)  # 143 spikes
    return DemuxOrthogonator.with_outputs(4).transform(source)


@pytest.fixture
def clock(demux_output):
    return PackageClock(demux_output)


@pytest.fixture
def stream(clock):
    return SymbolStream(clock)


class TestPackageClock:
    def test_package_count(self, clock):
        assert clock.n_packages == 143 // 4
        assert clock.n_wires == 4

    def test_slot_of(self, clock):
        # Package 0 holds source spikes 0, 7, 14, 21.
        assert clock.slot_of(0, 0) == 0
        assert clock.slot_of(0, 3) == 21
        assert clock.slot_of(1, 0) == 28

    def test_package_of_slot(self, clock):
        assert clock.package_of_slot(0) == 0
        assert clock.package_of_slot(21) == 0
        assert clock.package_of_slot(28) == 1
        # Slot between packages but inside the span: belongs to its package.
        assert clock.package_of_slot(10) == 0

    def test_slot_outside_all_packages(self, clock):
        last = clock.packages[-1]
        assert clock.package_of_slot(last.end + 1) is None

    def test_bounds_validation(self, clock):
        with pytest.raises(LogicError):
            clock.slot_of(10_000, 0)
        with pytest.raises(LogicError):
            clock.slot_of(0, 9)

    def test_tick_durations(self, clock):
        spans = clock.tick_duration_samples()
        assert (spans == 21).all()  # uniform source: every package spans 21

    def test_empty_source_rejected(self):
        output = DemuxOrthogonator.with_outputs(4).transform(
            SpikeTrain([0, 7], GRID)  # fewer spikes than one package
        )
        with pytest.raises(LogicError):
            PackageClock(output)


class TestSymbolStream:
    def test_encode_decode_round_trip(self, stream):
        values = [0, 3, 1, 2, 2, 0, 1]
        wire = stream.encode(values)
        decoded = stream.decode(wire)
        assert decoded[: len(values)] == values
        assert all(symbol is None for symbol in decoded[len(values) :])

    def test_one_spike_per_symbol(self, stream):
        wire = stream.encode([1, 2, 3])
        assert len(wire) == 3

    def test_too_many_symbols(self, stream, clock):
        with pytest.raises(LogicError):
            stream.encode([0] * (clock.n_packages + 1))

    def test_symbol_out_of_alphabet(self, stream):
        with pytest.raises(LogicError):
            stream.encode([4])

    def test_decode_rejects_foreign_spike(self, stream, clock):
        wire = stream.encode([0])
        # A spike inside package 0 but not on any wire's slot (slot 3 is
        # between wire slots 0 and 7).
        dirty = wire | SpikeTrain([3], GRID)
        with pytest.raises(LogicError):
            stream.decode(dirty)

    def test_decode_rejects_double_symbol(self, stream):
        wire = stream.encode([0]) | stream.encode([1])
        with pytest.raises(LogicError):
            stream.decode(wire)


class TestMooreMachines:
    def test_counter(self):
        machine = counter_machine(4)
        assert machine.run([0, 0, 0, 0, 0]) == [1, 2, 3, 0, 1]

    def test_counter_holds_on_silence(self):
        machine = counter_machine(4)
        assert machine.run([0, None, 0]) == [1, None, 2]

    def test_accumulator(self):
        machine = accumulator_machine(10)
        assert machine.run([3, 4, 5]) == [3, 7, 2]

    def test_invalid_modulus(self):
        with pytest.raises(LogicError):
            counter_machine(0)
        with pytest.raises(LogicError):
            accumulator_machine(-1)

    def test_run_stream_physical(self, stream):
        machine = accumulator_machine(4)
        input_wire = stream.encode([1, 2, 3, 1])
        output_wire = machine.run_stream(stream, input_wire)
        decoded = stream.decode(output_wire)
        assert decoded[:4] == [1, 3, 2, 3]

    def test_run_stream_silence_propagates(self, stream, clock):
        machine = counter_machine(4)
        # Encode only the first two ticks; later packages are silent.
        input_wire = stream.encode([0, 0])
        output_wire = machine.run_stream(stream, input_wire)
        decoded = stream.decode(output_wire)
        assert decoded[:2] == [1, 2]
        assert decoded[2] is None

    def test_machine_emitting_out_of_alphabet_rejected(self, stream):
        machine = MooreMachine(
            transition=lambda s, x: s,
            output=lambda s: 99,
            initial_state=0,
        )
        with pytest.raises(LogicError):
            machine.run_stream(stream, stream.encode([0]))
