"""Tests for repro.logic.gates: truth-table gates and Boolean factories."""

import itertools

import pytest

from repro.errors import LogicError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.gates import (
    TruthTableGate,
    and_gate,
    buffer_gate,
    gate_from_function,
    nand_gate,
    nor_gate,
    not_gate,
    or_gate,
    xor_gate,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=64, dt=1e-12)


def make_basis(m: int, offset: int = 0) -> HyperspaceBasis:
    return HyperspaceBasis(
        [SpikeTrain(range(offset + k, 64, 8), GRID) for k in range(m)]
    )


@pytest.fixture
def b2():
    return make_basis(2)


@pytest.fixture
def b4():
    return make_basis(4)


class TestTruthTableGate:
    def test_table_must_be_total(self, b2):
        with pytest.raises(LogicError):
            TruthTableGate("half", [b2], b2, {(0,): 0})

    def test_table_must_not_have_extra(self, b2):
        with pytest.raises(LogicError):
            TruthTableGate("extra", [b2], b2, {(0,): 0, (1,): 1, (2,): 0})

    def test_output_range_checked(self, b2):
        with pytest.raises(LogicError):
            TruthTableGate("oob", [b2], b2, {(0,): 0, (1,): 5})

    def test_needs_inputs(self, b2):
        with pytest.raises(LogicError):
            TruthTableGate("none", [], b2, {})

    def test_evaluate_validates_arity(self, b2):
        gate = buffer_gate(b2)
        with pytest.raises(LogicError):
            gate.evaluate(0, 1)

    def test_evaluate_validates_range(self, b2):
        gate = buffer_gate(b2)
        with pytest.raises(LogicError):
            gate.evaluate(7)

    def test_transmit_validates_arity(self, b2):
        gate = buffer_gate(b2)
        with pytest.raises(LogicError):
            gate.transmit(b2.encode(0), b2.encode(1))


class TestPhysicalAgreement:
    """Physical transmission must agree with symbolic evaluation."""

    @pytest.mark.parametrize("factory", [and_gate, or_gate, xor_gate,
                                         nand_gate, nor_gate])
    def test_two_input_gates(self, factory, b2):
        gate = factory(b2)
        for a, b in itertools.product((0, 1), repeat=2):
            transmission = gate.transmit(b2.encode(a), b2.encode(b))
            assert transmission.value == gate.evaluate(a, b)
            # Output wire is the reference train of the output value.
            assert transmission.output == b2.encode(transmission.value)

    def test_not_gate(self, b2):
        gate = not_gate(b2)
        assert gate.transmit(b2.encode(0)).value == 1
        assert gate.transmit(b2.encode(1)).value == 0

    def test_decision_slot_is_max_of_inputs(self, b4):
        gate = gate_from_function("first", [b4, b4], b4, lambda a, b: a)
        t = gate.transmit(b4.encode(0), b4.encode(3))
        # Element 0 identified at slot 0, element 3 at slot 3.
        assert t.decision_slot == 3
        assert t.input_results[0].decision_slot == 0
        assert t.input_results[1].decision_slot == 3

    def test_cross_hyperspace_output(self, b2):
        other = make_basis(2, offset=4)
        gate = not_gate(b2, output_basis=other)
        t = gate.transmit(b2.encode(0))
        assert t.output == other.encode(1)

    def test_robust_votes_pass_through(self, b2):
        gate = and_gate(b2)
        t = gate.transmit(b2.encode(1), b2.encode(1), votes=3)
        assert t.value == 1


class TestTruthTables:
    def test_and_table(self, b2):
        gate = and_gate(b2)
        assert [gate.evaluate(a, b) for a, b in
                itertools.product((0, 1), repeat=2)] == [0, 0, 0, 1]

    def test_xor_table(self, b2):
        gate = xor_gate(b2)
        assert [gate.evaluate(a, b) for a, b in
                itertools.product((0, 1), repeat=2)] == [0, 1, 1, 0]

    def test_nand_is_not_and(self, b2):
        nand = nand_gate(b2)
        land = and_gate(b2)
        for a, b in itertools.product((0, 1), repeat=2):
            assert nand.evaluate(a, b) == 1 - land.evaluate(a, b)

    def test_binary_gate_rejects_larger_basis_at_construction(self, b4):
        with pytest.raises(LogicError):
            and_gate(b4)

    def test_buffer_translates(self, b2, b4):
        gate = buffer_gate(b2, output_basis=b4)
        assert gate.evaluate(1) == 1

    def test_buffer_output_too_small(self, b2, b4):
        with pytest.raises(LogicError):
            buffer_gate(b4, output_basis=b2)

    def test_requires_binary_capable_basis(self):
        tiny = make_basis(1)
        with pytest.raises(LogicError):
            not_gate(tiny)

    def test_gate_from_function_tabulates(self, b4):
        gate = gate_from_function("add1", [b4], b4, lambda v: (v + 1) % 4)
        assert [gate.evaluate(v) for v in range(4)] == [1, 2, 3, 0]

    def test_input_sizes(self, b2, b4):
        gate = gate_from_function("mix", [b2, b4], b4, lambda a, b: b)
        assert gate.input_sizes == (2, 4)
        assert gate.arity == 2
