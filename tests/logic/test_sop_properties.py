"""Property-based tests: SOP synthesis is correct for ANY truth table.

hypothesis draws random functions (as flat truth tables) over small
alphabets; the synthesised circuit must agree with the table everywhere,
both symbolically and — on sampled points — physically.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.sop import synthesize_sop
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=96, dt=1e-12)


def make_basis(m: int) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 96, m), GRID) for k in range(m)])


BASES = {2: make_basis(2), 3: make_basis(3), 4: make_basis(4)}


@given(
    radix=st.sampled_from([2, 3]),
    k=st.integers(min_value=1, max_value=2),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_random_function_synthesis(radix, k, data):
    basis = BASES[radix]
    n_entries = radix**k
    table = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=radix - 1),
            min_size=n_entries,
            max_size=n_entries,
        )
    )

    def function(*args):
        index = 0
        for value in args:
            index = index * radix + value
        return table[index]

    circuit = synthesize_sop("random", [basis] * k, basis, function)
    for combo in itertools.product(range(radix), repeat=k):
        values = circuit.evaluate({f"x{i}": v for i, v in enumerate(combo)})
        assert values[circuit.outputs[0]] == function(*combo)


@given(
    table=st.lists(
        st.integers(min_value=0, max_value=3), min_size=4, max_size=4
    )
)
@settings(max_examples=15, deadline=None)
def test_random_unary_function_physical(table):
    """Physical transmission agrees with the table for unary functions."""
    basis = BASES[4]

    circuit = synthesize_sop("unary", [basis], basis, lambda v: table[v])
    for value in range(4):
        transmission = circuit.transmit({"x0": basis.encode(value)})
        assert transmission.values[circuit.outputs[0]] == table[value]
