"""Property suite: batched logicnet evaluation ≡ the per-gate reference.

Random network families — depth 1–4, ragged gate counts, sample counts
that do not divide 64 — run through both halves of the differential
harness (:mod:`repro.testing.differential`): the packed batched
evaluator must be **bit-identical** to the single-gate reference built
on the :mod:`repro.logic.gates` truth tables, on both popcount paths.
All 16 op ids are exercised explicitly too, including the two constant
gates whose outputs ignore their fan-in entirely.
"""

import numpy as np
import pytest

from repro.backend import packed
from repro.backend.batch import SpikeTrainBatch
from repro.logic.netbatch import LogicNetBatch, output_summary
from repro.testing import differential
from repro.units import SimulationGrid

#: (n_networks, n_gates, depth, n_inputs, n_samples) sweep — depths 1–4,
#: ragged gate counts, and sample counts straddling word boundaries
#: (1 word exactly, partial tail words, multi-word with ragged tails).
SHAPES = [
    (3, 5, 1, 4, 64),
    (2, 3, 2, 3, 1),
    (4, 7, 2, 5, 63),
    (2, 6, 3, 4, 65),
    (5, 4, 3, 2, 130),
    (2, 9, 4, 6, 200),
    (1, 1, 4, 1, 127),
]


@pytest.fixture(params=["bitwise_count", "lut16"])
def popcount_path(request, monkeypatch):
    """Run the dependent test on each popcount implementation."""
    if request.param == "lut16":
        monkeypatch.setattr(packed, "popcount", packed._popcount_lut)
    else:
        monkeypatch.setattr(packed, "popcount", packed._popcount_native)
    return request.param


def _random_case(shape, case_seed):
    """One differential case: ``(nets, raster, packed words)``."""
    n_networks, n_gates, depth, n_inputs, n_samples = shape
    nets = LogicNetBatch.random(
        n_networks, n_gates, depth, n_inputs, seed=case_seed
    )
    rng = np.random.default_rng(case_seed + 1)
    raster = rng.random((n_inputs, n_samples)) < 0.4
    grid = SimulationGrid(n_samples=n_samples, dt=1e-12)
    words = SpikeTrainBatch.from_raster(raster, grid).packed_words()
    return nets, raster, words, n_samples


class TestBatchedVersusReference:
    """The packed evaluator is the reference evaluator, only faster."""

    @pytest.mark.parametrize("shape", SHAPES)
    def test_popcount_summaries_match(self, shape, popcount_path):
        def reference(nets, raster, words, n_samples):
            outputs = differential.reference_evaluate(nets, raster)
            return outputs.sum(axis=-1, dtype=np.int64)

        def fast(nets, raster, words, n_samples):
            popcounts, _checksums = nets.evaluate(words, n_samples)
            return popcounts

        cases = [_random_case(shape, seed) for seed in range(3)]
        checked = differential.assert_equivalent(
            reference, fast, cases, describe=lambda case: f"shape={shape}"
        )
        assert checked == len(cases)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_output_words_match_reference_raster(self, shape):
        """Beyond summaries: every output bit equals the reference's."""
        nets, raster, words, n_samples = _random_case(shape, case_seed=77)
        expected = differential.reference_evaluate(nets, raster)
        out_words = nets.evaluate_words(words, n_samples)
        n_words = out_words.shape[-1]
        got = np.unpackbits(
            np.ascontiguousarray(out_words).view(np.uint8).reshape(
                nets.n_networks, nets.n_gates, n_words * 8
            ),
            axis=-1,
        )[:, :, :n_samples].astype(bool)
        np.testing.assert_array_equal(got, expected)
        # The packed outputs honour the tail-cleanliness invariant.
        assert packed.check_tail_clean(out_words, n_samples)

    def test_checksums_are_xor_folds_of_outputs(self, popcount_path):
        nets, _raster, words, n_samples = _random_case(SHAPES[4], case_seed=5)
        outputs = nets.evaluate_words(words, n_samples)
        _popcounts, checksums = output_summary(outputs)
        expected = np.bitwise_xor.reduce(
            outputs.reshape(outputs.shape[0], -1), axis=-1
        )
        np.testing.assert_array_equal(checksums, expected)


class TestAllSixteenTables:
    """Every truth-table id — constants included — matches its gate."""

    @pytest.mark.parametrize("op_id", range(16))
    def test_single_gate_network_matches_table(self, op_id):
        n_samples = 100  # ragged: two words, 36 tail bits
        rng = np.random.default_rng(op_id)
        raster = rng.random((2, n_samples)) < 0.5
        grid = SimulationGrid(n_samples=n_samples, dt=1e-12)
        words = SpikeTrainBatch.from_raster(raster, grid).packed_words()
        op_ids = np.full((1, 1, 1), op_id, dtype=np.uint8)
        wiring = np.array([[[[0, 1]]]], dtype=np.int32)
        nets = LogicNetBatch(op_ids, wiring, n_inputs=2)
        expected = differential.reference_evaluate(nets, raster)
        popcounts, _ = nets.evaluate(words, n_samples)
        assert popcounts[0, 0] == int(expected.sum())
        # The gate's own table is the ground truth for both paths.
        lut = np.array(
            [
                differential.reference_gate(op_id).table[(int(a), int(b))]
                for a, b in [(0, 0), (0, 1), (1, 0), (1, 1)]
            ],
            dtype=bool,
        )
        by_table = lut[(raster[0].astype(np.int64) << 1) | raster[1]]
        np.testing.assert_array_equal(expected[0, 0], by_table)

    def test_constant_gates_ignore_inputs(self):
        """op 0 is all-zero, op 15 all-one — and 15 stays tail-clean."""
        n_samples = 70  # 6 tail bits in the second word
        grid = SimulationGrid(n_samples=n_samples, dt=1e-12)
        raster = np.zeros((1, n_samples), dtype=bool)
        words = SpikeTrainBatch.from_raster(raster, grid).packed_words()
        wiring = np.zeros((1, 1, 2, 2), dtype=np.int32)
        false_net = LogicNetBatch(
            np.zeros((1, 1, 2), dtype=np.uint8), wiring, n_inputs=1
        )
        true_net = LogicNetBatch(
            np.full((1, 1, 2), 15, dtype=np.uint8), wiring, n_inputs=1
        )
        false_out = false_net.evaluate_words(words, n_samples)
        true_out = true_net.evaluate_words(words, n_samples)
        assert not false_out.any()
        assert packed.check_tail_clean(true_out, n_samples)
        popcounts, _ = true_net.evaluate(words, n_samples)
        assert popcounts.tolist() == [[n_samples, n_samples]]


class TestDeterminism:
    """spawn-key construction: ranges rebuild bit-identically anywhere."""

    def test_subrange_rebuild_is_bit_identical(self):
        full = LogicNetBatch.random(10, 6, 3, 4, seed=123)
        part = LogicNetBatch.random(4, 6, 3, 4, seed=123, net_start=5)
        np.testing.assert_array_equal(part.op_ids, full.op_ids[5:9])
        np.testing.assert_array_equal(part.wiring, full.wiring[5:9])

    def test_blocked_traversal_matches_single_block(self, monkeypatch):
        """The word-axis blocking is a traversal order, not a result."""
        nets, _raster, words, n_samples = _random_case(SHAPES[5], case_seed=9)
        blocked = nets.evaluate_words(words, n_samples)
        monkeypatch.setattr(LogicNetBatch, "_BLOCK_BYTES", 1 << 60)
        single = nets.evaluate_words(words, n_samples)
        np.testing.assert_array_equal(blocked, single)
        monkeypatch.setattr(LogicNetBatch, "_BLOCK_BYTES", 8)
        tiny = nets.evaluate_words(words, n_samples)
        np.testing.assert_array_equal(tiny, single)
