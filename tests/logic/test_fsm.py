"""Tests for repro.logic.fsm: general FSMs, shift registers, LFSRs."""

import numpy as np
import pytest

from repro.errors import LogicError
from repro.logic.fsm import FiniteStateMachine, lfsr_fsm, shift_register_fsm
from repro.logic.sequential import PackageClock, SymbolStream
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=2048, dt=1e-12)


@pytest.fixture
def stream():
    source = SpikeTrain(np.arange(0, 2048, 7), GRID)
    output = DemuxOrthogonator.with_outputs(4).transform(source)
    return SymbolStream(PackageClock(output))


def toggle_machine() -> FiniteStateMachine:
    """Two states; emits the current state, toggles on symbol 1."""
    transitions = {
        (0, 0): 0, (0, 1): 1,
        (1, 0): 1, (1, 1): 0,
    }
    outputs = {(s, x): s for s in (0, 1) for x in (0, 1)}
    return FiniteStateMachine(2, 2, transitions, outputs)


class TestFiniteStateMachine:
    def test_toggle_semantics(self):
        machine = toggle_machine()
        assert machine.run([1, 0, 1, 1]) == [0, 1, 1, 0]

    def test_silent_ticks_hold_state(self):
        machine = toggle_machine()
        assert machine.run([1, None, 0]) == [0, None, 1]

    def test_table_totality_enforced(self):
        with pytest.raises(LogicError):
            FiniteStateMachine(2, 2, {(0, 0): 0}, {(0, 0): 0})

    def test_transition_range_enforced(self):
        transitions = {(0, 0): 5, (0, 1): 0, (1, 0): 0, (1, 1): 0}
        outputs = {(s, x): 0 for s in (0, 1) for x in (0, 1)}
        with pytest.raises(LogicError):
            FiniteStateMachine(2, 2, transitions, outputs)

    def test_output_range_enforced(self):
        transitions = {(s, x): 0 for s in (0, 1) for x in (0, 1)}
        outputs = {(0, 0): 7, (0, 1): 0, (1, 0): 0, (1, 1): 0}
        with pytest.raises(LogicError):
            FiniteStateMachine(2, 2, transitions, outputs)

    def test_bad_input_symbol(self):
        with pytest.raises(LogicError):
            toggle_machine().run([5])

    def test_physical_run_stream(self, stream):
        machine = toggle_machine()
        wire = stream.encode([1, 0, 1, 1])
        out_wire = machine.run_stream(stream, wire)
        assert stream.decode(out_wire)[:4] == [0, 1, 1, 0]

    def test_alphabet_must_fit_wires(self, stream):
        transitions = {(0, x): 0 for x in range(9)}
        outputs = {(0, x): 0 for x in range(9)}
        machine = FiniteStateMachine(1, 9, transitions, outputs)
        with pytest.raises(LogicError):
            machine.run_stream(stream, stream.encode([0]))


class TestShiftRegister:
    def test_delay_line_behaviour(self):
        register = shift_register_fsm(length=3, radix=4)
        inputs = [1, 2, 3, 0, 1, 2]
        outputs = register.run(inputs)
        # First `length` outputs are the zero fill; then inputs re-emerge.
        assert outputs == [0, 0, 0, 1, 2, 3]

    def test_binary_register(self):
        register = shift_register_fsm(length=2, radix=2)
        assert register.run([1, 1, 0, 1]) == [0, 0, 1, 1]

    def test_state_count(self):
        register = shift_register_fsm(length=2, radix=3)
        assert register.n_states == 9

    def test_validation(self):
        with pytest.raises(LogicError):
            shift_register_fsm(0, 2)
        with pytest.raises(LogicError):
            shift_register_fsm(2, 1)

    def test_physical_round_trip(self, stream):
        register = shift_register_fsm(length=2, radix=4)
        message = [3, 1, 2, 0, 2, 1]
        wire = stream.encode(message)
        delayed = register.run_stream(stream, wire)
        decoded = stream.decode(delayed)[: len(message)]
        assert decoded == [0, 0] + message[:-2]


class TestLfsr:
    def test_binary_lfsr_period(self):
        # Taps (0, 1) over GF(2) with 2 cells: maximal period 3.
        lfsr = lfsr_fsm(taps=(0, 1), radix=2)
        sequence = lfsr.run([0] * 9)
        assert sequence[:3] == sequence[3:6] == sequence[6:9]
        assert len(set(tuple(sequence[k : k + 2]) for k in range(3))) == 3

    def test_autonomous_sequence_nontrivial(self):
        lfsr = lfsr_fsm(taps=(0, 2), radix=2)
        sequence = lfsr.run([0] * 14)
        assert set(sequence) == {0, 1}
        # Maximal-length for x^3 + x + 1: period 7.
        assert sequence[:7] == sequence[7:14]

    def test_ternary_lfsr_runs(self):
        lfsr = lfsr_fsm(taps=(0, 1), radix=3)
        sequence = lfsr.run([0] * 20)
        assert all(0 <= s < 3 for s in sequence)
        assert len(set(sequence)) > 1

    def test_input_perturbs_sequence(self):
        quiet = lfsr_fsm(taps=(0, 1), radix=2).run([0] * 8)
        driven = lfsr_fsm(taps=(0, 1), radix=2).run([1, 0, 0, 0, 0, 0, 0, 0])
        assert quiet != driven

    def test_validation(self):
        with pytest.raises(LogicError):
            lfsr_fsm(taps=(), radix=2)
        with pytest.raises(LogicError):
            lfsr_fsm(taps=(-1,), radix=2)
        with pytest.raises(LogicError):
            lfsr_fsm(taps=(0,), radix=1)
