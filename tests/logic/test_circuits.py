"""Tests for repro.logic.circuits: netlists and physical evaluation."""

import pytest

from repro.errors import LogicError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.circuits import Circuit
from repro.logic.gates import and_gate, not_gate, or_gate, xor_gate
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=64, dt=1e-12)


def make_basis(m: int = 2) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 64, 4), GRID) for k in range(m)])


@pytest.fixture
def basis():
    return make_basis()


@pytest.fixture
def half_adder(basis):
    circuit = Circuit("half_adder", {"a": basis, "b": basis})
    circuit.add_gate("sum", xor_gate(basis), ["a", "b"])
    circuit.add_gate("carry", and_gate(basis), ["a", "b"])
    circuit.mark_output("sum")
    circuit.mark_output("carry")
    return circuit


class TestConstruction:
    def test_needs_inputs(self):
        with pytest.raises(LogicError):
            Circuit("empty", {})

    def test_duplicate_signal_name(self, basis):
        circuit = Circuit("c", {"a": basis})
        circuit.add_gate("n", not_gate(basis), ["a"])
        with pytest.raises(LogicError):
            circuit.add_gate("n", not_gate(basis), ["a"])
        with pytest.raises(LogicError):
            circuit.add_gate("a", not_gate(basis), ["a"])

    def test_unknown_source(self, basis):
        circuit = Circuit("c", {"a": basis})
        with pytest.raises(LogicError):
            circuit.add_gate("n", not_gate(basis), ["missing"])

    def test_arity_mismatch(self, basis):
        circuit = Circuit("c", {"a": basis})
        with pytest.raises(LogicError):
            circuit.add_gate("n", and_gate(basis), ["a"])

    def test_alphabet_mismatch(self, basis):
        big = make_basis(4)
        circuit = Circuit("c", {"a": big})
        with pytest.raises(LogicError):
            circuit.add_gate("n", not_gate(basis), ["a"])

    def test_depth_and_counts(self, half_adder, basis):
        assert half_adder.n_gates() == 2
        assert half_adder.depth() == 1
        chained = Circuit("chain", {"a": basis})
        chained.add_gate("n1", not_gate(basis), ["a"])
        chained.add_gate("n2", not_gate(basis), ["n1"])
        assert chained.depth() == 2

    def test_outputs_property(self, half_adder):
        assert half_adder.outputs == ("sum", "carry")


class TestSymbolicEvaluation:
    def test_half_adder_truth_table(self, half_adder):
        for a in (0, 1):
            for b in (0, 1):
                values = half_adder.evaluate({"a": a, "b": b})
                assert values["sum"] == a ^ b
                assert values["carry"] == a & b

    def test_missing_input(self, half_adder):
        with pytest.raises(LogicError):
            half_adder.evaluate({"a": 1})

    def test_unknown_input(self, half_adder):
        with pytest.raises(LogicError):
            half_adder.evaluate({"a": 1, "b": 0, "c": 1})

    def test_out_of_range_input(self, half_adder):
        with pytest.raises(LogicError):
            half_adder.evaluate({"a": 2, "b": 0})


class TestPhysicalEvaluation:
    def test_matches_symbolic(self, half_adder, basis):
        for a in (0, 1):
            for b in (0, 1):
                wires = {"a": basis.encode(a), "b": basis.encode(b)}
                transmission = half_adder.transmit(wires)
                assert transmission.values["sum"] == a ^ b
                assert transmission.values["carry"] == a & b

    def test_latency_accumulates_along_path(self, basis):
        circuit = Circuit("chain", {"a": basis})
        circuit.add_gate("n1", not_gate(basis), ["a"])
        circuit.add_gate("n2", not_gate(basis), ["n1"])
        circuit.mark_output("n2")
        t = circuit.transmit({"a": basis.encode(0)})
        assert t.decision_slots["n2"] >= t.decision_slots["n1"]
        assert t.critical_path_slot == t.decision_slots["n2"]

    def test_missing_wire(self, half_adder, basis):
        with pytest.raises(LogicError):
            half_adder.transmit({"a": basis.encode(0)})

    def test_input_values_reported(self, half_adder, basis):
        t = half_adder.transmit({"a": basis.encode(1), "b": basis.encode(0)})
        assert t.values["a"] == 1
        assert t.values["b"] == 0

    def test_output_wires_are_reference_trains(self, half_adder, basis):
        t = half_adder.transmit({"a": basis.encode(1), "b": basis.encode(1)})
        assert t.wires["carry"] == basis.encode(1)
        assert t.wires["sum"] == basis.encode(0)
