"""Tests for repro.logic.routing: spike routers and fabrics."""

import itertools

import numpy as np
import pytest

from repro.errors import LogicError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.routing import RoutingFabric, SpikeRouter
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=512, dt=1e-12)


def make_basis(m: int) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 512, m), GRID) for k in range(m)])


@pytest.fixture
def basis():
    return make_basis(4)


@pytest.fixture
def payload():
    return SpikeTrain(range(5, 512, 50), GRID)


class TestSpikeRouter:
    def test_routes_every_address(self, basis, payload):
        router = SpikeRouter(basis)
        for port in range(4):
            decision = router.route(basis.encode(port), payload)
            assert decision.port == port

    def test_payload_gated_by_decision(self, basis, payload):
        router = SpikeRouter(basis)
        decision = router.route(basis.encode(3), payload, start_slot=100)
        # Decision at the first element-3 spike >= 100 (slot 103).
        assert decision.decision_slot == 103
        assert all(s >= 103 for s in decision.payload.indices)

    def test_latency_is_first_address_spike(self, basis, payload):
        router = SpikeRouter(basis)
        decision = router.route(basis.encode(2), payload)
        assert decision.decision_slot == 2

    def test_votes_resist_injection(self, basis, payload):
        router = SpikeRouter(basis)
        # Address 1 with a single injected spike from element 0's train.
        dirty = basis.encode(1) | SpikeTrain([0], GRID)
        naive = router.route(dirty, payload)
        assert naive.port == 0  # fooled
        robust = router.route(dirty, payload, votes=5)
        assert robust.port == 1  # majority wins


class TestRoutingFabric:
    def test_leaf_arithmetic(self, basis):
        fabric = RoutingFabric(basis, depth=2)
        assert fabric.n_leaves == 16
        assert fabric.leaf_of_digits([0, 0]) == 0
        assert fabric.leaf_of_digits([3, 2]) == 14
        assert fabric.leaf_of_digits([1, 0]) == 4

    def test_exhaustive_delivery(self, basis, payload):
        fabric = RoutingFabric(basis, depth=2)
        for digits in itertools.product(range(4), repeat=2):
            wires = [basis.encode(d) for d in digits]
            delivery = fabric.deliver(wires, payload)
            assert delivery.leaf == fabric.leaf_of_digits(digits)

    def test_stage_slots_non_decreasing(self, basis, payload):
        fabric = RoutingFabric(basis, depth=3)
        wires = [basis.encode(d) for d in (2, 0, 3)]
        delivery = fabric.deliver(wires, payload)
        slots = list(delivery.stage_slots)
        assert slots == sorted(slots)
        assert delivery.total_latency_slot == slots[-1]

    def test_payload_survives_when_late_spikes_exist(self, basis):
        fabric = RoutingFabric(basis, depth=2)
        late_payload = SpikeTrain(range(400, 512, 10), GRID)
        delivery = fabric.deliver(
            [basis.encode(1), basis.encode(2)], late_payload
        )
        assert len(delivery.payload) == len(late_payload)

    def test_wrong_wire_count(self, basis, payload):
        fabric = RoutingFabric(basis, depth=2)
        with pytest.raises(LogicError):
            fabric.deliver([basis.encode(0)], payload)

    def test_digit_validation(self, basis):
        fabric = RoutingFabric(basis, depth=2)
        with pytest.raises(LogicError):
            fabric.leaf_of_digits([0, 9])
        with pytest.raises(LogicError):
            fabric.leaf_of_digits([0])

    def test_depth_validation(self, basis):
        with pytest.raises(LogicError):
            RoutingFabric(basis, depth=0)

    def test_delivery_on_noise_basis(self):
        """End to end on a real noise-derived hyperspace."""
        from repro.hyperspace.builders import build_demux_basis

        basis = build_demux_basis(4, rng=51)
        payload = SpikeTrain(
            np.arange(100, basis.grid.n_samples, 977), basis.grid
        )
        fabric = RoutingFabric(basis, depth=2)
        delivery = fabric.deliver(
            [basis.encode(3), basis.encode(1)], payload
        )
        assert delivery.leaf == 13
        assert len(delivery.payload) > 0
