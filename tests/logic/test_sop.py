"""Tests for repro.logic.sop: sum-of-products synthesis."""

import itertools

import pytest

from repro.errors import SynthesisError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.sop import synthesize_sop
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=120, dt=1e-12)


def make_basis(m: int) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 120, m), GRID) for k in range(m)])


@pytest.fixture
def b3():
    return make_basis(3)


@pytest.fixture
def b2():
    return make_basis(2)


def check_exhaustive(circuit, function, radix, k):
    for combo in itertools.product(range(radix), repeat=k):
        values = circuit.evaluate({f"x{i}": v for i, v in enumerate(combo)})
        assert values[circuit.outputs[0]] == function(*combo), combo


class TestSynthesis:
    def test_binary_xor(self, b2):
        circuit = synthesize_sop("xor", [b2, b2], b2, lambda a, b: a ^ b)
        check_exhaustive(circuit, lambda a, b: a ^ b, 2, 2)

    def test_ternary_modsum(self, b3):
        circuit = synthesize_sop("add3", [b3, b3], b3, lambda a, b: (a + b) % 3)
        check_exhaustive(circuit, lambda a, b: (a + b) % 3, 3, 2)

    def test_ternary_min(self, b3):
        circuit = synthesize_sop("min3", [b3, b3], b3, min)
        check_exhaustive(circuit, min, 3, 2)

    def test_unary_negation(self, b3):
        circuit = synthesize_sop("neg", [b3], b3, lambda v: 2 - v)
        check_exhaustive(circuit, lambda v: 2 - v, 3, 1)

    def test_three_input_majority(self, b2):
        def majority(a, b, c):
            return 1 if a + b + c >= 2 else 0

        circuit = synthesize_sop("maj", [b2, b2, b2], b2, majority)
        check_exhaustive(circuit, majority, 2, 3)

    def test_constant_zero_function(self, b3):
        circuit = synthesize_sop("zero", [b3], b3, lambda _v: 0)
        check_exhaustive(circuit, lambda _v: 0, 3, 1)

    def test_constant_top_function(self, b3):
        circuit = synthesize_sop("top", [b3], b3, lambda _v: 2)
        check_exhaustive(circuit, lambda _v: 2, 3, 1)

    def test_physical_transmission_agrees(self, b3):
        circuit = synthesize_sop("mul3", [b3, b3], b3, lambda a, b: (a * b) % 3)
        for a, b in itertools.product(range(3), repeat=2):
            wires = {"x0": b3.encode(a), "x1": b3.encode(b)}
            transmission = circuit.transmit(wires)
            assert transmission.values[circuit.outputs[0]] == (a * b) % 3

    def test_depth_logarithmic(self, b2):
        def parity4(a, b, c, d):
            return (a + b + c + d) % 2

        circuit = synthesize_sop("par4", [b2] * 4, b2, parity4)
        # 8 surviving minterms, 4 literals each: depth = literals tree (2)
        # + clamp 0 + OR tree (3) -> comfortably below the linear bound.
        assert circuit.depth() <= 8

    def test_mixed_radix_rejected(self, b2, b3):
        with pytest.raises(SynthesisError):
            synthesize_sop("bad", [b2, b3], b3, lambda a, b: 0)

    def test_out_of_range_value_rejected(self, b3):
        with pytest.raises(SynthesisError):
            synthesize_sop("bad", [b3], b3, lambda v: 5)

    def test_no_inputs_rejected(self, b3):
        with pytest.raises(SynthesisError):
            synthesize_sop("bad", [], b3, lambda: 0)
