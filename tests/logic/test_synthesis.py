"""Tests for repro.logic.synthesis: adders, comparators, mux, parity."""

import itertools

import pytest

from repro.errors import SynthesisError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.synthesis import (
    adder_reference,
    comparator,
    comparator_reference,
    digit_carry_gate,
    digit_sum_gate,
    multiplexer,
    parity_circuit,
    ripple_adder,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=128, dt=1e-12)


def make_basis(m: int) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 128, m), GRID) for k in range(m)])


@pytest.fixture
def b2():
    return make_basis(2)


@pytest.fixture
def b4():
    return make_basis(4)


class TestDigitGates:
    def test_sum_digit(self, b4, b2):
        gate = digit_sum_gate(b4, b2)
        for a, b, c in itertools.product(range(4), range(4), range(2)):
            assert gate.evaluate(a, b, c) == (a + b + c) % 4

    def test_carry_digit(self, b4, b2):
        gate = digit_carry_gate(b4, b2)
        for a, b, c in itertools.product(range(4), range(4), range(2)):
            assert gate.evaluate(a, b, c) == (1 if a + b + c >= 4 else 0)

    def test_carry_basis_too_small(self, b4):
        tiny = make_basis(1)
        with pytest.raises(SynthesisError):
            digit_sum_gate(b4, tiny)


class TestRippleAdder:
    @pytest.mark.parametrize("radix,digits", [(2, 3), (4, 2), (3, 2)])
    def test_exhaustive_against_reference(self, radix, digits):
        basis = make_basis(radix)
        carry = basis if radix >= 2 else make_basis(2)
        adder = ripple_adder(digits, basis, carry_basis=carry)
        top = radix**digits
        for a_value, b_value, cin in itertools.product(
            range(top), range(top), (0, 1)
        ):
            inputs = {"cin": cin}
            for d in range(digits):
                inputs[f"a{d}"] = (a_value // radix**d) % radix
                inputs[f"b{d}"] = (b_value // radix**d) % radix
            values = adder.evaluate(inputs)
            reference = adder_reference(digits, radix, a_value, b_value, cin)
            for d in range(digits):
                assert values[f"s{d}"] == reference[f"s{d}"]
            assert values[f"c{digits}"] == reference["cout"]

    def test_physical_binary_addition(self, b2):
        adder = ripple_adder(2, b2)
        wires = {
            "a0": b2.encode(1), "a1": b2.encode(1),  # a = 3
            "b0": b2.encode(1), "b1": b2.encode(0),  # b = 1
            "cin": b2.encode(0),
        }
        t = adder.transmit(wires)
        # 3 + 1 = 4 = 100b: s0=0, s1=0, cout=1.
        assert t.values["s0"] == 0
        assert t.values["s1"] == 0
        assert t.values["c2"] == 1

    def test_invalid_digit_count(self, b2):
        with pytest.raises(SynthesisError):
            ripple_adder(0, b2)

    def test_gate_count_linear_in_digits(self, b2):
        assert ripple_adder(4, b2).n_gates() == 8  # sum + carry per digit


class TestComparator:
    @pytest.mark.parametrize("radix,digits", [(3, 2), (4, 2)])
    def test_exhaustive(self, radix, digits):
        basis = make_basis(radix)
        circuit = comparator(digits, basis)
        top = radix**digits
        for a_value, b_value in itertools.product(range(top), repeat=2):
            inputs = {}
            for d in range(digits):
                inputs[f"a{d}"] = (a_value // radix**d) % radix
                inputs[f"b{d}"] = (b_value // radix**d) % radix
            values = circuit.evaluate(inputs)
            verdict = values[circuit.outputs[0]]
            assert verdict == comparator_reference(a_value, b_value)

    def test_verdict_basis_needs_three(self, b2):
        with pytest.raises(SynthesisError):
            comparator(2, b2)  # binary digits but binary verdict basis

    def test_single_digit(self, b4):
        circuit = comparator(1, b4)
        assert circuit.evaluate({"a0": 2, "b0": 3})[circuit.outputs[0]] == 0


class TestMultiplexer:
    def test_select_semantics(self, b4, b2):
        circuit = multiplexer(b4, b2)
        for d0, d1, sel in itertools.product(range(4), range(4), (0, 1)):
            values = circuit.evaluate({"d0": d0, "d1": d1, "sel": sel})
            assert values["y"] == (d1 if sel else d0)

    def test_select_basis_validation(self, b4):
        tiny = make_basis(1)
        with pytest.raises(SynthesisError):
            multiplexer(b4, tiny)


class TestParity:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_exhaustive(self, n, b2):
        circuit = parity_circuit(n, b2)
        for bits in itertools.product((0, 1), repeat=n):
            values = circuit.evaluate({f"x{i}": bit for i, bit in enumerate(bits)})
            assert values[circuit.outputs[0]] == sum(bits) % 2

    def test_tree_depth_logarithmic(self, b2):
        assert parity_circuit(8, b2).depth() == 3

    def test_needs_two_inputs(self, b2):
        with pytest.raises(SynthesisError):
            parity_circuit(1, b2)
