"""Tests for repro.logic.setops: physical set operations agree with symbolic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HyperspaceError
from repro.hyperspace.basis import HyperspaceBasis
from repro.hyperspace.superposition import Superposition, decode_superposition
from repro.logic.setops import (
    wire_complement,
    wire_difference,
    wire_intersection,
    wire_membership,
    wire_union,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=64, dt=1e-12)


def make_basis(m: int = 4) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 64, m), GRID) for k in range(m)])


@pytest.fixture
def basis():
    return make_basis()


members_strategy = st.sets(st.integers(min_value=0, max_value=3))


class TestAgainstSymbolic:
    @given(members_strategy, members_strategy)
    def test_union(self, xs, ys):
        basis = make_basis()
        a = Superposition(frozenset(xs))
        b = Superposition(frozenset(ys))
        wire = wire_union(basis, a.encode(basis), b.encode(basis))
        assert decode_superposition(basis, wire) == (a | b)

    @given(members_strategy, members_strategy)
    def test_intersection(self, xs, ys):
        basis = make_basis()
        a = Superposition(frozenset(xs))
        b = Superposition(frozenset(ys))
        wire = wire_intersection(basis, a.encode(basis), b.encode(basis))
        assert decode_superposition(basis, wire) == (a & b)

    @given(members_strategy, members_strategy)
    def test_difference(self, xs, ys):
        basis = make_basis()
        a = Superposition(frozenset(xs))
        b = Superposition(frozenset(ys))
        wire = wire_difference(basis, a.encode(basis), b.encode(basis))
        assert decode_superposition(basis, wire) == (a - b)

    @given(members_strategy)
    def test_complement(self, xs):
        basis = make_basis()
        a = Superposition(frozenset(xs))
        wire = wire_complement(basis, a.encode(basis))
        assert decode_superposition(basis, wire) == a.complement(basis)

    @given(members_strategy, st.integers(min_value=0, max_value=3))
    def test_membership(self, xs, element):
        basis = make_basis()
        a = Superposition(frozenset(xs))
        assert wire_membership(basis, a.encode(basis), element) == (element in xs)


class TestMembershipDeadline:
    def test_deadline_blocks_late_members(self, basis):
        wire = basis.encode_set([3])  # first spike at slot 3
        assert not wire_membership(basis, wire, 3, until_slot=3)
        assert wire_membership(basis, wire, 3, until_slot=4)

    def test_absent_member_false_at_any_deadline(self, basis):
        wire = basis.encode_set([0])
        assert not wire_membership(basis, wire, 2, until_slot=None)


class TestForeignSpikesRejected:
    def test_intersection_strict(self, basis):
        clean = basis.encode_set([0])
        dirty = clean | SpikeTrain([5], GRID)  # slot 5 unowned in basis(4)?
        # Slot 5 IS owned (5 mod 4 == 1) in this dense basis; build sparse.
        sparse = HyperspaceBasis(
            [SpikeTrain([0, 8], GRID), SpikeTrain([1, 9], GRID)]
        )
        dirty = sparse.encode_set([0]) | SpikeTrain([30], GRID)
        with pytest.raises(HyperspaceError):
            wire_intersection(sparse, dirty, sparse.encode_set([0]))
