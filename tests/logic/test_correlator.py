"""Tests for repro.logic.correlator: coincidence identification."""

import numpy as np
import pytest

from repro.errors import IdentificationError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.correlator import (
    CoincidenceCorrelator,
    detection_latency_samples,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=64, dt=1e-12)


@pytest.fixture
def basis():
    return HyperspaceBasis(
        [SpikeTrain(range(k, 64, 4), GRID) for k in range(4)]
    )


@pytest.fixture
def correlator(basis):
    return CoincidenceCorrelator(basis)


class TestIdentify:
    def test_first_spike_decides(self, basis, correlator):
        result = correlator.identify(basis.encode(2))
        assert result.element == 2
        assert result.decision_slot == 2
        assert result.spikes_inspected == 1

    def test_start_slot_skips_early_spikes(self, basis, correlator):
        result = correlator.identify(basis.encode(2), start_slot=10)
        assert result.element == 2
        assert result.decision_slot == 10  # 10 ≡ 2 mod 4

    def test_decision_time_scaling(self, basis, correlator):
        result = correlator.identify(basis.encode(1))
        assert result.decision_time(GRID.dt) == pytest.approx(1e-12)

    def test_foreign_spikes_skipped(self, basis):
        # A wire with unowned spikes before the first owned one: slots
        # 0..3 are all owned here, so build a sparser basis.
        sparse = HyperspaceBasis(
            [SpikeTrain([10, 20], GRID), SpikeTrain([15, 25], GRID)]
        )
        wire = SpikeTrain([5, 15], GRID)  # 5 unowned, 15 owned by element 1
        result = CoincidenceCorrelator(sparse).identify(wire)
        assert result.element == 1
        assert result.spikes_inspected == 2

    def test_no_coincidence_raises(self, basis):
        sparse = HyperspaceBasis(
            [SpikeTrain([10], GRID), SpikeTrain([20], GRID)]
        )
        with pytest.raises(IdentificationError):
            CoincidenceCorrelator(sparse).identify(SpikeTrain([5, 15], GRID))

    def test_empty_wire_raises(self, correlator):
        with pytest.raises(IdentificationError):
            correlator.identify(SpikeTrain.empty(GRID))


class TestIdentifyRobust:
    def test_matches_plain_on_clean_wire(self, basis, correlator):
        plain = correlator.identify(basis.encode(3))
        robust = correlator.identify_robust(basis.encode(3), votes=3)
        assert robust.element == plain.element

    def test_outvotes_single_injected_spike(self, basis, correlator):
        # Wire = element 1's train plus ONE spike of element 0's train.
        wire = basis.encode(1) | SpikeTrain([0], GRID)
        plain = correlator.identify(wire)
        assert plain.element == 0  # first coincidence is the injected spike
        robust = correlator.identify_robust(wire, votes=3)
        assert robust.element == 1  # majority restores the truth

    def test_votes_validation(self, correlator, basis):
        with pytest.raises(IdentificationError):
            correlator.identify_robust(basis.encode(0), votes=0)

    def test_no_coincidence_raises(self, basis):
        sparse = HyperspaceBasis(
            [SpikeTrain([10], GRID), SpikeTrain([20], GRID)]
        )
        with pytest.raises(IdentificationError):
            CoincidenceCorrelator(sparse).identify_robust(SpikeTrain([5], GRID))


class TestDetectMembers:
    def test_superposition_members_found(self, basis, correlator):
        wire = basis.encode_set([0, 2])
        members = correlator.detect_members(wire)
        assert set(members) == {0, 2}
        assert members[0] == 0 and members[2] == 2

    def test_window_limits_detection(self, basis, correlator):
        wire = basis.encode_set([3])
        assert correlator.detect_members(wire, until_slot=3) == {}
        assert set(correlator.detect_members(wire, until_slot=4)) == {3}

    def test_contains(self, basis, correlator):
        wire = basis.encode_set([1, 2])
        assert correlator.contains(wire, 1)
        assert correlator.contains(wire, "V3")
        assert not correlator.contains(wire, 0)

    def test_contains_with_deadline(self, basis, correlator):
        wire = basis.encode_set([2])
        assert not correlator.contains(wire, 2, until_slot=2)
        assert correlator.contains(wire, 2, until_slot=3)


class TestDetectionLatency:
    def test_periodic_reference_latency_bounded(self, basis):
        rng = np.random.default_rng(0)
        latencies = detection_latency_samples(basis, 0, 500, rng)
        assert latencies.shape == (500,)
        # Element 0 fires every 4 slots; latency from a random start < 4+.
        assert latencies.max() <= 4
        assert latencies.min() >= 0

    def test_mean_latency_tracks_rate(self):
        rng = np.random.default_rng(1)
        sparse = HyperspaceBasis(
            [SpikeTrain(range(0, 64, 16), GRID), SpikeTrain(range(1, 64, 4), GRID)]
        )
        slow = detection_latency_samples(sparse, 0, 400, rng).mean()
        fast = detection_latency_samples(sparse, 1, 400, rng).mean()
        assert slow > 2 * fast

    def test_empty_element_raises(self):
        basis = HyperspaceBasis(
            [SpikeTrain([1], GRID), SpikeTrain.empty(GRID)]
        )
        with pytest.raises(IdentificationError):
            detection_latency_samples(basis, 1, 10, np.random.default_rng(0))
