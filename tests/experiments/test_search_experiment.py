"""Tests for the C7 search experiment driver."""

import pytest

from repro.experiments.search import run_search


@pytest.fixture(scope="module")
def result():
    return run_search(n_inputs_sweep=(3, 4))


class TestSearchExperiment:
    def test_spike_cost_flat(self, result):
        assert all(p.spike_checks == 1 for p in result.points)

    def test_grover_grows(self, result):
        queries = [p.grover_queries for p in result.points]
        assert queries == sorted(queries)
        assert queries[-1] > queries[0]

    def test_classical_linear(self, result):
        for point in result.points:
            assert point.classical_queries == pytest.approx(
                (point.n_items + 1) / 2
            )

    def test_grover_success_high(self, result):
        assert all(p.grover_success > 0.8 for p in result.points)

    def test_render(self, result):
        text = result.render()
        assert "grover" in text
        assert "K" in text
