"""Integration tests: every experiment driver runs and shows the paper's shape.

These use reduced record lengths where the driver allows it, so the suite
stays fast; the benchmark harness runs the full paper-sized versions.
"""

import math

import pytest

from repro.experiments.aliasing import run_aliasing
from repro.experiments.energy import run_energy
from repro.experiments.figures import run_figure1, run_figure2, run_figure3
from repro.experiments.gates import run_gates
from repro.experiments.progressive import run_progressive
from repro.experiments.scaling import run_scaling
from repro.experiments.speed import run_speed
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

SMALL = 16384


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(n_samples=SMALL)

    def test_white_tau_within_paper_band(self, result):
        source_row = result.white.rows[0]
        assert source_row.tau_ratio() == pytest.approx(1.0, abs=0.15)

    def test_white_output_tau_about_3x_source(self, result):
        source_tau = result.white.rows[0].measured.mean_isi_samples
        output_tau = result.white.rows[1].measured.mean_isi_samples
        assert output_tau == pytest.approx(3 * source_tau, rel=0.1)

    def test_pink_inferior_to_white(self, result):
        """Table 1's qualitative conclusion: white beats 1/f."""
        white_cv = result.white.rows[0].measured.coefficient_of_variation
        pink_cv = result.pink.rows[0].measured.coefficient_of_variation
        assert pink_cv > white_cv
        assert (
            result.pink.rows[0].measured.mean_isi_seconds
            > result.white.rows[0].measured.mean_isi_seconds
        )

    def test_render_mentions_rice(self, result):
        assert "Rice" in result.render()


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(n_samples=SMALL)

    def test_uncorrelated_coincidence_rare(self, result):
        assert result.spread_uncorrelated > 10.0

    def test_correlated_homogenized(self, result):
        assert result.spread_correlated < 1.5

    def test_uncorrelated_tau_ratios_near_paper(self, result):
        for row in result.uncorrelated.rows:
            ratio = row.tau_ratio()
            assert ratio is not None
            assert 0.6 < ratio < 1.6

    def test_correlated_tau_ratios_near_paper(self, result):
        for row in result.correlated.rows:
            ratio = row.tau_ratio()
            assert ratio is not None
            assert 0.6 < ratio < 1.6


class TestFigures:
    @pytest.mark.parametrize("runner", [run_figure1, run_figure2, run_figure3])
    def test_runs_and_renders(self, runner):
        result = runner(n_samples=8192)
        text = result.render()
        assert "|" in text
        csv = result.to_csv()
        assert csv.startswith("train,slot,time_s")

    def test_figure1_demux_counts(self):
        result = run_figure1(n_samples=8192)
        counts = dict(result.spike_counts())
        assert counts["source"] == counts["W1"] + counts["W2"] + counts["W3"]

    def test_figure2_imbalanced_products(self):
        result = run_figure2(n_samples=8192)
        counts = dict(result.spike_counts())
        product_counts = [v for k, v in counts.items() if "·" in k]
        assert max(product_counts) > 5 * min(product_counts)

    def test_figure3_homogenized_products(self):
        result = run_figure3(n_samples=8192)
        counts = dict(result.spike_counts())
        product_counts = [v for k, v in counts.items() if "·" in k]
        assert max(product_counts) < 1.5 * min(product_counts)


class TestSpeed:
    @pytest.fixture(scope="class")
    def result(self):
        return run_speed(n_trials=50)

    def test_paper_ordering(self, result):
        by_name = {latency.scheme: latency for latency in result.latencies}
        assert (
            by_name["spike"].median_samples
            < by_name["sinusoidal"].median_samples
            < by_name["continuum"].median_samples
        )

    def test_significant_speedup(self, result):
        assert result.speedup_over("continuum") > 10.0
        assert result.speedup_over("sinusoidal") > 2.0


class TestAliasing:
    @pytest.fixture(scope="class")
    def result(self):
        return run_aliasing()

    def test_periodic_aliases_at_spacing_multiples(self, result):
        assert result.spacing_samples in result.periodic_alias_delays()

    def test_random_never_confidently_wrong(self, result):
        assert result.max_random_wrong_rate() == 0.0

    def test_zero_delay_clean(self, result):
        assert result.periodic[0].error_rate == 0.0
        assert result.random[0].error_rate == 0.0


class TestScaling:
    def test_exponential_sizes(self):
        result = run_scaling(max_inputs=4)
        sizes = [p.basis_size for p in result.points]
        assert sizes == [3, 7, 15]

    def test_all_elements_populated_with_homogenization(self):
        result = run_scaling(max_inputs=4, common_amplitude=0.945)
        for point in result.points:
            assert point.nonempty_elements == point.basis_size


class TestProgressive:
    def test_paper_assignment_converges_faster(self):
        result = run_progressive()
        rough_paper = result.time_to_error(result.paper_assignment, 0.2)
        rough_adverse = result.time_to_error(result.adverse_assignment, 0.2)
        assert rough_paper < rough_adverse


class TestEnergy:
    def test_noise_scheme_wins_everywhere(self):
        result = run_energy()
        for target, _schemes in result.rows:
            assert result.advantage(target) > 1.0

    def test_render_has_landauer_column(self):
        assert "xLandauer" in run_energy().render()


class TestGates:
    @pytest.fixture(scope="class")
    def result(self):
        return run_gates(alphabet_sizes=(2, 4))

    def test_all_correct(self, result):
        assert all(p.all_correct for p in result.points)
        assert result.adder_correct

    def test_latency_finite(self, result):
        for p in result.points:
            assert math.isfinite(p.median_latency_samples)


class TestRobustnessExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.robustness import run_robustness

        return run_robustness(trials=2)

    def test_no_wrong_verdicts_anywhere(self, result):
        for sweep in result.sweeps:
            if "injection" in sweep:
                continue  # plurality absorbs light injection; heavy ties
            assert result.max_wrong_rate(sweep) == 0.0

    def test_light_injection_absorbed(self, result):
        injection = next(s for s in result.sweeps if "injection" in s)
        points = result.sweeps[injection]
        assert points[0].wrong_rate == 0.0  # no injection
        assert points[1].wrong_rate < 0.2   # 5 rival spikes

    def test_render(self, result):
        assert "jitter" in result.render()


class TestVerificationExperiment:
    def test_asymmetric_latency(self):
        from repro.experiments.verification import run_verification

        result = run_verification(basis_sizes=(4, 8), n_pairs=8)
        for point in result.points:
            assert point.all_verdicts_correct
            assert point.median_unequal_slot * 50 < point.equal_slot
