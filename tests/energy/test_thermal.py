"""Tests for repro.energy.thermal: physical quantities."""

import math

import pytest

from repro.energy.thermal import (
    BOLTZMANN,
    ROOM_TEMPERATURE,
    error_probability,
    johnson_noise_rms,
    landauer_limit,
    margin_for_error,
    switching_energy,
    thermal_voltage,
)
from repro.errors import ConfigurationError


class TestLandauer:
    def test_room_temperature_value(self):
        # kT ln2 at 300 K ≈ 2.87e-21 J.
        assert landauer_limit(300.0) == pytest.approx(2.87e-21, rel=0.01)

    def test_scales_linearly_with_temperature(self):
        assert landauer_limit(600.0) == pytest.approx(2 * landauer_limit(300.0))

    def test_invalid_temperature(self):
        with pytest.raises(ConfigurationError):
            landauer_limit(0.0)


class TestThermalVoltage:
    def test_room_temperature_26mv(self):
        assert thermal_voltage(300.0) == pytest.approx(25.85e-3, rel=0.01)


class TestJohnsonNoise:
    def test_known_value(self):
        # 1 kΩ over 10 GHz at 300 K: sqrt(4kTRB) ≈ 0.407 mV.
        rms = johnson_noise_rms(1e3, 10e9)
        assert rms == pytest.approx(4.07e-4, rel=0.02)

    def test_scales_with_sqrt_bandwidth(self):
        narrow = johnson_noise_rms(1e3, 1e9)
        wide = johnson_noise_rms(1e3, 4e9)
        assert wide == pytest.approx(2 * narrow)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            johnson_noise_rms(0.0, 1e9)
        with pytest.raises(ConfigurationError):
            johnson_noise_rms(1e3, -1.0)
        with pytest.raises(ConfigurationError):
            johnson_noise_rms(1e3, 1e9, temperature=0.0)


class TestErrorProbability:
    def test_zero_margin_is_half(self):
        assert error_probability(0.0) == pytest.approx(0.5)

    def test_known_sigma_values(self):
        # 1σ one-sided tail ≈ 0.1587; 3σ ≈ 1.35e-3.
        assert error_probability(1.0) == pytest.approx(0.1587, rel=0.01)
        assert error_probability(3.0) == pytest.approx(1.35e-3, rel=0.02)

    def test_round_trip_with_margin(self):
        for p in (1e-3, 1e-6, 1e-12):
            assert error_probability(margin_for_error(p)) == pytest.approx(p, rel=1e-6)

    def test_margin_monotone(self):
        assert margin_for_error(1e-12) > margin_for_error(1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            error_probability(-1.0)
        with pytest.raises(ConfigurationError):
            margin_for_error(0.6)
        with pytest.raises(ConfigurationError):
            margin_for_error(0.0)


class TestSwitchingEnergy:
    def test_cv_squared(self):
        assert switching_energy(1e-15, 1.0) == pytest.approx(1e-15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            switching_energy(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            switching_energy(1e-15, -1.0)
