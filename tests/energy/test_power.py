"""Tests for repro.energy.power: scheme-level energy comparison."""

import pytest

from repro.energy.power import (
    AmplifierChain,
    clocked_scheme_energy,
    compare_schemes,
    noise_scheme_energy,
)
from repro.energy.thermal import landauer_limit
from repro.errors import ConfigurationError


class TestAmplifierChain:
    def test_stage_count(self):
        chain = AmplifierChain(input_rms=1e-5, target_rms=1e-3, gain=10.0)
        assert chain.n_stages == 2

    def test_stage_count_rounds_up(self):
        chain = AmplifierChain(input_rms=1e-5, target_rms=5e-3, gain=10.0)
        assert chain.n_stages == 3

    def test_supplies_increase(self):
        chain = AmplifierChain(input_rms=1e-5, target_rms=1e-2, gain=10.0)
        supplies = chain.stage_supplies()
        assert supplies == sorted(supplies)
        assert len(supplies) == chain.n_stages

    def test_last_supply_covers_target(self):
        chain = AmplifierChain(input_rms=1e-5, target_rms=1e-3, gain=10.0,
                               headroom=4.0)
        assert chain.stage_supplies()[-1] == pytest.approx(4.0 * 1e-3)

    def test_energy_positive(self):
        chain = AmplifierChain(input_rms=1e-5, target_rms=1e-3)
        assert chain.energy_per_event() > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AmplifierChain(input_rms=0.0, target_rms=1e-3)
        with pytest.raises(ConfigurationError):
            AmplifierChain(input_rms=1e-3, target_rms=1e-5)
        with pytest.raises(ConfigurationError):
            AmplifierChain(input_rms=1e-5, target_rms=1e-3, gain=0.5)
        with pytest.raises(ConfigurationError):
            AmplifierChain(input_rms=1e-5, target_rms=1e-3, headroom=0.9)


class TestSchemes:
    def test_noise_scheme_timing_free(self):
        scheme = noise_scheme_energy()
        assert scheme.timing_energy_per_op == 0.0
        assert scheme.logic_energy_per_op > 0.0

    def test_clocked_scheme_pays_for_clock(self):
        scheme = clocked_scheme_energy()
        assert scheme.timing_energy_per_op > scheme.logic_energy_per_op

    def test_noise_scheme_wins(self):
        noise, clocked = compare_schemes()
        assert noise.total_per_op < clocked.total_per_op

    def test_advantage_grows_with_reliability(self):
        easy = compare_schemes(error_target=1e-6)
        hard = compare_schemes(error_target=1e-15)
        easy_ratio = easy[1].total_per_op / easy[0].total_per_op
        hard_ratio = hard[1].total_per_op / hard[0].total_per_op
        assert hard_ratio >= easy_ratio * 0.9  # non-decreasing (within noise)

    def test_energy_above_landauer(self):
        """Physical sanity: no scheme may beat kT ln2 per operation."""
        for scheme in compare_schemes():
            assert scheme.total_per_op > landauer_limit()

    def test_landauer_multiple(self):
        noise, _clocked = compare_schemes()
        assert noise.landauer_multiple() == pytest.approx(
            noise.total_per_op / landauer_limit(), rel=1e-9
        )

    def test_spikes_per_operation_scaling(self):
        one = noise_scheme_energy(spikes_per_operation=1.0)
        three = noise_scheme_energy(spikes_per_operation=3.0)
        assert three.logic_energy_per_op == pytest.approx(
            3 * one.logic_energy_per_op
        )

    def test_guard_band_scaling(self):
        plain = clocked_scheme_energy(variation_guard_band=1.0)
        guarded = clocked_scheme_energy(variation_guard_band=2.0)
        assert guarded.total_per_op == pytest.approx(4 * plain.total_per_op)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            noise_scheme_energy(spikes_per_operation=0.0)
        with pytest.raises(ConfigurationError):
            clocked_scheme_energy(variation_guard_band=0.5)
        with pytest.raises(ConfigurationError):
            clocked_scheme_energy(clock_fanout=0.0)
        with pytest.raises(ConfigurationError):
            clocked_scheme_energy(cycles_per_operation=0.0)
