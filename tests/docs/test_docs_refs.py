"""Every path and module the docs name must resolve.

The documentation contract: any inline-code span in ``docs/*.md`` or
``README.md`` that names a repository file (``src/repro/...py``,
``benchmarks/...json``, ...) or a ``repro.*`` dotted module must point
at something that exists, and any relative markdown link must resolve.
Docs referring to *generated* locations must use placeholders
(``<output-dir>/table1.json``) or plain prose so they never match the
path pattern — that keeps this check strict instead of allowlisted.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
DOCS = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]

#: A token that *is* a repository path: optional dot-leading segments,
#: slash-separated, ending in a known source/docs extension.
PATH_TOKEN = re.compile(
    r"^\.?[A-Za-z0-9_.-]+(?:/[A-Za-z0-9_.-]+)*"
    r"\.(?:py|md|json|yml|yaml|toml|txt|cfg)$"
)

#: A token that is a dotted repro module (optionally with attributes).
MODULE_TOKEN = re.compile(r"^repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+$")

#: Inline code spans (`...`); fenced blocks are stripped first.
INLINE_CODE = re.compile(r"`([^`\n]+)`")

#: Relative markdown links [text](target) — web links and anchors skipped.
RELATIVE_LINK = re.compile(r"\[[^\]]*\]\((?!https?://|#|mailto:)([^)#]+)")

FENCE = re.compile(r"^(```|~~~)", re.MULTILINE)


def iter_docs():
    assert DOCS, "no documentation files found"
    for path in DOCS:
        assert path.exists(), path
    return DOCS


def strip_fenced_blocks(text: str) -> str:
    """Remove fenced code blocks (shell transcripts may show fake paths)."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def module_resolves(token: str) -> bool:
    """True when some prefix of ``repro.a.b.C`` is a real module.

    Trailing segments may be attributes (classes, functions), so the
    check walks prefixes: ``repro.serving.client.ServingClient``
    resolves through ``src/repro/serving/client.py``.
    """
    parts = token.split(".")
    for end in range(len(parts), 1, -1):
        base = REPO / "src" / pathlib.Path(*parts[:end])
        if base.with_suffix(".py").exists() or (base / "__init__.py").exists():
            return True
    return False


@pytest.mark.parametrize("doc", iter_docs(), ids=lambda p: p.name)
def test_inline_code_paths_exist(doc):
    text = strip_fenced_blocks(doc.read_text())
    missing = []
    for token in INLINE_CODE.findall(text):
        token = token.strip()
        if PATH_TOKEN.match(token):
            if not (REPO / token).exists():
                missing.append(token)
        elif MODULE_TOKEN.match(token):
            if not module_resolves(token):
                missing.append(token)
    assert not missing, f"{doc.name} references missing paths: {missing}"


@pytest.mark.parametrize("doc", iter_docs(), ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    text = strip_fenced_blocks(doc.read_text())
    missing = []
    for target in RELATIVE_LINK.findall(text):
        target = target.strip()
        if not (doc.parent / target).exists() and not (REPO / target).exists():
            missing.append(target)
    assert not missing, f"{doc.name} links to missing targets: {missing}"


def test_required_documents_exist():
    """The acceptance set: architecture, serving, protocol, README."""
    for name in (
        "docs/architecture.md",
        "docs/serving.md",
        "docs/protocol.md",
        "README.md",
    ):
        assert (REPO / name).exists(), name


def test_docs_name_every_serving_module():
    """architecture.md must keep covering the serving layer's files."""
    text = (REPO / "docs" / "architecture.md").read_text()
    for module in ("protocol.py", "server.py", "dispatch.py", "client.py"):
        assert f"src/repro/serving/{module}" in text, module
