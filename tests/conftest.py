"""Shared fixtures: small, fast grids and sources for unit tests.

Unit tests use 4096–8192-sample records (the paper's statistics use
65 536, which the experiment/benchmark layer keeps); the small records
make the suite fast while preserving every invariant under test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.spectra import PAPER_WHITE_BAND, PinkSpectrum, WhiteSpectrum
from repro.noise.spectra import PAPER_PINK_BAND
from repro.noise.synthesis import NoiseSynthesizer
from repro.spikes.zero_crossing import AllCrossingDetector
from repro.units import SimulationGrid, paper_white_grid


@pytest.fixture
def small_grid() -> SimulationGrid:
    """A short paper-scaled grid (4096 samples, dt = 3.125 ps)."""
    return paper_white_grid(n_samples=4096)


@pytest.fixture
def medium_grid() -> SimulationGrid:
    """A medium paper-scaled grid (16384 samples)."""
    return paper_white_grid(n_samples=16384)


@pytest.fixture
def white_synth(small_grid) -> NoiseSynthesizer:
    """White-band synthesiser on the small grid."""
    return NoiseSynthesizer(WhiteSpectrum(PAPER_WHITE_BAND), small_grid)


@pytest.fixture
def pink_synth(small_grid) -> NoiseSynthesizer:
    """1/f-band synthesiser on the small grid."""
    return NoiseSynthesizer(PinkSpectrum(PAPER_PINK_BAND), small_grid)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def white_train(white_synth, rng):
    """A zero-crossing spike train from one white record."""
    record = white_synth.generate(rng)
    return AllCrossingDetector().detect(record, white_synth.grid)
