"""Tests for benchmarks/compare_bench.py (the perf regression gate)."""

import importlib.util
import json
import pathlib

import pytest

_PATH = (
    pathlib.Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "compare_bench.py"
)
_spec = importlib.util.spec_from_file_location("compare_bench", _PATH)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def _write(path, entries):
    path.write_text(json.dumps(entries))
    return path


def _entry(name, seconds, **extra):
    entry = {
        "experiment": name,
        "config": {},
        "seconds": seconds,
        "speedup": 1.0,
        "cpus": 2,
        "python": "3.11.7",
        "commit": "abc1234",
    }
    entry.update(extra)
    return entry


class TestCompareBench:
    def test_identical_files_pass(self, tmp_path):
        old = _write(tmp_path / "old.json", [_entry("a", 1.0)])
        new = _write(tmp_path / "new.json", [_entry("a", 1.0)])
        assert compare_bench.main([str(old), str(new)]) == 0

    def test_within_threshold_passes(self, tmp_path):
        old = _write(tmp_path / "old.json", [_entry("a", 1.0)])
        new = _write(tmp_path / "new.json", [_entry("a", 1.15)])
        assert compare_bench.main([str(old), str(new)]) == 0

    def test_regression_beyond_threshold_fails(self, tmp_path):
        old = _write(tmp_path / "old.json", [_entry("a", 1.0)])
        new = _write(tmp_path / "new.json", [_entry("a", 1.5)])
        assert compare_bench.main([str(old), str(new)]) == 1

    def test_custom_threshold_loosens_the_gate(self, tmp_path):
        old = _write(tmp_path / "old.json", [_entry("a", 1.0)])
        new = _write(tmp_path / "new.json", [_entry("a", 1.5)])
        assert (
            compare_bench.main([str(old), str(new), "--threshold", "1.0"])
            == 0
        )

    def test_min_seconds_floor_exempts_micro_timings(self, tmp_path):
        old = _write(
            tmp_path / "old.json",
            [_entry("micro", 0.0002), _entry("macro", 2.0)],
        )
        new = _write(
            tmp_path / "new.json",
            [_entry("micro", 0.01), _entry("macro", 2.1)],
        )
        args = [str(old), str(new), "--min-seconds", "0.01"]
        assert compare_bench.main(args) == 0
        # The same 50x micro regression fails without the floor.
        assert compare_bench.main([str(old), str(new)]) == 1

    def test_missing_experiment_fails(self, tmp_path):
        old = _write(
            tmp_path / "old.json", [_entry("a", 1.0), _entry("b", 2.0)]
        )
        new = _write(tmp_path / "new.json", [_entry("a", 1.0)])
        assert compare_bench.main([str(old), str(new)]) == 1

    def test_new_experiment_passes(self, tmp_path):
        old = _write(tmp_path / "old.json", [_entry("a", 1.0)])
        new = _write(
            tmp_path / "new.json", [_entry("a", 1.0), _entry("b", 9.0)]
        )
        assert compare_bench.main([str(old), str(new)]) == 0

    def test_new_experiment_is_informational_even_at_zero_threshold(
        self, tmp_path, capsys
    ):
        # The land-cleanly contract: a bench added in this PR has no
        # baseline entry yet, and must not fail the gate however slow
        # it is or however strict the threshold — it gates once the
        # committed baseline picks it up.
        old = _write(tmp_path / "old.json", [_entry("a", 1.0)])
        new = _write(
            tmp_path / "new.json",
            [_entry("a", 1.0), _entry("fresh_bench", 99.0)],
        )
        args = [str(old), str(new), "--threshold", "0.0"]
        assert compare_bench.main(args) == 0
        assert "new entry" in capsys.readouterr().out

    def test_speedup_passes(self, tmp_path):
        old = _write(tmp_path / "old.json", [_entry("a", 2.0)])
        new = _write(tmp_path / "new.json", [_entry("a", 0.5)])
        assert compare_bench.main([str(old), str(new)]) == 0

    def test_provenance_mismatch_reported(self, tmp_path, capsys):
        old = _write(tmp_path / "old.json", [_entry("a", 1.0, cpus=1)])
        new = _write(tmp_path / "new.json", [_entry("a", 1.0, cpus=8)])
        assert compare_bench.main([str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "cpus=1" in out and "cpus=8" in out

    def test_real_committed_file_self_compares_clean(self):
        committed = _PATH.parent / "BENCH_batch.json"
        assert (
            compare_bench.main([str(committed), str(committed)]) == 0
        )

    def test_malformed_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        good = _write(tmp_path / "good.json", [_entry("a", 1.0)])
        with pytest.raises(ValueError, match="expected a JSON list"):
            compare_bench.main([str(bad), str(good)])

    def test_entry_without_name_raises_with_index(self, tmp_path):
        bad = _write(tmp_path / "bad.json", [{"seconds": 1.0}])
        good = _write(tmp_path / "good.json", [_entry("a", 1.0)])
        with pytest.raises(ValueError, match="entry 0 has no 'experiment'"):
            compare_bench.main([str(bad), str(good)])

    def test_non_numeric_seconds_raises_with_name(self, tmp_path):
        entry = _entry("a", 1.0)
        entry["seconds"] = "fast"
        bad = _write(tmp_path / "bad.json", [entry])
        good = _write(tmp_path / "good.json", [_entry("a", 1.0)])
        with pytest.raises(ValueError, match="'a'.*non-numeric"):
            compare_bench.main([str(good), str(bad)])

    def test_non_object_entry_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('["just a string"]')
        good = _write(tmp_path / "good.json", [_entry("a", 1.0)])
        with pytest.raises(ValueError, match="entry 0 is not an object"):
            compare_bench.main([str(bad), str(good)])

    def test_duplicate_experiment_raises(self, tmp_path):
        bad = _write(
            tmp_path / "bad.json", [_entry("a", 1.0), _entry("a", 2.0)]
        )
        good = _write(tmp_path / "good.json", [_entry("a", 1.0)])
        with pytest.raises(ValueError, match="duplicate experiment 'a'"):
            compare_bench.main([str(bad), str(good)])
