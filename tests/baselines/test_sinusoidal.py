"""Tests for repro.baselines.sinusoidal: sinusoidal-carrier logic."""

import numpy as np
import pytest

from repro.baselines.sinusoidal import SinusoidalLogic
from repro.errors import ConfigurationError, IdentificationError
from repro.units import GIGAHERTZ, paper_white_grid


@pytest.fixture
def logic():
    grid = paper_white_grid(n_samples=32768)
    freqs = [1.0 * GIGAHERTZ, 1.5 * GIGAHERTZ, 2.0 * GIGAHERTZ]
    return SinusoidalLogic(freqs, grid)


class TestConstruction:
    def test_needs_two_carriers(self):
        grid = paper_white_grid(n_samples=1024)
        with pytest.raises(ConfigurationError):
            SinusoidalLogic([1 * GIGAHERTZ], grid)

    def test_distinct_frequencies(self):
        grid = paper_white_grid(n_samples=1024)
        with pytest.raises(ConfigurationError):
            SinusoidalLogic([1e9, 1e9], grid)

    def test_nyquist_bound(self):
        grid = paper_white_grid(n_samples=1024)
        with pytest.raises(ConfigurationError):
            SinusoidalLogic([1e9, grid.nyquist * 1.1], grid)

    def test_positive_amplitude(self):
        grid = paper_white_grid(n_samples=1024)
        with pytest.raises(ConfigurationError):
            SinusoidalLogic([1e9, 2e9], grid, amplitude=0.0)


class TestIdentification:
    def test_identifies_every_value(self, logic):
        for value in range(logic.n_values):
            result = logic.identify(logic.encode(value))
            assert result.value == value

    def test_phase_insensitive(self, logic):
        for phase in (0.0, 0.7, 2.0):
            result = logic.identify(logic.encode(1, phase=phase))
            assert result.value == 1

    def test_detection_time_set_by_carrier_spacing(self, logic):
        """Window ~ 1/Δf: decision time within an order of 1/Δf."""
        decision = logic.identification_time_samples(0)
        delta_f = 0.5 * GIGAHERTZ
        slots_per_beat = 1.0 / (delta_f * logic.grid.dt)
        assert decision < 10 * slots_per_beat
        assert decision > 0.05 * slots_per_beat

    def test_survives_moderate_noise(self, logic):
        result = logic.identify(logic.encode(2, noise_rms=0.5, rng=0))
        assert result.value == 2

    def test_wire_shape_validated(self, logic):
        with pytest.raises(ConfigurationError):
            logic.running_envelopes(np.zeros(7))

    def test_margin_validation(self, logic):
        with pytest.raises(ConfigurationError):
            logic.identify(logic.encode(0), margin=-0.1)

    def test_value_range(self, logic):
        with pytest.raises(ConfigurationError):
            logic.encode(3)


class TestOrderingAgainstSpikes:
    def test_slower_than_spike_scheme(self, logic):
        """Sinusoidal needs ~1/Δf; spike needs ~1 ISI (~28 slots)."""
        decision = logic.identification_time_samples(0)
        assert decision > 5 * 28
