"""Tests for repro.baselines.periodic: aliasing of periodic spike logic."""

import numpy as np
import pytest

from repro.baselines.periodic import (
    identification_verdict,
    misidentification_curve,
    periodic_spike_basis,
)
from repro.errors import ConfigurationError
from repro.hyperspace.basis import HyperspaceBasis
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=1024, dt=1e-12)


@pytest.fixture
def periodic_basis():
    return periodic_spike_basis(4, 16, GRID)


@pytest.fixture
def random_basis():
    rng = np.random.default_rng(5)
    slots = rng.choice(GRID.n_samples, size=128, replace=False)
    slots.sort()
    return HyperspaceBasis(
        [SpikeTrain(slots[k::4], GRID) for k in range(4)]
    )


class TestPeriodicBasis:
    def test_structure(self, periodic_basis):
        assert periodic_basis.size == 4
        train0 = periodic_basis.trains[0]
        assert train0.first_spike_index() == 0
        assert np.all(train0.interspike_intervals() == 64)

    def test_shifted_copy_identity(self, periodic_basis):
        """The aliasing hazard, verified directly."""
        t0 = periodic_basis.trains[0]
        t1 = periodic_basis.trains[1]
        assert t0.shifted(16, wrap=True) == t1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            periodic_spike_basis(1, 16, GRID)
        with pytest.raises(ConfigurationError):
            periodic_spike_basis(4, 0, GRID)
        with pytest.raises(ConfigurationError):
            periodic_spike_basis(4, 512, GRID)  # period exceeds record


class TestVerdict:
    def test_own_reference_wins(self, periodic_basis):
        verdict = identification_verdict(periodic_basis, periodic_basis.trains[2])
        assert verdict == 2

    def test_silent_when_no_coincidence(self, periodic_basis):
        # Offset 8 lies between the wires (spacing 16): nothing matches.
        signal = periodic_basis.trains[0].shifted(8, wrap=True)
        assert identification_verdict(periodic_basis, signal) is None

    def test_windowed_match(self, periodic_basis):
        signal = periodic_basis.trains[0].shifted(2, wrap=True)
        assert identification_verdict(periodic_basis, signal, window=2) == 0

    def test_confidence_threshold_rejects_chance(self, random_basis):
        signal = random_basis.trains[0].shifted(101, wrap=True)
        # Whatever weak plurality exists at a large delay is far below
        # 50 % confidence for a random basis.
        verdict = identification_verdict(
            random_basis, signal, window=1, min_confidence=0.5
        )
        assert verdict is None

    def test_confidence_bounds_validated(self, random_basis):
        with pytest.raises(ConfigurationError):
            identification_verdict(
                random_basis, random_basis.trains[0], min_confidence=2.0
            )


class TestMisidentificationCurve:
    def test_periodic_aliases_at_spacing(self, periodic_basis):
        points = misidentification_curve(periodic_basis, [0, 16])
        assert points[0].wrong_rate == 0.0
        assert points[1].wrong_rate == 1.0
        assert points[1].aliased

    def test_random_never_confidently_wrong(self, random_basis):
        delays = [0, 8, 16, 64]
        points = misidentification_curve(
            random_basis, delays, window=1, min_confidence=0.5
        )
        assert all(p.wrong_rate == 0.0 for p in points)

    def test_error_rate_is_sum(self, periodic_basis):
        points = misidentification_curve(periodic_basis, [8])
        point = points[0]
        assert point.error_rate == point.wrong_rate + point.silent_rate

    def test_negative_delay_rejected(self, periodic_basis):
        with pytest.raises(ConfigurationError):
            misidentification_curve(periodic_basis, [-1])
