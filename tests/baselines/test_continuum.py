"""Tests for repro.baselines.continuum: continuum noise logic."""

import numpy as np
import pytest

from repro.baselines.continuum import ContinuumNoiseLogic
from repro.errors import ConfigurationError, IdentificationError
from repro.noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from repro.units import paper_white_grid


@pytest.fixture
def logic():
    grid = paper_white_grid(n_samples=32768)
    return ContinuumNoiseLogic(4, WhiteSpectrum(PAPER_WHITE_BAND), grid, seed=0)


class TestEncoding:
    def test_encode_returns_reference(self, logic):
        wire = logic.encode(2)
        assert np.array_equal(wire, logic.references[2])

    def test_encode_with_noise_differs(self, logic):
        wire = logic.encode(2, noise_rms=0.5, rng=1)
        assert not np.array_equal(wire, logic.references[2])

    def test_value_range(self, logic):
        with pytest.raises(ConfigurationError):
            logic.encode(4)

    def test_needs_two_values(self):
        grid = paper_white_grid(n_samples=1024)
        with pytest.raises(ConfigurationError):
            ContinuumNoiseLogic(1, WhiteSpectrum(PAPER_WHITE_BAND), grid)


class TestRunningCorrelations:
    def test_shape(self, logic):
        corr = logic.running_correlations(logic.encode(0))
        assert corr.shape == (4, logic.grid.n_samples)

    def test_correct_reference_converges_to_one(self, logic):
        corr = logic.running_correlations(logic.encode(1))
        assert corr[1, -1] == pytest.approx(1.0)

    def test_rivals_converge_to_zero(self, logic):
        corr = logic.running_correlations(logic.encode(1))
        for rival in (0, 2, 3):
            assert abs(corr[rival, -1]) < 0.1

    def test_wire_shape_validated(self, logic):
        with pytest.raises(ConfigurationError):
            logic.running_correlations(np.zeros(10))


class TestIdentification:
    def test_identifies_every_value(self, logic):
        for value in range(4):
            result = logic.identify(logic.encode(value))
            assert result.value == value

    def test_statistical_floor_enforced(self, logic):
        floor = logic.statistical_settling_slot(margin=0.2, k_sigma=4.0)
        result = logic.identify(logic.encode(0), margin=0.2)
        assert result.decision_slot >= floor

    def test_floor_scales_with_margin(self, logic):
        loose = logic.statistical_settling_slot(margin=0.4)
        tight = logic.statistical_settling_slot(margin=0.1)
        assert tight == pytest.approx(16 * loose, rel=0.01)

    def test_identification_much_slower_than_one_isi(self, logic):
        """The Section 2 claim, from the continuum side: averaging needed."""
        decision = logic.identification_time_samples(0)
        # One mean ISI of the spike scheme is ~28 samples on this grid.
        assert decision > 50 * 28

    def test_mismatch_raises(self, logic):
        # Force a mismatch by asking for value 1 on a wire carrying 0.
        result = logic.identify(logic.encode(0))
        assert result.value == 0
        with pytest.raises(IdentificationError):
            # identification_time_samples checks the settled value.
            wire = logic.encode(0)
            out = logic.identify(wire)
            if out.value != 1:
                raise IdentificationError("wrong value")

    def test_record_too_short_raises(self):
        grid = paper_white_grid(n_samples=1024)
        logic = ContinuumNoiseLogic(2, WhiteSpectrum(PAPER_WHITE_BAND), grid, seed=0)
        # The statistical floor (6400 slots at margin 0.2) exceeds 1024.
        with pytest.raises(IdentificationError):
            logic.identify(logic.encode(0), margin=0.2)

    def test_margin_validation(self, logic):
        with pytest.raises(ConfigurationError):
            logic.identify(logic.encode(0), margin=0.0)

    def test_independent_samples_per_slot_bounded(self, logic):
        per_slot = logic.independent_samples_per_slot()
        assert 0 < per_slot <= 1.0
        assert per_slot == pytest.approx(2 * 10e9 * logic.grid.dt, rel=0.01)
