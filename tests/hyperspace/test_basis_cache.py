"""Tests for the HyperspaceBasis projection caches.

Covers the owner-vector laziness, the encode LRU (hit/miss counters,
eviction, shared immutable results) and invalidation on mutation.
"""

import numpy as np
import pytest

from repro.errors import HyperspaceError
from repro.hyperspace.basis import HyperspaceBasis
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=64, dt=1e-9)


def _basis(**kwargs):
    trains = [
        SpikeTrain([0, 8, 16], GRID),
        SpikeTrain([1, 9, 17], GRID),
        SpikeTrain([2, 10, 18], GRID),
    ]
    return HyperspaceBasis(trains, **kwargs)


class TestOwnerVectorCache:
    def test_lazy_build_then_hits(self):
        basis = _basis()
        info = basis.cache_info()
        assert info["owner_vector_builds"] == 0
        assert not info["owner_vector_cached"]

        basis.owner_vector
        basis.owner_vector
        info = basis.cache_info()
        assert info["owner_vector_builds"] == 1
        assert info["owner_vector_hits"] == 1
        assert info["owner_vector_cached"]

    def test_identification_paths_share_one_build(self):
        basis = _basis()
        basis.owners_of(np.array([0, 1, 2]))
        basis.classify_train(SpikeTrain([8, 9], GRID))
        basis.owner_of_slot(16)
        assert basis.cache_info()["owner_vector_builds"] == 1


class TestEncodeCache:
    def test_encode_set_hit_returns_same_object(self):
        basis = _basis()
        first = basis.encode_set([0, 2])
        second = basis.encode_set([2, 0])  # normalised key: order-free
        assert second is first
        info = basis.cache_info()
        assert info["encode_misses"] == 1
        assert info["encode_hits"] == 1

    def test_encode_batch_hit_returns_same_object(self):
        basis = _basis()
        first = basis.encode_batch([[0], [1, 2]])
        second = basis.encode_batch([[0], [2, 1]])
        assert second is first
        assert basis.cache_info()["encode_hits"] == 1

    def test_set_and_batch_keys_do_not_collide(self):
        basis = _basis()
        basis.encode_set([0])
        basis.encode_batch([[0]])
        assert basis.cache_info()["encode_misses"] == 2

    def test_lru_evicts_oldest(self):
        basis = _basis(encode_cache_size=2)
        basis.encode_set([0])
        basis.encode_set([1])
        basis.encode_set([2])  # evicts [0]
        assert basis.cache_info()["encode_entries"] == 2
        basis.encode_set([0])  # rebuilt: a miss
        info = basis.cache_info()
        assert info["encode_misses"] == 4
        assert info["encode_hits"] == 0

    def test_byte_budget_evicts_before_entry_bound(self):
        basis = _basis(encode_cache_size=64, encode_cache_bytes=200)
        basis.encode_set([0])  # ~88 bytes (3 int64 slots + overhead)
        basis.encode_set([1])
        assert basis.cache_info()["encode_entries"] == 2
        basis.encode_set([2])  # pushes past 200 bytes → evicts [0]
        info = basis.cache_info()
        assert info["encode_entries"] == 2
        assert info["encode_bytes"] <= 200

    def test_oversized_value_returned_uncached(self):
        basis = _basis(encode_cache_bytes=8)  # nothing fits
        basis.encode_set([0, 1])
        info = basis.cache_info()
        assert info["encode_entries"] == 0
        assert info["encode_bytes"] == 0
        # Still correct, just rebuilt per call (two misses, no hit).
        basis.encode_set([0, 1])
        assert basis.cache_info()["encode_misses"] == 2

    def test_cached_wire_is_correct(self):
        basis = _basis()
        wire = basis.encode_set([0, 1])
        again = basis.encode_set([0, 1])
        assert again.indices.tolist() == sorted([0, 8, 16, 1, 9, 17])


class TestInvalidation:
    def test_replace_element_invalidates_everything(self):
        basis = _basis()
        basis.owner_vector
        basis.encode_set([0])
        basis.as_batch()
        version = basis.version

        replacement = SpikeTrain([3, 11, 19], GRID)
        basis.replace_element(0, replacement)

        info = basis.cache_info()
        assert basis.version == version + 1
        assert not info["owner_vector_cached"]
        assert info["encode_entries"] == 0
        # The rebuilt projections see the new train.
        assert basis.owner_of_slot(3) == 0
        assert basis.owner_of_slot(0) is None
        assert basis.encode_set([0]).indices.tolist() == [3, 11, 19]
        assert basis.as_batch().row(0).indices.tolist() == [3, 11, 19]

    def test_replace_element_requires_orthogonality(self):
        basis = _basis()
        clash = SpikeTrain([1, 30], GRID)  # slot 1 belongs to element 1
        with pytest.raises(Exception):
            basis.replace_element(0, clash)
        # The failed mutation left the basis untouched.
        assert basis.owner_of_slot(0) == 0

    def test_replace_element_requires_same_grid(self):
        basis = _basis()
        other = SimulationGrid(n_samples=32, dt=1e-9)
        with pytest.raises(HyperspaceError):
            basis.replace_element(0, SpikeTrain([3], other))

    def test_invalidate_keeps_cumulative_counters(self):
        basis = _basis()
        basis.encode_set([0])
        basis.encode_set([0])
        basis.invalidate_caches()
        info = basis.cache_info()
        assert info["encode_hits"] == 1
        assert info["encode_misses"] == 1
        assert info["encode_entries"] == 0
