"""Tests for repro.hyperspace.codec: the byte-stream link."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.hyperspace.codec import NeuroBitCodec
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=16384, dt=1e-12)


def make_codec(m: int = 4) -> NeuroBitCodec:
    source = SpikeTrain(np.arange(0, GRID.n_samples, 7), GRID)
    output = DemuxOrthogonator.with_outputs(m).transform(source)
    return NeuroBitCodec(output)


@pytest.fixture
def codec():
    return make_codec()


class TestDigits:
    def test_radix4_digits_per_byte(self, codec):
        assert codec.radix == 4
        assert codec.digits_per_byte == 4  # 4^4 = 256

    def test_radix16_digits_per_byte(self):
        assert make_codec(16).digits_per_byte == 2

    def test_bytes_digit_round_trip(self, codec):
        payload = bytes([0, 1, 127, 128, 255])
        digits = codec.bytes_to_digits(payload)
        assert codec.digits_to_bytes(digits) == payload

    def test_digit_count(self, codec):
        assert len(codec.bytes_to_digits(b"abc")) == 3 * codec.digits_per_byte

    def test_partial_digits_rejected(self, codec):
        with pytest.raises(LogicError):
            codec.digits_to_bytes([1, 2, 3])

    def test_digit_range_enforced(self, codec):
        with pytest.raises(LogicError):
            codec.digits_to_bytes([9, 0, 0, 0])


class TestWire:
    def test_message_round_trip(self, codec):
        message = b"NEURO-BITS"
        wire = codec.encode(message)
        assert codec.decode(wire) == message

    def test_empty_message(self, codec):
        wire = codec.encode(b"")
        assert len(wire) == 0
        assert codec.decode(wire) == b""

    def test_one_spike_per_digit(self, codec):
        wire = codec.encode(b"A")
        assert len(wire) == codec.digits_per_byte

    def test_capacity_accounting(self, codec):
        capacity = codec.capacity()
        assert capacity.bytes_capacity == (
            capacity.packages_available // capacity.digits_per_byte
        )
        # Fill the link to capacity and round-trip.
        payload = bytes(range(min(capacity.bytes_capacity, 64)))
        assert codec.decode(codec.encode(payload)) == payload

    def test_oversized_payload_rejected(self, codec):
        capacity = codec.capacity()
        too_big = bytes(capacity.bytes_capacity + 1)
        with pytest.raises(LogicError):
            codec.encode(too_big)

    def test_lost_symbol_detected(self, codec):
        wire = codec.encode(b"AB")
        # Drop one spike from the message body.
        damaged = SpikeTrain(wire.indices[1:], wire.grid)
        with pytest.raises(LogicError):
            codec.decode(damaged)

    @given(st.binary(min_size=0, max_size=32))
    @settings(max_examples=30)
    def test_round_trip_property(self, payload):
        codec = make_codec(4)
        assert codec.decode(codec.encode(payload)) == payload

    def test_needs_two_wires(self):
        source = SpikeTrain(np.arange(0, GRID.n_samples, 7), GRID)
        output = DemuxOrthogonator.with_outputs(1).transform(source)
        with pytest.raises(LogicError):
            NeuroBitCodec(output)
