"""Tests for repro.hyperspace.basis: HyperspaceBasis."""

import numpy as np
import pytest

from repro.errors import HyperspaceError
from repro.hyperspace.basis import HyperspaceBasis
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid


@pytest.fixture
def grid():
    return SimulationGrid(n_samples=100, dt=1e-12)


@pytest.fixture
def basis(grid):
    return HyperspaceBasis(
        [
            SpikeTrain([0, 10, 20], grid),
            SpikeTrain([1, 11, 21], grid),
            SpikeTrain([2, 12, 22], grid),
        ],
        labels=["X", "Y", "Z"],
    )


class TestConstruction:
    def test_default_labels(self, grid):
        basis = HyperspaceBasis([SpikeTrain([0], grid), SpikeTrain([1], grid)])
        assert basis.labels == ("V1", "V2")

    def test_empty_rejected(self):
        with pytest.raises(HyperspaceError):
            HyperspaceBasis([])

    def test_overlap_rejected(self, grid):
        from repro.errors import OrthogonalityError

        with pytest.raises(OrthogonalityError):
            HyperspaceBasis([SpikeTrain([0, 1], grid), SpikeTrain([1, 2], grid)])

    def test_mixed_grids_rejected(self, grid):
        other = SimulationGrid(n_samples=100, dt=2e-12)
        with pytest.raises(HyperspaceError):
            HyperspaceBasis([SpikeTrain([0], grid), SpikeTrain([1], other)])

    def test_duplicate_labels_rejected(self, grid):
        with pytest.raises(HyperspaceError):
            HyperspaceBasis(
                [SpikeTrain([0], grid), SpikeTrain([1], grid)], labels=["A", "A"]
            )

    def test_label_count_mismatch(self, grid):
        with pytest.raises(HyperspaceError):
            HyperspaceBasis([SpikeTrain([0], grid)], labels=["A", "B"])

    def test_from_orthogonator(self, grid):
        source = SpikeTrain(np.arange(0, 100, 5), grid)
        output = DemuxOrthogonator.with_outputs(4).transform(source)
        basis = HyperspaceBasis.from_orthogonator(output)
        assert basis.size == 4
        assert basis.labels == ("W1", "W2", "W3", "W4")


class TestAccessors:
    def test_index_resolution(self, basis):
        assert basis.index_of(1) == 1
        assert basis.index_of("Y") == 1
        assert basis.label_of(2) == "Z"

    def test_unknown_label(self, basis):
        with pytest.raises(HyperspaceError):
            basis.index_of("Q")

    def test_index_out_of_range(self, basis):
        with pytest.raises(HyperspaceError):
            basis.index_of(3)

    def test_iteration(self, basis):
        labels = [label for label, _train in basis]
        assert labels == ["X", "Y", "Z"]

    def test_len(self, basis):
        assert len(basis) == 3


class TestEncodingAndClassification:
    def test_encode_returns_reference(self, basis):
        assert basis.encode("Y") == basis.trains[1]

    def test_encode_set_union(self, basis):
        wire = basis.encode_set(["X", "Z"])
        assert wire == basis.trains[0] | basis.trains[2]

    def test_encode_empty_set(self, basis):
        assert len(basis.encode_set([])) == 0

    def test_owner_of_slot(self, basis):
        assert basis.owner_of_slot(11) == 1
        assert basis.owner_of_slot(50) is None

    def test_classify_train(self, basis, grid):
        wire = SpikeTrain([0, 1, 50], grid)
        counts = basis.classify_train(wire)
        assert counts == {0: 1, 1: 1, -1: 1}

    def test_owners_of_out_of_range_slots(self, basis):
        # A wire from a longer record classifies gracefully: slots past
        # the basis grid are unowned, not an IndexError.
        longer = SimulationGrid(n_samples=200, dt=1e-12)
        wire = SpikeTrain([11, 150], longer)
        assert basis.owners_of(wire.indices).tolist() == [1, -1]
        assert basis.classify_train(wire) == {1: 1, -1: 1}

    def test_classify_pure_wire(self, basis):
        counts = basis.classify_train(basis.encode("Z"))
        assert counts == {2: 3}


class TestDiagnostics:
    def test_occupancy(self, basis):
        assert basis.occupancy() == pytest.approx(9 / 100)

    def test_rates(self, basis):
        rates = basis.rates()
        assert set(rates) == {"X", "Y", "Z"}
        assert all(r > 0 for r in rates.values())

    def test_min_spike_count(self, basis):
        assert basis.min_spike_count() == 3

    def test_describe(self, basis):
        assert "M=3" in basis.describe()
