"""Tests for repro.hyperspace.parity_codec: the error-detecting link."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.hyperspace.parity_codec import ParityError, ParityNeuroBitCodec
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=16384, dt=1e-12)


def make_codec(m: int = 4, block_digits: int = 4) -> ParityNeuroBitCodec:
    source = SpikeTrain(np.arange(0, GRID.n_samples, 7), GRID)
    output = DemuxOrthogonator.with_outputs(m).transform(source)
    return ParityNeuroBitCodec(output, block_digits=block_digits)


@pytest.fixture
def codec():
    return make_codec()


class TestFraming:
    def test_checksum_inserted_per_block(self, codec):
        framed = codec.frame([1, 2, 3, 0])
        assert framed == [1, 2, 3, 0, (1 + 2 + 3 + 0) % 4]

    def test_short_final_block(self, codec):
        framed = codec.frame([3, 3])
        assert framed == [3, 3, 2]

    def test_deframe_round_trip(self, codec):
        digits = [1, 2, 3, 0, 2, 1, 3]
        assert codec.deframe(codec.frame(digits)) == digits

    def test_deframe_detects_corruption(self, codec):
        framed = codec.frame([1, 2, 3, 0])
        framed[0] = (framed[0] + 1) % 4
        with pytest.raises(ParityError):
            codec.deframe(framed)

    def test_overhead(self):
        assert make_codec(block_digits=4).overhead == pytest.approx(0.2)
        assert make_codec(block_digits=1).overhead == pytest.approx(0.5)

    def test_block_digits_validation(self):
        with pytest.raises(LogicError):
            make_codec(block_digits=0)


class TestWire:
    def test_round_trip(self, codec):
        message = b"parity!"
        assert codec.decode(codec.encode(message)) == message

    def test_empty_message(self, codec):
        assert codec.decode(codec.encode(b"")) == b""

    def test_corrupted_digit_detected(self, codec):
        wire = codec.encode(b"AB")
        # Move the first spike to a different wire slot of ITS package:
        # package 0 slots are 0, 7, 14, 21; spike at one of them.
        first = int(wire.indices[0])
        package_slots = [0, 7, 14, 21]
        assert first in package_slots
        replacement = next(s for s in package_slots if s != first)
        corrupted = SpikeTrain(
            np.concatenate(([replacement], wire.indices[1:])), GRID
        )
        with pytest.raises(ParityError):
            codec.decode(corrupted)

    def test_lost_digit_still_detected_positionally(self, codec):
        wire = codec.encode(b"AB")
        damaged = SpikeTrain(wire.indices[1:], GRID)
        with pytest.raises(LogicError):
            codec.decode(damaged)

    @given(st.binary(min_size=0, max_size=16))
    @settings(max_examples=25)
    def test_round_trip_property(self, payload):
        codec = make_codec()
        assert codec.decode(codec.encode(payload)) == payload

    @given(st.binary(min_size=1, max_size=8), st.integers(min_value=0))
    @settings(max_examples=25)
    def test_any_single_digit_corruption_detected(self, payload, position_seed):
        """Flip any one transmitted digit: the decoder must notice."""
        codec = make_codec()
        wire = codec.encode(payload)
        n = len(wire)
        position = position_seed % n
        # Corrupt digit at `position`: move its spike to another slot of
        # the same package.
        slot = int(wire.indices[position])
        package = codec._codec.clock.package_of_slot(slot)
        slots = list(codec._codec.clock.packages[package].slots)
        replacement = next(s for s in slots if s != slot)
        indices = wire.indices.copy()
        indices[position] = replacement
        corrupted = SpikeTrain(indices, GRID)
        with pytest.raises((ParityError, LogicError)):
            codec.decode(corrupted)
            # If decode somehow succeeded, the payload must differ —
            # unreachable: parity always trips first for single flips.
