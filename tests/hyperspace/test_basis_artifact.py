"""Round-trip tests for basis shared-memory artifacts.

``to_artifact``/``from_artifact`` must reproduce the basis bit-for-bit
(trains, labels, owner vector) without re-running the orthogonator, and
the attached basis must drive identification identically to the source.
"""

import pickle

import numpy as np
import pytest

from repro.backend.shared import HAVE_SHARED_MEMORY, SharedArena
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.correlator import CoincidenceCorrelator
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.generators import poisson_train
from repro.units import SimulationGrid

pytestmark = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="multiprocessing.shared_memory missing"
)


@pytest.fixture(scope="module")
def basis():
    grid = SimulationGrid(n_samples=16384, dt=1e-10)
    rng = np.random.default_rng(42)
    source = poisson_train(rate_hz=1.0 / (28 * grid.dt), grid=grid, rng=rng)
    output = DemuxOrthogonator.with_outputs(8).transform(source)
    return HyperspaceBasis.from_orthogonator(output)


class TestBasisArtifactRoundTrip:
    def test_trains_labels_grid_identical(self, basis):
        with SharedArena() as arena:
            back = HyperspaceBasis.from_artifact(basis.to_artifact(arena))
            assert back.labels == basis.labels
            assert back.grid == basis.grid
            assert back.size == basis.size
            for original, attached in zip(basis.trains, back.trains):
                assert original == attached

    def test_owner_vector_bit_identical_and_zero_copy(self, basis):
        with SharedArena() as arena:
            back = HyperspaceBasis.from_artifact(basis.to_artifact(arena))
            assert np.array_equal(back.owner_vector, basis.owner_vector)
            # Attached, not rebuilt: no lazy build happened.
            assert back.cache_info()["owner_vector_builds"] == 0
            assert not back.owner_vector.flags.writeable

    def test_identification_identical_through_artifact(self, basis):
        with SharedArena() as arena:
            back = HyperspaceBasis.from_artifact(basis.to_artifact(arena))
            wires = basis.as_batch()
            original = CoincidenceCorrelator(basis).identify_batch(wires)
            attached = CoincidenceCorrelator(back).identify_batch(wires)
            assert original.elements.tolist() == attached.elements.tolist()
            assert (
                original.decision_slots.tolist()
                == attached.decision_slots.tolist()
            )

    def test_encode_paths_work_on_attached_basis(self, basis):
        with SharedArena() as arena:
            back = HyperspaceBasis.from_artifact(basis.to_artifact(arena))
            assert back.encode_set([0, 2]) == basis.encode_set([0, 2])
            assert back.encode_batch([[1], [0, 3]]) == basis.encode_batch(
                [[1], [0, 3]]
            )

    def test_artifact_is_metadata_only(self, basis):
        with SharedArena() as arena:
            artifact = basis.to_artifact(arena)
            payload = len(pickle.dumps(artifact))
            assert payload < 2048, f"artifact pickled to {payload} bytes"
            assert artifact.size == basis.size

    def test_artifact_snapshot_survives_source_mutation(self, basis):
        """The export captures the basis as of its current version."""
        grid = SimulationGrid(n_samples=4096, dt=1e-10)
        rng = np.random.default_rng(3)
        source = poisson_train(rate_hz=1.0 / (28 * grid.dt), grid=grid, rng=rng)
        output = DemuxOrthogonator.with_outputs(4).transform(source)
        mutable = HyperspaceBasis.from_orthogonator(output)
        with SharedArena() as arena:
            artifact = mutable.to_artifact(arena)
            snapshot = [t.indices.copy() for t in mutable.trains]
            mutable.invalidate_caches()  # source moves on
            back = HyperspaceBasis.from_artifact(artifact)
            for original, attached in zip(snapshot, back.trains):
                assert np.array_equal(original, attached.indices)
