"""Tests for repro.hyperspace.builders: end-to-end basis pipelines."""

import pytest

from repro.errors import ConfigurationError
from repro.hyperspace.builders import (
    build_demux_basis,
    build_intersection_basis,
    paper_default_synthesizer,
)
from repro.noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from repro.noise.synthesis import NoiseSynthesizer
from repro.units import paper_white_grid


@pytest.fixture
def synth():
    return NoiseSynthesizer(
        WhiteSpectrum(PAPER_WHITE_BAND), paper_white_grid(n_samples=8192)
    )


class TestDefaults:
    def test_paper_default_synthesizer(self):
        synth = paper_default_synthesizer()
        assert synth.grid.n_samples == 65536
        assert synth.spectrum.band == PAPER_WHITE_BAND


class TestDemuxBasis:
    def test_size_and_orthogonality(self, synth):
        basis = build_demux_basis(5, synthesizer=synth, rng=0)
        assert basis.size == 5
        # Orthogonality enforced in the constructor; re-check rates.
        counts = [len(t) for t in basis.trains]
        assert max(counts) - min(counts) <= 1

    def test_deterministic_by_seed(self, synth):
        a = build_demux_basis(3, synthesizer=synth, rng=1)
        b = build_demux_basis(3, synthesizer=synth, rng=1)
        assert a.trains == b.trains

    def test_invalid_size(self, synth):
        with pytest.raises(ConfigurationError):
            build_demux_basis(0, synthesizer=synth)


class TestIntersectionBasis:
    def test_size(self, synth):
        basis = build_intersection_basis(3, synthesizer=synth, rng=0)
        assert basis.size == 7

    def test_uncorrelated_imbalanced(self, synth):
        basis = build_intersection_basis(
            2, synthesizer=synth, common_amplitude=0.0, rng=0
        )
        counts = sorted(len(t) for t in basis.trains)
        assert counts[-1] > 5 * counts[0]

    def test_correlated_homogenized(self, synth):
        basis = build_intersection_basis(
            2, synthesizer=synth, common_amplitude=0.945, rng=0
        )
        counts = sorted(len(t) for t in basis.trains)
        assert counts[-1] < 1.5 * counts[0]

    def test_custom_names_in_labels(self, synth):
        basis = build_intersection_basis(
            2, synthesizer=synth, rng=0, input_names=("P", "Q")
        )
        assert any("P" in label for label in basis.labels)

    def test_invalid_amplitude(self, synth):
        with pytest.raises(ConfigurationError):
            build_intersection_basis(2, synthesizer=synth, common_amplitude=1.0)

    def test_invalid_size(self, synth):
        with pytest.raises(ConfigurationError):
            build_intersection_basis(0, synthesizer=synth)
