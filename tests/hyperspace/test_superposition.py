"""Tests for repro.hyperspace.superposition: neuro-bits on one wire."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HyperspaceError
from repro.hyperspace.basis import HyperspaceBasis
from repro.hyperspace.superposition import (
    Superposition,
    decode_superposition,
    first_detection_slots,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=64, dt=1e-12)


@pytest.fixture
def basis():
    return HyperspaceBasis(
        [
            SpikeTrain(range(0, 64, 8), GRID),       # 0, 8, ...
            SpikeTrain(range(1, 64, 8), GRID),       # 1, 9, ...
            SpikeTrain(range(2, 64, 8), GRID),
            SpikeTrain(range(3, 64, 8), GRID),
        ]
    )


class TestSuperpositionValue:
    def test_of_and_labels(self, basis):
        sup = Superposition.of(basis, ["V1", 2])
        assert sup.members == frozenset({0, 2})
        assert sup.labels(basis) == ("V1", "V3")

    def test_empty_and_full(self, basis):
        assert len(Superposition.empty()) == 0
        assert Superposition.full(basis).members == frozenset({0, 1, 2, 3})

    def test_set_operators(self):
        a = Superposition(frozenset({0, 1}))
        b = Superposition(frozenset({1, 2}))
        assert (a | b).members == frozenset({0, 1, 2})
        assert (a & b).members == frozenset({1})
        assert (a - b).members == frozenset({0})
        assert (a ^ b).members == frozenset({0, 2})

    def test_complement(self, basis):
        sup = Superposition.of(basis, [0, 1])
        assert sup.complement(basis).members == frozenset({2, 3})

    def test_contains(self):
        assert 1 in Superposition(frozenset({1}))
        assert 2 not in Superposition(frozenset({1}))


class TestCodec:
    def test_encode_decode_round_trip(self, basis):
        sup = Superposition.of(basis, [0, 2, 3])
        wire = sup.encode(basis)
        assert decode_superposition(basis, wire) == sup

    def test_empty_round_trip(self, basis):
        wire = Superposition.empty().encode(basis)
        assert len(wire) == 0
        assert decode_superposition(basis, wire) == Superposition.empty()

    def test_strict_rejects_foreign_spikes(self, basis):
        wire = basis.encode_set([0]) | SpikeTrain([7], GRID)  # slot 7 unowned
        with pytest.raises(HyperspaceError):
            decode_superposition(basis, wire, strict=True)

    def test_lenient_ignores_foreign_spikes(self, basis):
        wire = basis.encode_set([0]) | SpikeTrain([7], GRID)
        sup = decode_superposition(basis, wire, strict=False)
        assert sup.members == frozenset({0})

    @given(st.sets(st.integers(min_value=0, max_value=3)))
    def test_round_trip_property(self, members):
        basis = HyperspaceBasis(
            [SpikeTrain(range(k, 64, 8), GRID) for k in range(4)]
        )
        sup = Superposition(frozenset(members))
        assert decode_superposition(basis, sup.encode(basis)) == sup


class TestFirstDetection:
    def test_detection_order_follows_slots(self, basis):
        wire = basis.encode_set([1, 3])
        earliest = first_detection_slots(basis, wire)
        assert earliest == {1: 1, 3: 3}

    def test_absent_members_missing(self, basis):
        earliest = first_detection_slots(basis, basis.encode_set([2]))
        assert set(earliest) == {2}
