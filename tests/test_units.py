"""Tests for repro.units: grids, conversions, formatting."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    GIGAHERTZ,
    PAPER_OVERSAMPLING,
    PAPER_RECORD_LENGTH,
    PICOSECOND,
    SimulationGrid,
    format_frequency,
    format_time,
    paper_pink_grid,
    paper_white_grid,
)


class TestSimulationGrid:
    def test_basic_properties(self):
        grid = SimulationGrid(n_samples=1000, dt=1e-12)
        assert grid.sample_rate == pytest.approx(1e12)
        assert grid.nyquist == pytest.approx(5e11)
        assert grid.duration == pytest.approx(1e-9)
        assert grid.frequency_resolution == pytest.approx(1e9)

    def test_time_index_round_trip(self):
        grid = SimulationGrid(n_samples=100, dt=2e-12)
        assert grid.time_of(10) == pytest.approx(20e-12)
        assert grid.index_of(20e-12) == 10

    def test_bin_of(self):
        grid = SimulationGrid(n_samples=1000, dt=1e-9)
        assert grid.bin_of(grid.frequency_resolution) == 1
        assert grid.bin_of(0.0) == 0

    def test_with_samples_keeps_dt(self):
        grid = SimulationGrid(n_samples=100, dt=1e-12)
        longer = grid.with_samples(500)
        assert longer.n_samples == 500
        assert longer.dt == grid.dt

    def test_invalid_n_samples(self):
        with pytest.raises(ConfigurationError):
            SimulationGrid(n_samples=0, dt=1e-12)
        with pytest.raises(ConfigurationError):
            SimulationGrid(n_samples=-5, dt=1e-12)

    def test_invalid_dt(self):
        with pytest.raises(ConfigurationError):
            SimulationGrid(n_samples=10, dt=0.0)
        with pytest.raises(ConfigurationError):
            SimulationGrid(n_samples=10, dt=math.inf)

    def test_describe_mentions_size(self):
        grid = SimulationGrid(n_samples=64, dt=1e-12)
        assert "64" in grid.describe()

    def test_frozen(self):
        grid = SimulationGrid(n_samples=10, dt=1e-12)
        with pytest.raises(AttributeError):
            grid.n_samples = 20


class TestPaperGrids:
    def test_white_grid_defaults(self):
        grid = paper_white_grid()
        assert grid.n_samples == PAPER_RECORD_LENGTH
        assert grid.dt == pytest.approx(1.0 / (PAPER_OVERSAMPLING * 10 * GIGAHERTZ))
        # dt = 3.125 ps, so the paper's 28-sample source ISI is ~87.5 ps.
        assert grid.dt == pytest.approx(3.125 * PICOSECOND)

    def test_pink_grid_matches_white(self):
        assert paper_pink_grid() == paper_white_grid()

    def test_oversampling_floor(self):
        with pytest.raises(ConfigurationError):
            paper_white_grid(oversampling=2)

    def test_custom_length(self):
        grid = paper_white_grid(n_samples=1024)
        assert grid.n_samples == 1024


class TestFormatting:
    def test_format_time_picoseconds(self):
        assert format_time(90e-12) == "90 ps"

    def test_format_time_nanoseconds(self):
        assert format_time(2.24e-9) == "2.24 ns"

    def test_format_time_zero(self):
        assert format_time(0) == "0 s"

    def test_format_frequency_ghz(self):
        assert format_frequency(10e9) == "10 GHz"

    def test_format_frequency_mhz(self):
        assert format_frequency(5e6) == "5 MHz"

    def test_format_frequency_zero(self):
        assert format_frequency(0) == "0 Hz"

    def test_format_time_sub_picosecond(self):
        text = format_time(0.5e-12)
        assert "ps" in text
