"""Tests for repro.orthogonator.intersection: the parallel orthogonator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SpikeTrainError
from repro.orthogonator.intersection import (
    IntersectionOrthogonator,
    default_input_names,
    product_label,
    subset_masks,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid


@pytest.fixture
def grid():
    return SimulationGrid(n_samples=100, dt=1e-12)


class TestLabels:
    def test_default_names(self):
        assert default_input_names(3) == ("A", "B", "C")

    def test_names_past_alphabet(self):
        names = default_input_names(28)
        assert len(set(names)) == 28

    def test_product_label_two_inputs(self):
        names = ("A", "B")
        assert product_label(0b11, names) == "A·B"
        assert product_label(0b01, names).startswith("A·B")  # A·B̄
        assert "·B" in product_label(0b10, names)  # Ā·B

    def test_product_label_out_of_range(self):
        with pytest.raises(ConfigurationError):
            product_label(0, ("A",))
        with pytest.raises(ConfigurationError):
            product_label(4, ("A", "B"))

    def test_subset_masks_full_first(self):
        masks = subset_masks(2)
        assert masks[0] == 0b11
        assert sorted(masks) == [1, 2, 3]

    def test_subset_masks_count(self):
        assert len(subset_masks(4)) == 15


class TestConstruction:
    def test_output_count(self):
        assert IntersectionOrthogonator(1).n_outputs == 1
        assert IntersectionOrthogonator(2).n_outputs == 3
        assert IntersectionOrthogonator(4).n_outputs == 15

    def test_too_many_inputs(self):
        with pytest.raises(ConfigurationError):
            IntersectionOrthogonator(21)

    def test_name_validation(self):
        with pytest.raises(ConfigurationError):
            IntersectionOrthogonator(2, input_names=("A",))
        with pytest.raises(ConfigurationError):
            IntersectionOrthogonator(2, input_names=("A", "A"))

    def test_mask_for_label_round_trip(self):
        device = IntersectionOrthogonator(3)
        for label, mask in zip(device.labels, subset_masks(3)):
            assert device.mask_for_label(label) == mask

    def test_mask_for_unknown_label(self):
        with pytest.raises(ConfigurationError):
            IntersectionOrthogonator(2).mask_for_label("X·Y")


class TestTransform:
    def test_two_input_products(self, grid):
        a = SpikeTrain([1, 2, 3, 10], grid)
        b = SpikeTrain([2, 3, 4, 20], grid)
        device = IntersectionOrthogonator(2)
        output = device.transform(a, b)
        both = device.coincidence_product(output)
        assert both.indices.tolist() == [2, 3]
        assert output[device.labels[1]].indices.tolist() == [1, 10]  # A only
        assert output[device.labels[2]].indices.tolist() == [4, 20]  # B only

    def test_outputs_partition_union(self, grid):
        rng = np.random.default_rng(0)
        a = SpikeTrain(rng.choice(100, 30, replace=False), grid)
        b = SpikeTrain(rng.choice(100, 30, replace=False), grid)
        output = IntersectionOrthogonator(2).transform(a, b)
        merged = output.trains[0]
        for t in output.trains[1:]:
            assert merged.is_orthogonal_to(t)
            merged = merged | t
        assert merged == (a | b)

    def test_three_inputs_exact_patterns(self, grid):
        a = SpikeTrain([1, 4, 5, 7], grid)
        b = SpikeTrain([2, 4, 6, 7], grid)
        c = SpikeTrain([3, 5, 6, 7], grid)
        device = IntersectionOrthogonator(3)
        output = device.transform(a, b, c)
        by_label = output.as_dict()
        # Slot 7 is in all three; slot 4 in A,B; slot 1 in A only; etc.
        full = product_label(0b111, device.input_names)
        assert by_label[full].indices.tolist() == [7]
        ab_only = product_label(0b011, device.input_names)
        assert by_label[ab_only].indices.tolist() == [4]
        a_only = product_label(0b001, device.input_names)
        assert by_label[a_only].indices.tolist() == [1]

    def test_wrong_input_count(self, grid):
        with pytest.raises(ConfigurationError):
            IntersectionOrthogonator(2).transform(SpikeTrain([1], grid))

    def test_mixed_grids_rejected(self, grid):
        other = SimulationGrid(n_samples=100, dt=2e-12)
        with pytest.raises(SpikeTrainError):
            IntersectionOrthogonator(2).transform(
                SpikeTrain([1], grid), SpikeTrain([1], other)
            )

    def test_empty_inputs(self, grid):
        output = IntersectionOrthogonator(2).transform(
            SpikeTrain.empty(grid), SpikeTrain.empty(grid)
        )
        assert all(len(t) == 0 for t in output.trains)

    def test_total_spikes_equals_union(self, grid):
        a = SpikeTrain([1, 2, 3], grid)
        b = SpikeTrain([3, 4], grid)
        output = IntersectionOrthogonator(2).transform(a, b)
        assert output.total_spikes() == len(a | b)
