"""Tests for repro.orthogonator.demux: the serial orthogonator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SpikeTrainError
from repro.orthogonator.demux import (
    DemuxOrthogonator,
    spike_packages,
    wire_label,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid


@pytest.fixture
def grid():
    return SimulationGrid(n_samples=1000, dt=1e-12)


@pytest.fixture
def train(grid):
    return SpikeTrain(np.arange(0, 1000, 7), grid)  # 143 spikes


class TestRouting:
    def test_paper_rule(self):
        device = DemuxOrthogonator.with_outputs(3)
        # p = 1 + (r-1) mod 3
        assert [device.route(r) for r in range(1, 8)] == [1, 2, 3, 1, 2, 3, 1]

    def test_one_based_ordinals(self):
        with pytest.raises(ConfigurationError):
            DemuxOrthogonator.with_outputs(3).route(0)

    def test_order_to_outputs(self):
        assert DemuxOrthogonator(1).n_outputs == 1
        assert DemuxOrthogonator(2).n_outputs == 3
        assert DemuxOrthogonator(3).n_outputs == 7
        assert DemuxOrthogonator(4).n_outputs == 15

    def test_with_outputs_order_none(self):
        device = DemuxOrthogonator.with_outputs(5)
        assert device.order is None
        assert device.n_outputs == 5

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            DemuxOrthogonator(0)
        with pytest.raises(ConfigurationError):
            DemuxOrthogonator.with_outputs(0)


class TestTransform:
    def test_outputs_partition_input(self, train):
        output = DemuxOrthogonator(2).transform(train)
        merged = output.trains[0]
        for t in output.trains[1:]:
            merged = merged | t
        assert merged == train

    def test_outputs_orthogonal(self, train):
        output = DemuxOrthogonator(2).transform(train)
        for i in range(len(output)):
            for j in range(i + 1, len(output)):
                assert output.trains[i].is_orthogonal_to(output.trains[j])

    def test_wire_assignment_matches_route(self, train):
        device = DemuxOrthogonator.with_outputs(3)
        output = device.transform(train)
        for r, spike in enumerate(train.indices.tolist(), start=1):
            wire = device.route(r)
            assert spike in output[wire_label(wire)]

    def test_equal_rates(self, train):
        output = DemuxOrthogonator.with_outputs(3).transform(train)
        counts = [len(t) for t in output.trains]
        assert max(counts) - min(counts) <= 1

    def test_labels(self, train):
        output = DemuxOrthogonator.with_outputs(3).transform(train)
        assert output.labels == ("W1", "W2", "W3")

    def test_single_input_required(self, train):
        with pytest.raises(ConfigurationError):
            DemuxOrthogonator(2).transform(train, train)

    def test_empty_input(self, grid):
        output = DemuxOrthogonator(2).transform(SpikeTrain.empty(grid))
        assert all(len(t) == 0 for t in output.trains)

    def test_statistics_accessor(self, train):
        stats = DemuxOrthogonator(2).transform(train).statistics()
        assert set(stats) == {"W1", "W2", "W3"}
        # Output ISI ~ 3x source ISI for cyclic dealing of a periodic train.
        assert stats["W1"].mean_isi_samples == pytest.approx(21.0)


class TestSpikePackages:
    def test_package_structure(self, train):
        output = DemuxOrthogonator.with_outputs(3).transform(train)
        packages = spike_packages(output)
        assert len(packages) == len(train) // 3
        first = packages[0]
        assert first.ordinal == 0
        assert first.slots == (0, 7, 14)
        assert first.span == 14

    def test_packages_in_order(self, train):
        output = DemuxOrthogonator.with_outputs(3).transform(train)
        packages = spike_packages(output)
        for earlier, later in zip(packages, packages[1:]):
            assert earlier.end < later.start

    def test_incomplete_packages_excluded(self, grid):
        train = SpikeTrain([0, 10, 20, 30, 40], grid)  # 5 spikes, M=3
        output = DemuxOrthogonator.with_outputs(3).transform(train)
        assert len(spike_packages(output)) == 1
        assert len(spike_packages(output, require_complete=False)) == 2

    def test_foreign_trains_rejected(self, grid):
        from repro.orthogonator.base import OrthogonatorOutput

        # Two trains that are NOT a demux partition: packages interleave.
        bogus = OrthogonatorOutput(
            trains=(SpikeTrain([10, 20], grid), SpikeTrain([5, 15], grid)),
            labels=("W1", "W2"),
        )
        with pytest.raises(SpikeTrainError):
            spike_packages(bogus)
