"""Property-based tests for the orthogonality invariants.

Orthogonality is the load-bearing property of the whole logic scheme:
if two basis trains ever share a slot, single-coincidence identification
breaks.  Both orthogonator families must therefore produce pairwise
disjoint outputs for *arbitrary* inputs, and the outputs must exactly
cover the inputs (nothing lost, nothing invented).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OrthogonalityError
from repro.orthogonator.base import OrthogonatorOutput, verify_orthogonality
from repro.orthogonator.demux import DemuxOrthogonator, spike_packages
from repro.orthogonator.intersection import IntersectionOrthogonator
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=512, dt=1e-12)

indices = st.lists(
    st.integers(min_value=0, max_value=GRID.n_samples - 1), max_size=128
)


def train(xs) -> SpikeTrain:
    return SpikeTrain(np.asarray(xs, dtype=np.int64), GRID)


@given(indices, st.integers(min_value=1, max_value=8))
def test_demux_outputs_partition_input(xs, m):
    source = train(xs)
    output = DemuxOrthogonator.with_outputs(m).transform(source)
    # Pairwise disjoint.
    verify_orthogonality(output.trains, output.labels)
    # Union reproduces the input exactly.
    merged = SpikeTrain.empty(GRID)
    for t in output.trains:
        merged = merged | t
    assert merged == source
    # Rates balanced to within one spike.
    counts = [len(t) for t in output.trains]
    assert max(counts) - min(counts) <= 1


@given(indices, st.integers(min_value=2, max_value=6))
def test_demux_packages_strictly_ordered(xs, m):
    source = train(xs)
    output = DemuxOrthogonator.with_outputs(m).transform(source)
    for package in spike_packages(output):
        assert list(package.slots) == sorted(set(package.slots))


@given(indices, indices)
def test_intersection_two_inputs_invariants(xs, ys):
    a, b = train(xs), train(ys)
    output = IntersectionOrthogonator(2).transform(a, b)
    verify_orthogonality(output.trains, output.labels)
    merged = SpikeTrain.empty(GRID)
    for t in output.trains:
        merged = merged | t
    assert merged == (a | b)


@given(indices, indices, indices)
@settings(max_examples=50)
def test_intersection_three_inputs_invariants(xs, ys, zs):
    inputs = (train(xs), train(ys), train(zs))
    output = IntersectionOrthogonator(3).transform(*inputs)
    verify_orthogonality(output.trains, output.labels)
    merged = SpikeTrain.empty(GRID)
    for t in output.trains:
        merged = merged | t
    union = inputs[0] | inputs[1] | inputs[2]
    assert merged == union


@given(indices, indices)
def test_intersection_products_subset_semantics(xs, ys):
    """Every output spike appears in exactly the asserted inputs."""
    a, b = train(xs), train(ys)
    device = IntersectionOrthogonator(2)
    output = device.transform(a, b)
    both = device.coincidence_product(output)
    assert both.is_subset_of(a) and both.is_subset_of(b)
    a_only = output[device.labels[1]]
    assert a_only.is_subset_of(a) and a_only.is_orthogonal_to(b)
    b_only = output[device.labels[2]]
    assert b_only.is_subset_of(b) and b_only.is_orthogonal_to(a)


class TestOrthogonatorOutputValidation:
    def test_overlapping_outputs_rejected(self):
        with pytest.raises(OrthogonalityError):
            OrthogonatorOutput(
                trains=(train([1, 2]), train([2, 3])),
                labels=("X", "Y"),
            )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(OrthogonalityError):
            OrthogonatorOutput(
                trains=(train([1]), train([2])),
                labels=("X", "X"),
            )

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(OrthogonalityError):
            OrthogonatorOutput(trains=(train([1]),), labels=("X", "Y"))

    def test_getitem_by_label(self):
        output = OrthogonatorOutput(
            trains=(train([1]), train([2])), labels=("X", "Y")
        )
        assert output["Y"].indices.tolist() == [2]
        with pytest.raises(KeyError):
            output["Z"]

    def test_verify_false_skips_check(self):
        # Deliberately overlapping, but verification disabled: caller's
        # responsibility (used by provably-disjoint constructions).
        output = OrthogonatorOutput(
            trains=(train([1]), train([1])),
            labels=("X", "Y"),
            verify=False,
        )
        assert len(output) == 2
