"""Tests for repro.orthogonator.homogenize: rate homogenization."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from repro.noise.synthesis import NoiseSynthesizer
from repro.orthogonator.base import OrthogonatorOutput
from repro.orthogonator.homogenize import (
    Homogenizer,
    homogenization_spread,
    search_common_amplitude,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid, paper_white_grid


@pytest.fixture
def synth():
    return NoiseSynthesizer(
        WhiteSpectrum(PAPER_WHITE_BAND), paper_white_grid(n_samples=8192)
    )


class TestSpreadMetric:
    def test_balanced_output(self):
        grid = SimulationGrid(n_samples=10, dt=1e-12)
        output = OrthogonatorOutput(
            trains=(SpikeTrain([0, 2], grid), SpikeTrain([1, 3], grid)),
            labels=("X", "Y"),
        )
        assert homogenization_spread(output) == pytest.approx(1.0)

    def test_silent_output_infinite(self):
        grid = SimulationGrid(n_samples=10, dt=1e-12)
        output = OrthogonatorOutput(
            trains=(SpikeTrain([0], grid), SpikeTrain.empty(grid)),
            labels=("X", "Y"),
        )
        assert math.isinf(homogenization_spread(output))


class TestHomogenizer:
    def test_uncorrelated_severely_imbalanced(self, synth):
        result = Homogenizer(synth).run(common_amplitude=0.0, rng=0)
        assert result.spread > 10.0

    def test_paper_amplitude_homogenizes(self, synth):
        result = Homogenizer(synth).run(common_amplitude=0.945, rng=0)
        assert result.spread < 1.5
        assert result.correlation > 0.99

    def test_private_amplitude_linear_complement(self, synth):
        result = Homogenizer(synth).run(common_amplitude=0.945, rng=0)
        assert result.private_amplitude == pytest.approx(0.055)

    def test_monotone_improvement(self, synth):
        homogenizer = Homogenizer(synth)
        spread_low = homogenizer.run(0.5, rng=1).spread
        spread_high = homogenizer.run(0.945, rng=1).spread
        assert spread_high < spread_low

    def test_invalid_amplitude(self, synth):
        with pytest.raises(ConfigurationError):
            Homogenizer(synth).run(1.5)

    def test_needs_two_inputs(self, synth):
        with pytest.raises(ConfigurationError):
            Homogenizer(synth, n_inputs=1)

    def test_rates_accessor(self, synth):
        result = Homogenizer(synth).run(0.945, rng=2)
        rates = result.rates()
        assert len(rates) == 3
        assert all(rate > 0 for rate in rates.values())


class TestSearch:
    def test_search_lands_near_paper_value(self, synth):
        best = search_common_amplitude(
            Homogenizer(synth), seed=3, n_grid=8, n_refine=2
        )
        # The optimum for the white band sits in the strongly-correlated
        # region the paper chose (0.945); accept the neighbourhood.
        assert 0.85 <= best.common_amplitude <= 0.99
        assert best.spread < 1.6

    def test_invalid_interval(self, synth):
        with pytest.raises(ConfigurationError):
            search_common_amplitude(Homogenizer(synth), lo=0.9, hi=0.5)

    def test_invalid_grid(self, synth):
        with pytest.raises(ConfigurationError):
            search_common_amplitude(Homogenizer(synth), n_grid=2)
