"""Targeted edge-case tests across modules (branches the main suites skip)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=64, dt=1e-12)


class TestEngineEdges:
    def test_schedule_in_past_rejected_mid_run(self):
        from repro.simulator.engine import Component, Engine

        class BadComponent(Component):
            def on_spike(self, port, slot):
                # Scheduling before `now` must be rejected while running.
                self.engine.schedule(self, "echo", slot - 10)

        engine = Engine(GRID)
        bad = BadComponent("bad")
        engine.add(bad)
        engine.schedule(bad, "in", 20)
        with pytest.raises(SimulationError):
            engine.run()

    def test_emit_without_connections_is_noop(self):
        from repro.simulator.components import SpikeSource
        from repro.simulator.engine import Engine

        engine = Engine(GRID)
        source = SpikeSource("s", SpikeTrain([1, 2], GRID))
        engine.add(source)
        assert engine.run() == 2  # only the source's own fire events


class TestOrthogonatorEdges:
    def test_order_one_intersection_is_identity(self):
        from repro.orthogonator.intersection import IntersectionOrthogonator

        train = SpikeTrain([1, 5, 9], GRID)
        output = IntersectionOrthogonator(1).transform(train)
        assert len(output) == 1
        assert output.trains[0] == train

    def test_demux_single_wire_is_identity(self):
        from repro.orthogonator.demux import DemuxOrthogonator

        train = SpikeTrain([1, 5, 9], GRID)
        output = DemuxOrthogonator.with_outputs(1).transform(train)
        assert output.trains[0] == train

    def test_package_span_zero_for_single_wire(self):
        from repro.orthogonator.demux import DemuxOrthogonator, spike_packages

        train = SpikeTrain([3, 9], GRID)
        output = DemuxOrthogonator.with_outputs(1).transform(train)
        packages = spike_packages(output)
        assert [p.span for p in packages] == [0, 0]
        assert [p.start for p in packages] == [3, 9]


class TestDetectorEdges:
    def test_hysteresis_never_armed(self):
        from repro.spikes.zero_crossing import HysteresisDetector

        record = np.full(GRID.n_samples, 0.1)  # never exceeds ±0.5
        train = HysteresisDetector(0.5).detect(record, GRID)
        assert len(train) == 0

    def test_hysteresis_armed_but_never_flips(self):
        from repro.spikes.zero_crossing import HysteresisDetector

        record = np.full(GRID.n_samples, 1.0)  # arms high, stays high
        train = HysteresisDetector(0.5).detect(record, GRID)
        assert len(train) == 0

    def test_all_crossing_on_alternating_zeros(self):
        from repro.spikes.zero_crossing import AllCrossingDetector

        record = np.zeros(GRID.n_samples)
        record[::2] = 1.0  # 1,0,1,0,... zeros glued to previous sign
        train = AllCrossingDetector().detect(record, GRID)
        assert len(train) == 0


class TestStatisticsEdges:
    def test_empty_train_statistics(self):
        from repro.spikes.statistics import isi_statistics

        stats = isi_statistics(SpikeTrain.empty(GRID))
        assert stats.n_spikes == 0
        assert math.isnan(stats.mean_isi_samples)
        assert math.isnan(stats.coefficient_of_variation)

    def test_fano_empty_windows_nan(self):
        from repro.spikes.statistics import fano_factor

        assert math.isnan(fano_factor(SpikeTrain.empty(GRID), 16))


class TestCodecEdges:
    def test_radix2_codec_eight_digits_per_byte(self):
        from repro.hyperspace.codec import NeuroBitCodec
        from repro.orthogonator.demux import DemuxOrthogonator

        big = SimulationGrid(n_samples=8192, dt=1e-12)
        source = SpikeTrain(np.arange(0, 8192, 4), big)
        codec = NeuroBitCodec(DemuxOrthogonator.with_outputs(2).transform(source))
        assert codec.digits_per_byte == 8
        assert codec.decode(codec.encode(b"\x00\xff")) == b"\x00\xff"


class TestWelchEdges:
    def test_segment_longer_than_record_clamped(self):
        from repro.noise.psd import welch_psd

        grid = SimulationGrid(n_samples=512, dt=1e-12)
        record = np.random.default_rng(0).normal(size=512)
        estimate = welch_psd(record, grid, segment_length=4096)
        assert estimate.frequencies.size == 512 // 2 + 1


class TestGateEdges:
    def test_gate_table_immutable_copy(self):
        from repro.hyperspace.basis import HyperspaceBasis
        from repro.logic.gates import gate_from_function

        basis = HyperspaceBasis(
            [SpikeTrain(range(k, 64, 2), GRID) for k in range(2)]
        )
        table = {(0,): 1, (1,): 0}
        from repro.logic.gates import TruthTableGate

        gate = TruthTableGate("inv", [basis], basis, table)
        table[(0,)] = 0  # mutate the caller's dict
        assert gate.evaluate(0) == 1  # the gate kept its own copy


class TestUnitsEdges:
    def test_negative_time_formatting(self):
        from repro.units import format_time

        assert format_time(-90e-12).startswith("-90")

    def test_grid_equality_semantics(self):
        assert SimulationGrid(10, 1e-12) == SimulationGrid(10, 1e-12)
        assert SimulationGrid(10, 1e-12) != SimulationGrid(11, 1e-12)


class TestSuperpositionEdges:
    def test_full_wire_occupies_all_reference_slots(self):
        from repro.hyperspace.basis import HyperspaceBasis
        from repro.hyperspace.superposition import Superposition

        basis = HyperspaceBasis(
            [SpikeTrain(range(k, 64, 4), GRID) for k in range(4)]
        )
        wire = Superposition.full(basis).encode(basis)
        assert len(wire) == sum(len(t) for t in basis.trains)

    def test_complement_of_full_is_empty(self):
        from repro.hyperspace.basis import HyperspaceBasis
        from repro.hyperspace.superposition import Superposition

        basis = HyperspaceBasis(
            [SpikeTrain(range(k, 64, 4), GRID) for k in range(4)]
        )
        assert Superposition.full(basis).complement(basis) == Superposition.empty()
