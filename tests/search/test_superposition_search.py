"""Tests for repro.search.superposition_search."""

import pytest

from repro.errors import HyperspaceError, IdentificationError
from repro.hyperspace.basis import HyperspaceBasis
from repro.search.superposition_search import SuperpositionDatabase
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=512, dt=1e-12)


@pytest.fixture
def basis():
    return HyperspaceBasis(
        [SpikeTrain(range(k, 512, 8), GRID) for k in range(8)]
    )


@pytest.fixture
def database(basis):
    db = SuperpositionDatabase(basis)
    db.load([1, 3, 5])
    return db


class TestLoading:
    def test_capacity(self, basis):
        assert SuperpositionDatabase(basis).capacity == 8

    def test_wire_is_union(self, database, basis):
        expected = basis.encode_set([1, 3, 5])
        assert database.wire == expected

    def test_query_before_load_raises(self, basis):
        with pytest.raises(HyperspaceError):
            SuperpositionDatabase(basis).query(0)

    def test_members_ground_truth(self, database):
        assert database.members == frozenset({1, 3, 5})

    def test_load_by_label(self, basis):
        db = SuperpositionDatabase(basis)
        db.load(["V2"])
        assert db.members == frozenset({1})


class TestQueries:
    def test_present_state_single_check(self, database):
        result = database.query(3)
        assert result.present
        assert result.coincidences_checked == 1
        assert result.decision_slot == 3  # element 3's first spike

    def test_absent_state_certified_at_last_reference_spike(self, database):
        result = database.query(2)
        assert not result.present
        # Element 2 fires at 2, 10, ..., 506: absence certain only after
        # every coincidence opportunity passed.
        assert result.decision_slot == 506
        assert result.coincidences_checked == 64

    def test_query_cost_independent_of_member_count(self, basis):
        small = SuperpositionDatabase(basis)
        small.load([0])
        large = SuperpositionDatabase(basis)
        large.load(list(range(8)))
        assert small.query(0).coincidences_checked == 1
        assert large.query(0).coincidences_checked == 1

    def test_start_slot_offsets_decision(self, database):
        result = database.query(3, start_slot=100)
        assert result.present
        assert result.decision_slot == 107  # 107 ≡ 3 mod 8

    def test_start_past_all_reference_spikes_raises(self, database):
        with pytest.raises(IdentificationError):
            database.query(3, start_slot=512)


class TestReadout:
    def test_enumerate_members(self, database):
        members = database.enumerate_members()
        assert set(members) == {1, 3, 5}
        assert members[1] == 1

    def test_verify(self, database):
        assert database.verify()

    def test_all_states_round_trip(self, basis):
        import itertools

        db = SuperpositionDatabase(basis)
        for r in (0, 1, 4, 8):
            for members in itertools.islice(
                itertools.combinations(range(8), r), 8
            ):
                db.load(members)
                assert db.verify()
                for state in range(8):
                    assert db.query(state).present == (state in members)


class TestOnNoiseBasis:
    def test_intersection_hyperspace(self):
        from repro.hyperspace.builders import build_intersection_basis

        basis = build_intersection_basis(4, common_amplitude=0.945, rng=3)
        db = SuperpositionDatabase(basis)
        db.load([0, 7, 14])
        assert db.verify()
        hit = db.query(7)
        assert hit.present and hit.coincidences_checked == 1
        miss = db.query(3)
        assert not miss.present
