"""Tests for repro.search.verification: equality/subset on wires."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HyperspaceError
from repro.hyperspace.basis import HyperspaceBasis
from repro.hyperspace.superposition import Superposition
from repro.search.verification import verify_equality, verify_subset
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=256, dt=1e-12)


def make_basis(m: int = 6) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 256, m), GRID) for k in range(m)])


@pytest.fixture
def basis():
    return make_basis()


members = st.sets(st.integers(min_value=0, max_value=5))


class TestEquality:
    def test_equal_sets(self, basis):
        a = basis.encode_set([1, 4])
        b = basis.encode_set([4, 1])
        result = verify_equality(basis, a, b)
        assert result.verdict
        assert result.witness_element is None

    def test_unequal_sets_witnessed(self, basis):
        a = basis.encode_set([1, 4])
        b = basis.encode_set([1])
        result = verify_equality(basis, a, b)
        assert not result.verdict
        assert result.witness_element == 4
        assert result.decision_slot == 4  # element 4's first spike

    def test_negative_decides_fast_positive_waits(self, basis):
        equal = verify_equality(
            basis, basis.encode_set([0, 1]), basis.encode_set([0, 1])
        )
        unequal = verify_equality(
            basis, basis.encode_set([0, 1]), basis.encode_set([0, 2])
        )
        assert unequal.decision_slot < equal.decision_slot

    def test_empty_sets_equal(self, basis):
        result = verify_equality(
            basis, SpikeTrain.empty(GRID), SpikeTrain.empty(GRID)
        )
        assert result.verdict

    def test_foreign_spikes_rejected(self, basis):
        sparse = HyperspaceBasis(
            [SpikeTrain([0, 12], GRID), SpikeTrain([1, 13], GRID)]
        )
        dirty = sparse.encode_set([0]) | SpikeTrain([100], GRID)
        with pytest.raises(HyperspaceError):
            verify_equality(sparse, dirty, sparse.encode_set([0]))

    @given(members, members)
    @settings(max_examples=40)
    def test_matches_set_semantics(self, xs, ys):
        basis = make_basis()
        a = Superposition(frozenset(xs)).encode(basis)
        b = Superposition(frozenset(ys)).encode(basis)
        assert verify_equality(basis, a, b).verdict == (set(xs) == set(ys))


class TestSubset:
    def test_subset_holds(self, basis):
        a = basis.encode_set([2])
        b = basis.encode_set([2, 5])
        assert verify_subset(basis, a, b).verdict

    def test_superset_fails_with_witness(self, basis):
        a = basis.encode_set([2, 5])
        b = basis.encode_set([2])
        result = verify_subset(basis, a, b)
        assert not result.verdict
        assert result.witness_element == 5

    def test_empty_subset_of_anything(self, basis):
        result = verify_subset(
            basis, SpikeTrain.empty(GRID), basis.encode_set([0])
        )
        assert result.verdict

    @given(members, members)
    @settings(max_examples=40)
    def test_matches_set_semantics(self, xs, ys):
        basis = make_basis()
        a = Superposition(frozenset(xs)).encode(basis)
        b = Superposition(frozenset(ys)).encode(basis)
        assert verify_subset(basis, a, b).verdict == (set(xs) <= set(ys))
