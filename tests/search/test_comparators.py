"""Tests for repro.search.classical and repro.search.grover."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.search.classical import (
    average_scan_queries,
    expected_scan_queries,
    linear_scan,
)
from repro.search.grover import grover_search, optimal_iterations


class TestLinearScan:
    def test_finds_target(self):
        result = linear_scan([5, 3, 9, 1], 9)
        assert result.found
        assert result.queries == 3
        assert result.position == 2

    def test_absence_costs_full_scan(self):
        result = linear_scan([5, 3, 9, 1], 7)
        assert not result.found
        assert result.queries == 4

    def test_expected_queries(self):
        assert expected_scan_queries(100, present=True) == pytest.approx(50.5)
        assert expected_scan_queries(100, present=False) == 100.0

    def test_measured_matches_expected(self):
        rng = np.random.default_rng(0)
        measured = average_scan_queries(64, 400, rng)
        assert measured == pytest.approx(expected_scan_queries(64, True), rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_scan_queries(-1, True)
        with pytest.raises(ConfigurationError):
            average_scan_queries(0, 10, np.random.default_rng(0))


class TestOptimalIterations:
    def test_sqrt_scaling(self):
        small = optimal_iterations(64, 1)
        large = optimal_iterations(1024, 1)
        assert large == pytest.approx(4 * small, abs=2)

    def test_closed_form(self):
        assert optimal_iterations(4, 1) == 1
        assert optimal_iterations(1024, 1) == int(
            math.floor(math.pi / 4 * math.sqrt(1024))
        )

    def test_many_marked_floor(self):
        assert optimal_iterations(8, 4) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_iterations(1, 1)
        with pytest.raises(ConfigurationError):
            optimal_iterations(8, 0)
        with pytest.raises(ConfigurationError):
            optimal_iterations(8, 9)


class TestGroverSimulator:
    def test_single_marked_high_success(self):
        result = grover_search(256, {42})
        assert result.success_probability > 0.95
        assert result.iterations == optimal_iterations(256, 1)

    def test_success_grows_then_peaks(self):
        result = grover_search(256, {7})
        trajectory = result.trajectory
        # Monotone rise to the optimal stopping point.
        assert all(a < b for a, b in zip(trajectory, trajectory[1:]))

    def test_overrotation_reduces_success(self):
        optimal = grover_search(64, {3})
        over = grover_search(64, {3}, iterations=3 * optimal.iterations)
        assert over.success_probability < optimal.success_probability

    def test_multiple_marked(self):
        result = grover_search(256, {1, 2, 3, 4})
        assert result.iterations == optimal_iterations(256, 4)
        assert result.success_probability > 0.9

    def test_non_power_of_two_dimension(self):
        result = grover_search(63, {10})
        assert result.success_probability > 0.85

    def test_amplitude_norm_preserved(self):
        # Oracle and diffusion are unitary: total probability stays 1.
        result = grover_search(128, {5}, iterations=4)
        # success + failure probabilities must sum correctly; verify via
        # a fresh run's trajectory staying within [0, 1].
        assert all(0.0 <= p <= 1.0 + 1e-9 for p in result.trajectory)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            grover_search(1, {0})
        with pytest.raises(ConfigurationError):
            grover_search(8, set())
        with pytest.raises(ConfigurationError):
            grover_search(8, {9})
        with pytest.raises(ConfigurationError):
            grover_search(8, {0}, iterations=-1)


class TestCrossSchemeOrdering:
    def test_query_counts_ordering(self):
        """spike (1) << grover (~sqrt K) << classical (~K/2) at K=1023."""
        k = 1023
        grover = optimal_iterations(k, 1)
        classical = expected_scan_queries(k, present=True)
        assert 1 < grover < classical
        assert grover == pytest.approx(math.sqrt(k) * math.pi / 4, abs=2)
