"""The public API surface: everything in __all__ exists and is importable."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.noise",
    "repro.spikes",
    "repro.orthogonator",
    "repro.hyperspace",
    "repro.logic",
    "repro.simulator",
    "repro.baselines",
    "repro.energy",
    "repro.analysis",
    "repro.experiments",
    "repro.pipeline",
    "repro.serving",
    "repro.search",
    "repro.viz",
    "repro.cli",
    "repro.units",
    "repro.errors",
]


class TestRootPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example_runs(self):
        basis = repro.build_demux_basis(4, rng=42)
        wire = basis.encode(2)
        result = repro.CoincidenceCorrelator(basis).identify(wire)
        assert result.element == 2


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip()


def test_exceptions_form_one_hierarchy():
    from repro import errors

    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError) or exc is errors.ReproError
