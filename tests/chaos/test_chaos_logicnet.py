"""Chaos suite for served LOGICNET traffic: same ladder, same contract.

Logicnet shards ride the identical supervision machinery as bitset
shards (they fire the same ``serving.run_shard`` /
``serving.compute_shard`` fault points), so the PR-9 clauses must hold
unchanged: a worker killed mid-request recovers to a **bit-identical**
reply with no operator action, and an expired deadline answers a typed
retryable ``ERR_DEADLINE`` — never a partial reply.
"""

import numpy as np
import pytest

from repro.backend.shared import HAVE_SHARED_MEMORY
from repro.errors import ServingError
from repro.logic.netbatch import LogicNetBatch
from repro.serving import protocol
from repro.serving.client import ServingClient
from repro.serving.server import (
    ServerConfig,
    ServerThread,
    build_serving_basis,
)
from repro.testing import faults

SMALL = dict(n_samples=4096, basis_size=8, source_isi_samples=16, seed=7)
FAMILY = dict(seed=33, n_gates=5, depth=2)
N_NETWORKS = 8


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    faults.reset()
    yield
    faults.disarm()
    faults.reset()


@pytest.fixture(scope="module")
def expected():
    """The calm-run answer every recovery must reproduce exactly."""
    basis = build_serving_basis(ServerConfig(**SMALL))
    inputs = basis.as_batch()
    nets = LogicNetBatch.random(
        N_NETWORKS,
        FAMILY["n_gates"],
        FAMILY["depth"],
        inputs.n_trains,
        FAMILY["seed"],
    )
    return nets.evaluate(inputs.packed_words(), inputs.grid.n_samples)


def _query(client, n_shards=2):
    return client.logicnet(
        FAMILY["seed"],
        0,
        N_NETWORKS,
        n_gates=FAMILY["n_gates"],
        depth=FAMILY["depth"],
        n_shards=n_shards,
    )


@pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="no POSIX shared memory on this host"
)
class TestLogicNetShardKill:
    """A pool worker SIGKILLed mid-LOGICNET shard: the reply is unaffected."""

    def test_request_survives_worker_kill_bit_identically(
        self, tmp_path, expected
    ):
        popcounts, checksums = expected
        claim = tmp_path / "claim"
        # Armed before the pool forks; the claim admits exactly one kill.
        faults.arm(f"serving.run_shard=kill@{claim}")
        with ServerThread(ServerConfig(jobs=2, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                reply = _query(client, n_shards=2)
        assert claim.exists(), "the fault never fired"
        np.testing.assert_array_equal(reply.popcounts, popcounts)
        np.testing.assert_array_equal(reply.checksums, checksums)
        assert reply.summary["transport"] == "seed-rebuild"

    def test_pool_keeps_serving_after_the_kill(self, tmp_path, expected):
        popcounts, checksums = expected
        claim = tmp_path / "claim"
        faults.arm(f"serving.run_shard=kill@{claim}")
        with ServerThread(ServerConfig(jobs=2, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                first = _query(client)
                second = _query(client)
        assert claim.exists(), "the fault never fired"
        for reply in (first, second):
            np.testing.assert_array_equal(reply.popcounts, popcounts)
            np.testing.assert_array_equal(reply.checksums, checksums)


class TestLogicNetDeadline:
    """A slow shard blows the deadline: ERR_DEADLINE, never a partial reply."""

    def test_expiry_is_typed_retryable_not_partial(self):
        faults.arm("serving.compute_shard=delay:2")
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            with ServingClient(
                handle.host, handle.port, deadline_ms=1
            ) as client:
                with pytest.raises(ServingError) as info:
                    _query(client, n_shards=2)
        assert info.value.code == protocol.ERR_DEADLINE
        assert info.value.retryable

    def test_generous_deadline_succeeds_bit_identically(self, expected):
        popcounts, checksums = expected
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            with ServingClient(
                handle.host, handle.port, deadline_ms=60_000
            ) as client:
                reply = _query(client, n_shards=2)
        np.testing.assert_array_equal(reply.popcounts, popcounts)
        np.testing.assert_array_equal(reply.checksums, checksums)
