"""Chaos suite: every recovery path ends bit-identical to the calm run.

Each test arms one fault through :mod:`repro.testing.faults`, lets the
stack absorb it without operator intervention, and asserts the three
clauses of the fault-tolerance contract:

* eventual success is **bit-identical** to the undisturbed computation;
* any client-visible error is **typed** — retryable or fatal, never a
  raw hang or an untyped disconnect;
* recovery needs no operator action (supervision respawns pool
  workers, the cluster monitor respawns serving workers, the client
  retry policy reconnects and re-issues).

Faults that reach forked children must be armed *before* the fork —
the harness travels by environment variable, which existing children
never re-read.
"""

import os
import pathlib
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch, packed, parallel
from repro.backend.shared import HAVE_SHARED_MEMORY
from repro.errors import PipelineError, ServingError
from repro.logic.correlator import CoincidenceCorrelator
from repro.pipeline.corpus import CorpusStore
from repro.pipeline.runner import Runner
from repro.serving import protocol
from repro.serving.client import RetryPolicy, ServingClient
from repro.serving.server import (
    ServerConfig,
    ServerThread,
    build_serving_basis,
)
from repro.testing import faults
from repro.units import SimulationGrid, paper_white_grid

SMALL = dict(n_samples=4096, basis_size=8, source_isi_samples=16, seed=7)

#: Generous enough to ride out a worker respawn, small enough that a
#: genuinely broken path fails the test quickly instead of stalling it.
RETRY = RetryPolicy(attempts=8, base_delay=0.05, factor=2.0, max_delay=0.5)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    faults.reset()
    yield
    faults.disarm()
    faults.reset()


@pytest.fixture(scope="module")
def small_basis():
    return build_serving_basis(ServerConfig(**SMALL))


@pytest.fixture(scope="module")
def small_wires(small_basis):
    rng = np.random.default_rng(99)
    elements = rng.integers(small_basis.size, size=24)
    return small_basis.as_batch().select_rows(elements)


@pytest.fixture(scope="module")
def expected_identify(small_basis, small_wires):
    """The calm-run answer every recovery must reproduce exactly."""
    return CoincidenceCorrelator(small_basis).identify_batch(
        small_wires, missing="none"
    )


def _assert_identical(reply, expected):
    assert np.array_equal(reply.elements, expected.elements)
    assert np.array_equal(reply.decision_slots, expected.decision_slots)
    assert np.array_equal(reply.spikes_inspected, expected.spikes_inspected)


@pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="no POSIX shared memory on this host"
)
class TestPoolWorkerKill:
    """A pool worker SIGKILLed mid-shard: supervision retries the shard."""

    def test_parallel_kernel_survives_worker_kill(self, tmp_path):
        claim = tmp_path / "claim"
        rng = np.random.default_rng(3)
        grid = SimulationGrid(n_samples=1000, dt=1e-12)
        a = SpikeTrainBatch.from_raster(
            rng.random((33, 1000)) < 0.15, grid
        ).packed_words()
        b = SpikeTrainBatch.from_raster(
            rng.random((11, 1000)) < 0.15, grid
        ).packed_words()
        serial = packed.pairwise_counts(a, b)
        # Armed before the fork so workers inherit the fault; the claim
        # file admits exactly one kill across the whole pool.
        faults.arm(f"parallel.run_row_task=kill@{claim}")
        with Runner(jobs=2) as runner:
            out = parallel.pairwise_counts(a, b, runner=runner, min_rows=1)
        assert claim.exists(), "the fault never fired"
        assert np.array_equal(out, serial)

    def test_second_dispatch_reuses_recovered_pool(self, tmp_path):
        """After one kill the same Runner keeps serving new work."""
        claim = tmp_path / "claim"
        rng = np.random.default_rng(4)
        grid = SimulationGrid(n_samples=257, dt=1e-12)
        a = SpikeTrainBatch.from_raster(
            rng.random((17, 257)) < 0.15, grid
        ).packed_words()
        b = SpikeTrainBatch.from_raster(
            rng.random((7, 257)) < 0.15, grid
        ).packed_words()
        serial = packed.coincidence_any(a, b)
        faults.arm(f"parallel.run_row_task=kill@{claim}")
        with Runner(jobs=2) as runner:
            first = parallel.coincidence_any(a, b, runner=runner, min_rows=1)
            second = parallel.coincidence_any(a, b, runner=runner, min_rows=1)
        assert np.array_equal(first, serial)
        assert np.array_equal(second, serial)


@pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="no POSIX shared memory on this host"
)
class TestServingShardKill:
    """A serving pool worker dies mid-shard: the reply is unaffected."""

    def test_sharded_request_survives_shard_worker_kill(
        self, tmp_path, small_wires, expected_identify
    ):
        claim = tmp_path / "claim"
        faults.arm(f"serving.run_shard=kill@{claim}")
        with ServerThread(ServerConfig(jobs=2, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                reply = client.identify(small_wires, n_shards=2)
        assert claim.exists(), "the fault never fired"
        _assert_identical(reply, expected_identify)
        assert reply.summary["transport"] == "shared-arena"


@pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="no POSIX shared memory on this host"
)
class TestClusterWorkerKill:
    """A serving worker dies mid-request: monitor respawns, client retries."""

    def test_retrying_client_rides_out_worker_death(
        self, tmp_path, small_wires, expected_identify
    ):
        from repro.serving.cluster import ServerCluster

        claim = tmp_path / "claim"
        config = ServerConfig(workers=2, **SMALL)
        # Armed before the cluster forks; the claim admits one kill, and
        # the respawned worker (forked after the claim file exists)
        # cannot re-fire it.
        faults.arm(f"serving.handle_frame=kill@{claim}")
        with ServerCluster(config) as cluster:
            with ServingClient(
                "127.0.0.1", cluster.port, retry=RETRY, timeout=30.0
            ) as client:
                replies = [client.identify(small_wires) for _ in range(4)]
            assert claim.exists(), "the fault never fired"
            for reply in replies:
                _assert_identical(reply, expected_identify)
            # The monitor must have noticed and respawned the victim.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if int(cluster.block.respawns[0]) >= 1:
                    break
                time.sleep(0.1)
            assert int(cluster.block.respawns[0]) >= 1
            with ServingClient(
                "127.0.0.1", cluster.port, retry=RETRY, timeout=30.0
            ) as client:
                stats = client.stats()
        assert stats["respawns"] >= 1
        # STATS continuity: the aggregate keeps counting across the
        # respawn instead of resetting — every successful identify and
        # the STATS round-trip itself are in the monotone total.
        assert stats["requests_served"] >= len(replies)


class TestTruncatedFrame:
    """The server dies mid-write: a typed loss, then a clean retry."""

    def test_client_retry_recovers_bit_identically(
        self, small_wires, expected_identify
    ):
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            faults.arm("serving.send_frame=truncate:8:n=1")
            with ServingClient(
                handle.host, handle.port, retry=RETRY
            ) as client:
                reply = client.identify(small_wires)
        _assert_identical(reply, expected_identify)

    def test_without_retry_the_loss_is_typed_retryable(self, small_wires):
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            faults.arm("serving.send_frame=truncate:8:n=1")
            with ServingClient(handle.host, handle.port) as client:
                with pytest.raises((ServingError, OSError, EOFError)) as info:
                    client.identify(small_wires)
        if isinstance(info.value, ServingError):
            assert info.value.retryable


class TestExpiredDeadline:
    """A slow shard blows the request deadline: ERR_DEADLINE, retryable."""

    def test_deadline_expiry_is_typed_and_retryable(self, small_wires):
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            faults.arm("serving.compute_shard=delay:30")
            with ServingClient(
                handle.host, handle.port, deadline_ms=1
            ) as client:
                with pytest.raises(ServingError) as info:
                    client.identify(small_wires, n_shards=2)
        assert info.value.code == protocol.ERR_DEADLINE
        assert info.value.retryable

    def test_generous_deadline_succeeds_bit_identically(
        self, small_wires, expected_identify
    ):
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            with ServingClient(
                handle.host, handle.port, deadline_ms=60_000
            ) as client:
                reply = client.identify(small_wires, n_shards=2)
        _assert_identical(reply, expected_identify)


class TestCorruptCorpusSegment:
    """A flipped byte on disk: a fatal PipelineError naming the segment."""

    @pytest.fixture()
    def corpus_root(self, tmp_path, small_basis):
        root = tmp_path / "library"
        grid = paper_white_grid(n_samples=SMALL["n_samples"])
        store = CorpusStore.create(root, grid)
        rng = np.random.default_rng(13)
        elements = rng.integers(SMALL["basis_size"], size=50)
        with store.writer() as writer:
            writer.append(small_basis.as_batch().select_rows(elements[:25]))
            writer.append(small_basis.as_batch().select_rows(elements[25:]))
        return root

    def test_corruption_detected_on_read(self, corpus_root):
        faults.arm("corpus.open_rows=corrupt:0:n=1")
        store = CorpusStore(corpus_root)
        with pytest.raises(PipelineError) as info:
            store.open_rows(0, 10)
        message = str(info.value)
        assert "corrupt" in message
        assert "crc32 mismatch" in message
        assert ".seg" in message or str(corpus_root) in message

    def test_damage_is_on_disk_not_in_harness_state(self, corpus_root):
        faults.arm("corpus.open_rows=corrupt:0:n=1")
        with pytest.raises(PipelineError):
            CorpusStore(corpus_root).open_rows(0, 10)
        faults.disarm()
        # A brand-new store instance (fresh verification cache, no
        # fault armed) still refuses the corrupted segment.
        with pytest.raises(PipelineError):
            CorpusStore(corpus_root).open_rows(0, 10)

    def test_verify_audit_reports_the_corruption(self, corpus_root):
        faults.arm("corpus.open_rows=corrupt:0:n=1")
        with pytest.raises(PipelineError):
            CorpusStore(corpus_root).open_rows(0, 10)
        faults.disarm()
        with pytest.raises(PipelineError):
            CorpusStore(corpus_root, verify=False).verify()

    def test_intact_corpus_verifies_clean(self, corpus_root):
        report = CorpusStore(corpus_root).verify()
        assert report == {
            "segments_checked": 2,
            "segments_unchecksummed": 0,
        }


_RESIDUE_SCRIPT = """
import sys

import numpy as np

from repro.backend import SpikeTrainBatch, packed, parallel
from repro.pipeline.runner import Runner
from repro.testing import faults
from repro.units import SimulationGrid

claim = sys.argv[1]
rng = np.random.default_rng(11)
grid = SimulationGrid(n_samples=1000, dt=1e-12)
a = SpikeTrainBatch.from_raster(
    rng.random((33, 1000)) < 0.15, grid
).packed_words()
b = SpikeTrainBatch.from_raster(
    rng.random((9, 1000)) < 0.15, grid
).packed_words()
serial = packed.pairwise_counts(a, b)
faults.arm("parallel.run_row_task=kill@" + claim)
with Runner(jobs=2) as runner:
    out = parallel.pairwise_counts(a, b, runner=runner, min_rows=1)
assert np.array_equal(out, serial), "recovered result diverged"
print("RESIDUE-TEST-OK")
"""


@pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="no POSIX shared memory on this host"
)
@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this host"
)
class TestSharedArenaHygiene:
    """SIGKILLed workers must not leak /dev/shm segments or warnings."""

    def test_no_shm_residue_after_worker_kill(self, tmp_path):
        shm = pathlib.Path("/dev/shm")
        before = set(os.listdir(shm))
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.pop(faults.ENV_VAR, None)
        claim = tmp_path / "claim"
        proc = subprocess.run(
            [sys.executable, "-c", _RESIDUE_SCRIPT, str(claim)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "RESIDUE-TEST-OK" in proc.stdout
        assert claim.exists(), "the kill fault never fired"
        assert "resource_tracker" not in proc.stderr, proc.stderr
        # Give the kernel a beat to finish unlinks from reaped children,
        # then require that nothing this run created is still mapped.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            leaked = set(os.listdir(shm)) - before
            if not leaked:
                break
            time.sleep(0.1)
        assert not leaked, f"/dev/shm residue: {sorted(leaked)}"
