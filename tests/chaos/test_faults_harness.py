"""Unit tests of the fault-injection harness itself.

The chaos suite's credibility rests on the harness: a typo'd spec must
fail loudly, schedules must fire exactly when they claim, and the claim
file must admit exactly one firing across processes.  Nothing here
kills anything — the side-effecting actions are exercised end-to-end
by ``test_chaos_recovery.py``.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    faults.reset()
    yield
    faults.disarm()
    faults.reset()


class TestParseSpec:
    def test_simple_spec(self):
        (fault,) = faults.parse_spec("serving.send_frame=truncate:8")
        assert fault.point == "serving.send_frame"
        assert fault.action == "truncate"
        assert fault.param_int == 8

    def test_modifiers_and_claim(self, tmp_path):
        claim = tmp_path / "claim"
        (fault,) = faults.parse_spec(f"p=kill:n=3@{claim}")
        assert fault.action == "kill"
        assert fault.nth == 3
        assert fault.claim_path == str(claim)

    def test_multiple_specs_semicolon_separated(self):
        parsed = faults.parse_spec("a=kill;b=delay:10:every=2")
        assert [fault.point for fault in parsed] == ["a", "b"]
        assert parsed[1].every == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "no-equals",
            "=kill",
            "point=",
            "point=kill:n=notanint",
            "point=kill:p=1.5",
            "point=delay:10:20:30",
        ],
    )
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(ConfigurationError):
            faults.parse_spec(bad)

    def test_arm_validates_before_exporting(self):
        with pytest.raises(ConfigurationError):
            faults.arm("broken spec")
        assert faults.ENV_VAR not in os.environ


class TestSchedules:
    def test_default_fires_every_hit(self):
        faults.arm("point=trip")
        assert faults.maybe_fire("point") is not None
        assert faults.maybe_fire("point") is not None

    def test_unarmed_point_is_silent(self):
        faults.arm("other=trip")
        assert faults.maybe_fire("point") is None

    def test_nth_fires_exactly_once(self):
        faults.arm("point=trip:n=2")
        fired = [faults.maybe_fire("point") is not None for _ in range(5)]
        assert fired == [False, True, False, False, False]

    def test_every_fires_periodically(self):
        faults.arm("point=trip:every=3")
        fired = [faults.maybe_fire("point") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, True]

    def test_claim_file_admits_one_firing(self, tmp_path):
        claim = tmp_path / "claim"
        faults.arm(f"point=trip@{claim}")
        assert faults.maybe_fire("point") is not None
        assert claim.exists()
        # Claimed: later hits (here or in any other process) stay quiet.
        assert faults.maybe_fire("point") is None

    def test_reset_restarts_hit_counters(self):
        faults.arm("point=trip:n=1")
        assert faults.maybe_fire("point") is not None
        assert faults.maybe_fire("point") is None
        faults.reset()
        assert faults.maybe_fire("point") is not None

    def test_disarm_clears_everything(self):
        faults.arm("point=trip")
        faults.disarm()
        assert faults.maybe_fire("point") is None

    def test_delay_action_sleeps(self):
        import time

        faults.arm("point=delay:30")
        start = time.monotonic()
        fault = faults.maybe_fire("point")
        elapsed = time.monotonic() - start
        assert fault is not None and fault.action == "delay"
        assert elapsed >= 0.025

    def test_data_actions_return_to_call_site(self):
        faults.arm("point=truncate:16")
        fault = faults.maybe_fire("point")
        assert fault is not None
        assert fault.action == "truncate"
        assert fault.param_int == 16
