"""Chaos suite: injected-fault recovery tests (docs/fault_tolerance.md)."""
