"""Property tests for the packed-word kernel layer.

The packed kernels' contract is bit-identity with the raster and
sorted-merge implementations on *any* grid length — in particular the
ragged tails, where ``n_samples`` is not a multiple of 8 (partial final
byte) or of 64 (partial final word) and correctness hinges on the
tail-bit masking.  These tests randomize densities over a grid-length
sweep chosen to hit every alignment class, and exercise both popcount
implementations (``np.bitwise_count`` and the 16-bit LUT) explicitly.
"""

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch, packed, use_backend
from repro.errors import SpikeTrainError
from repro.hyperspace.basis import HyperspaceBasis
from repro.hyperspace.superposition import decode_superposition_batch
from repro.logic.correlator import CoincidenceCorrelator
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

#: Grid lengths covering every tail-alignment class: multiples of 64,
#: multiples of 8 only, and arbitrary ragged lengths (including a
#: single-slot grid and sub-byte/sub-word tails).
RAGGED_LENGTHS = [1, 5, 8, 9, 63, 64, 65, 120, 127, 128, 129, 1000, 4097]

DENSITIES = [0.0, 0.03, 0.3, 0.97]


def _random_batch(rng, n_trains, n_samples, density):
    grid = SimulationGrid(n_samples=n_samples, dt=1e-12)
    raster = rng.random((n_trains, n_samples)) < density
    return SpikeTrainBatch.from_raster(raster, grid), raster


@pytest.fixture(params=[0, 1, 2])
def rng(request):
    return np.random.default_rng(request.param)


class TestPopcountImplementations:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32, np.uint64])
    def test_lut_matches_native_when_available(self, rng, dtype):
        if not packed.HAVE_BITWISE_COUNT:
            pytest.skip("np.bitwise_count unavailable; LUT is the only impl")
        info = np.iinfo(dtype)
        values = rng.integers(0, info.max, size=(13, 17), dtype=dtype)
        assert np.array_equal(
            packed._popcount_lut(values), packed._popcount_native(values)
        )

    def test_lut_against_python_bit_count(self, rng):
        values = rng.integers(0, 2**64 - 1, size=64, dtype=np.uint64)
        expected = np.array([int(v).bit_count() for v in values])
        assert np.array_equal(packed._popcount_lut(values), expected)

    def test_lut_on_noncontiguous_input(self, rng):
        values = rng.integers(0, 2**64 - 1, size=(8, 8), dtype=np.uint64)
        view = values[:, ::2]
        expected = np.array(
            [[int(v).bit_count() for v in row] for row in view]
        )
        assert np.array_equal(packed._popcount_lut(view), expected)

    def test_active_impl_reported(self):
        assert packed.popcount_impl() in ("bitwise_count", "lut16")


class TestRaggedPackRoundTrip:
    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_pack_rows_matches_packbits(self, rng, n_samples, density):
        raster = rng.random((4, n_samples)) < density
        rows, cols = np.nonzero(raster)
        ptr = np.concatenate(
            [[0], np.cumsum(np.bincount(rows, minlength=4))]
        )
        words = packed.pack_rows(cols, ptr, n_samples)
        assert packed.check_tail_clean(words, n_samples)
        as_bytes = words.view(np.uint8).reshape(4, -1)
        n_bytes = packed.n_packed_bytes(n_samples)
        assert np.array_equal(
            as_bytes[:, :n_bytes], np.packbits(raster, axis=1)
        )
        assert not as_bytes[:, n_bytes:].any()  # zero padding

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_unpack_rows_inverts_pack_rows(self, rng, n_samples, density):
        raster = rng.random((5, n_samples)) < density
        rows, cols = np.nonzero(raster)
        ptr = np.concatenate(
            [[0], np.cumsum(np.bincount(rows, minlength=5))]
        )
        values, back_ptr = packed.unpack_rows(
            packed.pack_rows(cols, ptr, n_samples)
        )
        assert np.array_equal(values, cols)
        assert np.array_equal(back_ptr, ptr)

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_unpack_coords_matches_nonzero(self, rng, n_samples, density):
        raster = rng.random((5, n_samples)) < density
        exp_rows, exp_cols = np.nonzero(raster)
        ptr = np.concatenate(
            [[0], np.cumsum(np.bincount(exp_rows, minlength=5))]
        )
        rows, slots = packed.unpack_coords(
            packed.pack_rows(exp_cols, ptr, n_samples)
        )
        assert np.array_equal(rows, exp_rows)
        assert np.array_equal(slots, exp_cols)

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    def test_scalar_pack_unpack(self, rng, n_samples):
        indices = np.flatnonzero(rng.random(n_samples) < 0.4)
        assert np.array_equal(
            packed.unpack_indices(packed.pack_indices(indices, n_samples)),
            indices,
        )

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    def test_bitwise_not_stays_clean(self, rng, n_samples):
        indices = np.flatnonzero(rng.random(n_samples) < 0.5)
        words = packed.pack_rows(
            indices, np.array([0, indices.size]), n_samples
        )
        complement = packed.bitwise_not(words, n_samples)
        assert packed.check_tail_clean(complement, n_samples)
        assert np.array_equal(
            packed.unpack_indices(complement.view(np.uint8)),
            np.setdiff1d(np.arange(n_samples), indices),
        )


class TestPairwiseKernels:
    """Chunked cross-batch kernels vs brute force on ragged grids."""

    @staticmethod
    def _packed_pair(rng, n_samples, n_a=5, n_b=3):
        raster_a = rng.random((n_a, n_samples)) < rng.uniform(0.05, 0.6)
        raster_b = rng.random((n_b, n_samples)) < rng.uniform(0.05, 0.6)
        def pack(raster):
            rows, cols = np.nonzero(raster)
            ptr = np.concatenate(
                [[0], np.cumsum(np.bincount(rows, minlength=raster.shape[0]))]
            )
            return packed.pack_rows(cols, ptr, n_samples)
        return raster_a, raster_b, pack(raster_a), pack(raster_b)

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    def test_pairwise_counts(self, rng, n_samples):
        raster_a, raster_b, a, b = self._packed_pair(rng, n_samples)
        expected = raster_a.astype(np.int64) @ raster_b.astype(np.int64).T
        assert np.array_equal(packed.pairwise_counts(a, b), expected)

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    def test_coincidence_any(self, rng, n_samples):
        raster_a, raster_b, a, b = self._packed_pair(rng, n_samples)
        expected = (raster_a.astype(np.int64) @ raster_b.astype(np.int64).T) > 0
        assert np.array_equal(packed.coincidence_any(a, b), expected)

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    def test_first_coincident_slots(self, rng, n_samples):
        raster_a, raster_b, a, b = self._packed_pair(rng, n_samples)
        got = packed.first_coincident_slots(a, b)
        for i in range(raster_a.shape[0]):
            for j in range(raster_b.shape[0]):
                both = np.flatnonzero(raster_a[i] & raster_b[j])
                assert got[i, j] == (both[0] if both.size else -1), (i, j)

    def test_chunking_boundaries(self, rng):
        """Many rows force multiple chunks; results must not depend on
        where the chunk boundaries fall."""
        n_samples = 130
        raster_a = rng.random((67, n_samples)) < 0.2
        rows, cols = np.nonzero(raster_a)
        ptr = np.concatenate([[0], np.cumsum(np.bincount(rows, minlength=67))])
        a = packed.pack_rows(cols, ptr, n_samples)
        expected = raster_a.astype(np.int64) @ raster_a.astype(np.int64).T
        assert np.array_equal(packed.pairwise_counts(a, a), expected)
        assert np.array_equal(packed.coincidence_any(a, a), expected > 0)


class TestRaggedScalarBackends:
    """The bitset backend vs sorted/raster on ragged grids."""

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    @pytest.mark.parametrize(
        "op", ["union", "intersection", "difference", "symmetric_difference"]
    )
    def test_bitset_bit_identical_on_ragged_grids(self, rng, n_samples, op):
        grid = SimulationGrid(n_samples=n_samples, dt=1e-12)
        density = float(rng.uniform(0.05, 0.9))
        a = SpikeTrain(
            np.flatnonzero(rng.random(n_samples) < density), grid
        )
        b = SpikeTrain(
            np.flatnonzero(rng.random(n_samples) < density), grid
        )
        results = {}
        for name in ("sorted", "raster", "bitset"):
            with use_backend(name):
                results[name] = getattr(a, op)(b).indices
        assert np.array_equal(results["bitset"], results["sorted"]), op
        assert np.array_equal(results["raster"], results["sorted"]), op


class TestRaggedBatches:
    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_packed_primary_round_trip(self, rng, n_samples, density):
        batch, raster = _random_batch(rng, 6, n_samples, density)
        primary = SpikeTrainBatch.from_packed(batch.packbits(), batch.grid)
        assert not primary.csr_materialised  # stays packed until asked
        assert primary == batch
        assert np.array_equal(primary.raster, raster)
        assert np.array_equal(primary.counts(), batch.counts())
        assert primary.total_spikes == batch.total_spikes

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    @pytest.mark.parametrize(
        "op", ["union", "intersection", "difference", "symmetric_difference"]
    )
    def test_packed_setops_match_raster(self, rng, n_samples, op):
        density = float(rng.uniform(0.05, 0.9))
        a, _ = _random_batch(rng, 5, n_samples, density)
        b, _ = _random_batch(rng, 5, n_samples, density)
        with use_backend("raster"):
            expected = getattr(a, op)(b)
        with use_backend("bitset"):
            got = getattr(a, op)(b)
        assert not got.csr_materialised  # packed in, packed out
        assert got == expected
        assert packed.check_tail_clean(got.packed_words(), n_samples)

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    def test_packed_setops_broadcast_single_row(self, rng, n_samples):
        a, _ = _random_batch(rng, 4, n_samples, 0.4)
        probe, _ = _random_batch(rng, 1, n_samples, 0.4)
        with use_backend("bitset"):
            got = a.intersection(probe)
        with use_backend("raster"):
            expected = a.intersection(probe)
        assert got == expected

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    @pytest.mark.parametrize("density", [0.02, 0.5])
    def test_popcount_stats_match_csr(self, rng, n_samples, density):
        batch, raster = _random_batch(rng, 7, n_samples, density)
        primary = SpikeTrainBatch.from_packed(batch.packbits(), batch.grid)
        other, _ = _random_batch(rng, 7, n_samples, density)
        assert np.array_equal(
            primary.overlap_counts(other), batch.overlap_counts(other)
        )
        assert np.array_equal(
            primary.pairwise_overlap_matrix(),
            raster.astype(np.int64) @ raster.astype(np.int64).T,
        )
        assert primary.any_union() == batch.any_union()
        assert (
            primary.is_mutually_orthogonal()
            == batch.is_mutually_orthogonal()
        )

    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    def test_select_rows_stays_packed(self, rng, n_samples):
        batch, _ = _random_batch(rng, 6, n_samples, 0.3)
        primary = SpikeTrainBatch.from_packed(batch.packbits(), batch.grid)
        rows = [4, 0, 2]
        sub = primary.select_rows(rows)
        assert not sub.csr_materialised
        assert sub == batch.select_rows(rows)

    def test_from_packed_masks_tail_bits(self):
        """Compatibility: tail garbage in the final byte is dropped, as
        ``np.unpackbits(..., count=n)`` did for the old decoder."""
        grid = SimulationGrid(n_samples=12, dt=1e-12)
        dirty = np.array([[0xFF, 0xFF]], dtype=np.uint8)
        batch = SpikeTrainBatch.from_packed(dirty, grid)
        assert batch.total_spikes == 12
        assert batch.row(0).indices.tolist() == list(range(12))

    def test_adopting_dirty_words_rejected(self):
        grid = SimulationGrid(n_samples=12, dt=1e-12)
        dirty = np.full((1, 1), 0xFFFF, dtype=np.uint64)
        with pytest.raises(SpikeTrainError, match="beyond the grid"):
            SpikeTrainBatch._from_packed_words(dirty, grid)


@pytest.fixture
def ragged_basis(rng):
    grid = SimulationGrid(n_samples=4097, dt=1e-12)
    indices = rng.choice(grid.n_samples, size=800, replace=False)
    source = SpikeTrain(indices, grid)
    output = DemuxOrthogonator.with_outputs(6).transform(source)
    return HyperspaceBasis.from_orthogonator(output)


class TestRaggedReceivers:
    """Packed receivers vs CSR receivers on a ragged grid."""

    def _wires(self, rng, basis, n_wires):
        wires = []
        for _unused in range(n_wires):
            members = rng.choice(
                basis.size,
                size=int(rng.integers(0, basis.size + 1)),
                replace=False,
            )
            wire = basis.encode_set(members.tolist())
            if rng.random() < 0.5:
                extra = rng.choice(basis.grid.n_samples, size=12, replace=False)
                wire = wire | SpikeTrain(extra, basis.grid)
            wires.append(wire)
        return wires

    def test_identify_packed_matches_csr(self, rng, ragged_basis):
        correlator = CoincidenceCorrelator(ragged_basis)
        wires = [
            ragged_basis.encode(int(rng.integers(ragged_basis.size)))
            for _unused in range(12)
        ]
        batch = SpikeTrainBatch.from_trains(wires)
        start = int(rng.integers(0, ragged_basis.grid.n_samples))
        with use_backend("sorted"):
            expected = correlator.identify_batch(
                batch, start_slot=start, missing="none"
            )
        with use_backend("bitset"):
            got = correlator.identify_batch(
                batch, start_slot=start, missing="none"
            )
        assert got.results() == expected.results()

    def test_identify_packed_primary_input(self, rng, ragged_basis):
        correlator = CoincidenceCorrelator(ragged_basis)
        wires = [
            ragged_basis.encode(int(rng.integers(ragged_basis.size)))
            for _unused in range(8)
        ]
        batch = SpikeTrainBatch.from_trains(wires)
        primary = SpikeTrainBatch.from_packed(batch.packbits(), batch.grid)
        got = correlator.identify_batch(primary)  # auto-routes packed
        assert not primary.csr_materialised
        assert got.results() == correlator.identify_batch(batch).results()

    def test_detect_members_packed_matches_csr(self, rng, ragged_basis):
        correlator = CoincidenceCorrelator(ragged_basis)
        batch = SpikeTrainBatch.from_trains(
            self._wires(rng, ragged_basis, 10)
        )
        limit = int(rng.integers(1, ragged_basis.grid.n_samples + 1))
        with use_backend("sorted"):
            expected = correlator.detect_members_batch(batch, until_slot=limit)
        with use_backend("bitset"):
            got = correlator.detect_members_batch(batch, until_slot=limit)
        assert np.array_equal(got.first_slots, expected.first_slots)
        assert got.as_dicts() == expected.as_dicts()

    def test_decode_packed_matches_csr(self, rng, ragged_basis):
        selections = [
            rng.choice(
                ragged_basis.size, size=int(rng.integers(0, 5)), replace=False
            ).tolist()
            for _unused in range(9)
        ]
        batch = ragged_basis.encode_batch(selections)
        assert not batch.csr_materialised  # packed-primary encode
        decoded = decode_superposition_batch(ragged_basis, batch)
        assert [sorted(v.members) for v in decoded] == [
            sorted(int(k) for k in keys) for keys in selections
        ]
        with use_backend("sorted"):
            via_csr = decode_superposition_batch(ragged_basis, batch)
        assert decoded == via_csr

    def test_decode_packed_strict_rejects_foreign(self, rng, ragged_basis):
        from repro.errors import HyperspaceError

        foreign = ragged_basis.grid.n_samples - 1
        while ragged_basis.owner_of_slot(foreign) is not None:
            foreign -= 1
        wire = ragged_basis.encode(0) | SpikeTrain([foreign], ragged_basis.grid)
        batch = SpikeTrainBatch.from_trains([ragged_basis.encode(1), wire])
        primary = SpikeTrainBatch.from_packed(batch.packbits(), batch.grid)
        with pytest.raises(HyperspaceError, match=r"wire\(s\) \[1\]"):
            decode_superposition_batch(ragged_basis, primary, strict=True)
        decoded = decode_superposition_batch(ragged_basis, primary, strict=False)
        assert decoded[1].members == frozenset([0])
