"""Degenerate batch shapes: 0 wires, 1-slot grids, all-empty trains.

The representation-invisibility contract has to hold at the edges of
the shape space, not just on production-sized batches: a 0-wire batch
(an empty row selection, an empty corpus window), a 1-slot grid (one
word, 63 tail bits) and batches whose every row is silent must flow
through ``pack_rows``/``unpack_rows``/``select_rows`` and the batched
receivers on every backend, bit-identical across all three.
"""

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch, available_backends, use_backend
from repro.backend.packed import (
    check_tail_clean,
    n_packed_words,
    pack_rows,
    unpack_rows,
)
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.correlator import CoincidenceCorrelator
from repro.orthogonator.demux import DemuxOrthogonator
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=4096, dt=1e-12)
ONE_SLOT = SimulationGrid(n_samples=1, dt=1e-12)


@pytest.fixture(scope="module")
def basis():
    rng = np.random.default_rng(8)
    indices = np.sort(rng.choice(GRID.n_samples, size=256, replace=False))
    source = SpikeTrain(indices, GRID)
    output = DemuxOrthogonator.with_outputs(8).transform(source)
    return HyperspaceBasis.from_orthogonator(output)


class TestZeroWireBatches:
    """N=0 is a legal silent batch on every path."""

    def test_select_no_rows_from_csr(self, basis):
        batch = basis.as_batch()
        empty = batch.select_rows([])
        assert empty.n_trains == 0
        assert empty.total_spikes == 0
        assert empty.counts().shape == (0,)
        values, ptr = empty.csr()
        assert values.size == 0 and ptr.tolist() == [0]
        words = empty.packed_words()
        assert words.shape == (0, n_packed_words(GRID.n_samples))
        # Selecting from the empty selection stays legal.
        assert empty.select_rows([]).n_trains == 0

    def test_select_no_rows_from_packed_primary(self, basis, tmp_path):
        path = basis.as_batch().to_memmap(tmp_path / "basis.npy")
        mapped = SpikeTrainBatch.from_memmap(path, GRID)
        assert mapped.packed_materialised and not mapped.csr_materialised
        empty = mapped.select_rows([])
        assert empty.n_trains == 0
        assert empty.packed_words().shape == (
            0, n_packed_words(GRID.n_samples),
        )
        # A 0-row window of the mapping is equally legal.
        window = SpikeTrainBatch.from_memmap(path, GRID, rows=(3, 3))
        assert window.n_trains == 0

    def test_pack_unpack_zero_rows(self):
        ptr = np.zeros(1, dtype=np.int64)
        words = pack_rows(np.empty(0, dtype=np.int64), ptr, GRID.n_samples)
        assert words.shape == (0, n_packed_words(GRID.n_samples))
        values, out_ptr = unpack_rows(words)
        assert values.size == 0 and out_ptr.tolist() == [0]

    @pytest.mark.parametrize("backend", ["sorted", "raster", "bitset"])
    def test_receivers_on_zero_wires(self, basis, backend):
        correlator = CoincidenceCorrelator(basis)
        empty = basis.as_batch().select_rows([])
        with use_backend(backend):
            identified = correlator.identify_batch(empty, missing="none")
            members = correlator.detect_members_batch(empty)
        assert identified.elements.shape == (0,)
        assert identified.decision_slots.shape == (0,)
        assert identified.spikes_inspected.shape == (0,)
        assert members.membership.shape == (0, basis.size)
        assert members.first_slots.shape == (0, basis.size)


class TestOneSlotGrids:
    """n_samples=1: one word, 63 dead tail bits, slots are all 0."""

    def test_set_ops_agree_across_backends(self):
        hot = SpikeTrain([0], ONE_SLOT)
        cold = SpikeTrain.empty(ONE_SLOT)
        for name in available_backends():
            with use_backend(name):
                assert (hot | cold) == hot, name
                assert len(hot & cold) == 0, name
                assert (hot - cold) == hot, name
                assert (hot ^ hot) == cold, name

    def test_pack_unpack_round_trip(self):
        # Rows: {0}, {}, {0} on the 1-slot grid.
        values = np.array([0, 0], dtype=np.int64)
        ptr = np.array([0, 1, 1, 2], dtype=np.int64)
        words = pack_rows(values, ptr, 1)
        assert words.shape == (3, 1)
        assert check_tail_clean(words, 1)
        assert words[:, 0].tolist() == [128, 0, 128]  # MSB-first byte 0
        out_values, out_ptr = unpack_rows(words)
        assert np.array_equal(out_values, values)
        assert np.array_equal(out_ptr, ptr)

    def test_batch_round_trip_and_select(self, tmp_path):
        batch = SpikeTrainBatch.from_trains(
            [SpikeTrain([0], ONE_SLOT), SpikeTrain.empty(ONE_SLOT)]
        )
        raster = batch.raster
        assert raster.shape == (2, 1)
        again = SpikeTrainBatch.from_raster(raster, ONE_SLOT)
        assert again == batch
        flipped = batch.select_rows([1, 0])
        assert flipped.counts().tolist() == [0, 1]
        path = batch.to_memmap(tmp_path / "one_slot.npy")
        mapped = SpikeTrainBatch.from_memmap(path, ONE_SLOT)
        assert mapped.packed_materialised and not mapped.csr_materialised
        assert mapped == batch


class TestAllEmptyTrains:
    """Every row silent: packing is all zeros, receivers find nothing."""

    def test_pack_unpack_all_silent(self):
        batch = SpikeTrainBatch.empty(5, GRID)
        words = batch.packed_words()
        assert words.shape == (5, n_packed_words(GRID.n_samples))
        assert not words.any()
        values, ptr = unpack_rows(words)
        assert values.size == 0
        assert ptr.tolist() == [0] * 6

    def test_from_trains_of_empties(self):
        batch = SpikeTrainBatch.from_trains(
            [SpikeTrain.empty(GRID) for _unused in range(3)]
        )
        assert batch == SpikeTrainBatch.empty(3, GRID)
        assert batch.select_rows([2, 0]).total_spikes == 0

    @pytest.mark.parametrize("backend", ["sorted", "raster", "bitset"])
    def test_receivers_on_all_silent(self, basis, backend):
        correlator = CoincidenceCorrelator(basis)
        silent = SpikeTrainBatch.empty(4, GRID)
        with use_backend(backend):
            identified = correlator.identify_batch(silent, missing="none")
            members = correlator.detect_members_batch(silent)
        assert identified.elements.tolist() == [-1] * 4
        assert identified.decision_slots.tolist() == [-1] * 4
        assert identified.spikes_inspected.tolist() == [0] * 4
        assert not members.membership.any()

    def test_silent_receivers_bit_identical_across_backends(self, basis):
        correlator = CoincidenceCorrelator(basis)
        silent = SpikeTrainBatch.empty(4, GRID)
        outcomes = {}
        for name in available_backends():
            with use_backend(name):
                outcome = correlator.detect_members_batch(silent)
            outcomes[name] = (outcome.membership, outcome.first_slots)
        reference = outcomes["sorted"]
        for name, (membership, first_slots) in outcomes.items():
            assert np.array_equal(membership, reference[0]), name
            assert np.array_equal(first_slots, reference[1]), name
