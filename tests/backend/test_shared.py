"""Round-trip tests for the shared-memory transport layer.

``to_shared``/``from_shared`` must be bit-identical to the in-process
batch across densities (empty through full) and row ranges, and the
arena must never leak segments — including when the guarded block
raises.
"""

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch
from repro.backend.shared import (
    HAVE_SHARED_MEMORY,
    AttachmentCache,
    SharedArena,
    attach_array,
)
from repro.units import SimulationGrid

pytestmark = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="multiprocessing.shared_memory missing"
)


def _segment_gone(name: str) -> bool:
    """True when no shared segment of this name can be attached."""
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


def _random_batch(rng, n_trains, n_samples, density):
    grid = SimulationGrid(n_samples=n_samples, dt=1e-9)
    raster = rng.random((n_trains, n_samples)) < density
    return SpikeTrainBatch.from_raster(raster, grid), grid


class TestShareArrayRoundTrip:
    @pytest.mark.parametrize(
        "dtype", ["int32", "int64", "uint8", "float64", "bool"]
    )
    def test_dtypes_round_trip(self, dtype):
        rng = np.random.default_rng(7)
        array = (rng.random((13, 31)) * 100).astype(dtype)
        with SharedArena() as arena:
            spec = arena.share_array(array)
            back = attach_array(spec)
            assert back.dtype == array.dtype
            assert np.array_equal(back, array)
            assert not back.flags.writeable

    def test_empty_array_round_trips(self):
        with SharedArena() as arena:
            spec = arena.share_array(np.empty(0, dtype=np.int64))
            back = attach_array(spec)
            assert back.shape == (0,)
            assert back.dtype == np.int64

    def test_noncontiguous_input_round_trips(self):
        array = np.arange(100).reshape(10, 10)[:, ::2]
        with SharedArena() as arena:
            back = attach_array(arena.share_array(array))
            assert np.array_equal(back, array)


class TestBatchSharedRoundTrip:
    @pytest.mark.parametrize("density", [0.0, 0.01, 0.2, 0.5, 1.0])
    def test_random_batches_bit_identical(self, density):
        rng = np.random.default_rng(int(density * 1000) + 1)
        batch, _grid = _random_batch(rng, n_trains=9, n_samples=257, density=density)
        with SharedArena() as arena:
            handle = batch.to_shared(arena)
            back = SpikeTrainBatch.from_shared(handle)
            assert back == batch
            assert np.array_equal(back.raster, batch.raster)
            assert back.grid == batch.grid

    @pytest.mark.parametrize("seed", range(5))
    def test_row_ranges_match_select_rows(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        batch, _grid = _random_batch(
            rng, n_trains=n, n_samples=128, density=float(rng.random())
        )
        lo = int(rng.integers(0, n))
        hi = int(rng.integers(lo + 1, n + 1))
        with SharedArena() as arena:
            handle = batch.to_shared(arena)
            part = SpikeTrainBatch.from_shared(handle, rows=(lo, hi))
            assert part == batch.select_rows(np.arange(lo, hi))

    def test_out_of_range_rows_raise(self):
        rng = np.random.default_rng(0)
        batch, _grid = _random_batch(rng, 4, 64, 0.3)
        from repro.errors import SpikeTrainError

        with SharedArena() as arena:
            handle = batch.to_shared(arena)
            with pytest.raises(SpikeTrainError, match="row range"):
                SpikeTrainBatch.from_shared(handle, rows=(2, 9))

    def test_handle_is_metadata_only(self):
        import pickle

        rng = np.random.default_rng(3)
        batch, _grid = _random_batch(rng, 64, 8192, 0.2)
        with SharedArena() as arena:
            handle = batch.to_shared(arena)
            payload = len(pickle.dumps(handle))
            assert payload < 1024, f"handle pickled to {payload} bytes"
            assert handle.n_trains == 64


class TestArenaLifecycle:
    def test_segments_unlinked_on_clean_exit(self):
        with SharedArena() as arena:
            arena.share_array(np.arange(10))
            names = arena.segment_names
            assert len(names) == 1
        assert all(_segment_gone(name) for name in names)

    def test_segments_unlinked_when_body_raises(self):
        names = ()
        with pytest.raises(RuntimeError, match="boom"):
            with SharedArena() as arena:
                arena.share_array(np.arange(100))
                arena.share_array(np.ones((4, 4)))
                names = arena.segment_names
                raise RuntimeError("boom")
        assert len(names) == 2
        assert all(_segment_gone(name) for name in names)

    def test_close_is_idempotent(self):
        arena = SharedArena()
        arena.share_array(np.arange(5))
        arena.close()
        arena.close()
        assert arena.segment_names == ()

    def test_share_array_after_close_refuses(self):
        """A segment created after close() would have no owner to
        unlink it — the arena must refuse instead of leaking."""
        arena = SharedArena()
        arena.close()
        with pytest.raises(RuntimeError, match="closed SharedArena"):
            arena.share_array(np.arange(5))

    def test_attachment_cache_evicts_on_new_arena(self):
        cache = AttachmentCache()
        with SharedArena() as first:
            spec_a = first.share_array(np.arange(4))
            cache.attach(spec_a)
            assert len(cache) == 1
            with SharedArena() as second:
                spec_b = second.share_array(np.arange(8))
                cache.attach(spec_b)  # new arena token evicts the old map
                assert len(cache) == 1
        cache.release()
        assert len(cache) == 0
