"""Property tests for the pool-parallel packed-kernel dispatch layer.

The layer's whole contract is **parallel ≡ serial, bit-identically**:
each worker runs the unmodified serial kernel on a contiguous row
slice shipped through a SharedArena, and the slices concatenate in row
order.  These tests check that identity over randomized ragged row
splits (row counts that don't divide evenly across workers, grids with
partial tail words) on both popcount implementations, plus every
auto-fallback path the module promises.
"""

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch, packed, parallel
from repro.backend.shared import HAVE_SHARED_MEMORY
from repro.pipeline.runner import Runner
from repro.units import SimulationGrid

pytestmark = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="no POSIX shared memory on this host"
)

#: Ragged shapes: (n_rows, n_samples) pairs where neither the row axis
#: nor the slot axis divides evenly (partial words, odd splits).
RAGGED_SHAPES = [(5, 63), (17, 129), (33, 1000), (97, 257)]


def _random_words(rng, n_rows, n_samples, density=0.15):
    grid = SimulationGrid(n_samples=n_samples, dt=1e-12)
    raster = rng.random((n_rows, n_samples)) < density
    return SpikeTrainBatch.from_raster(raster, grid).packed_words()


@pytest.fixture(scope="module")
def runner():
    with Runner(jobs=2) as pool:
        yield pool


@pytest.fixture(params=[0, 1])
def rng(request):
    return np.random.default_rng(request.param)


class TestRowChunkBounds:
    @pytest.mark.parametrize("n_rows", [1, 2, 3, 7, 64, 97])
    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 5, 16, 200])
    def test_partition_properties(self, n_rows, n_chunks):
        bounds = packed.row_chunk_bounds(n_rows, n_chunks)
        # Contiguous cover of [0, n_rows), no empty ranges.
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n_rows
        for (lo, hi), (nlo, _unused) in zip(bounds, bounds[1:]):
            assert hi == nlo
        assert all(hi > lo for lo, hi in bounds)
        assert len(bounds) <= min(n_chunks, n_rows)
        # Even: ranges differ by at most one row.
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_pure_function_of_inputs(self):
        assert packed.row_chunk_bounds(97, 5) == packed.row_chunk_bounds(97, 5)


class TestParallelIdentity:
    @pytest.mark.parametrize("shape", RAGGED_SHAPES)
    def test_pairwise_counts(self, rng, runner, shape):
        a = _random_words(rng, *shape)
        b = _random_words(rng, 11, shape[1])
        serial = packed.pairwise_counts(a, b)
        parallel_out = parallel.pairwise_counts(
            a, b, runner=runner, min_rows=1
        )
        assert parallel_out.dtype == serial.dtype
        assert np.array_equal(parallel_out, serial)

    @pytest.mark.parametrize("shape", RAGGED_SHAPES)
    def test_coincidence_any(self, rng, runner, shape):
        a = _random_words(rng, *shape)
        b = _random_words(rng, 7, shape[1])
        serial = packed.coincidence_any(a, b)
        parallel_out = parallel.coincidence_any(
            a, b, runner=runner, min_rows=1
        )
        assert parallel_out.dtype == serial.dtype
        assert np.array_equal(parallel_out, serial)

    @pytest.mark.parametrize("shape", RAGGED_SHAPES)
    def test_first_coincident_slots(self, rng, runner, shape):
        wires = _random_words(rng, *shape)
        refs = _random_words(rng, 9, shape[1])
        serial = packed.first_coincident_slots(wires, refs)
        parallel_out = parallel.first_coincident_slots(
            wires, refs, runner=runner, min_rows=1
        )
        assert parallel_out.dtype == serial.dtype
        assert np.array_equal(parallel_out, serial)

    @pytest.mark.parametrize("shape", RAGGED_SHAPES)
    def test_unpack_rows(self, rng, runner, shape):
        words = _random_words(rng, *shape)
        values, ptr = packed.unpack_rows(words)
        p_values, p_ptr = parallel.unpack_rows(words, runner=runner, min_rows=1)
        assert np.array_equal(p_values, values)
        assert np.array_equal(p_ptr, ptr)
        assert p_ptr.dtype == ptr.dtype

    def test_unpack_rows_with_empty_rows(self, runner):
        # Rows with no spikes exercise the CSR re-basing across slices.
        grid = SimulationGrid(n_samples=200, dt=1e-12)
        raster = np.zeros((12, 200), dtype=bool)
        raster[3, 17] = True
        raster[10, [5, 199]] = True
        words = SpikeTrainBatch.from_raster(raster, grid).packed_words()
        values, ptr = packed.unpack_rows(words)
        p_values, p_ptr = parallel.unpack_rows(words, runner=runner, min_rows=1)
        assert np.array_equal(p_values, values)
        assert np.array_equal(p_ptr, ptr)

    def test_lut_popcount_path(self, rng, monkeypatch):
        """Parallel ≡ serial with the 16-bit-LUT popcount in the workers.

        The pool forks after the patch, so workers inherit the LUT
        implementation — the path hosts without ``np.bitwise_count``
        always take.
        """
        monkeypatch.setattr(packed, "popcount", packed._popcount_lut)
        a = _random_words(rng, 33, 1000)
        b = _random_words(rng, 11, 1000)
        serial = packed.pairwise_counts(a, b)
        with Runner(jobs=2) as pool:
            parallel_out = parallel.pairwise_counts(
                a, b, runner=pool, min_rows=1
            )
        assert np.array_equal(parallel_out, serial)

    def test_batch_overlap_matrix_accepts_runner(self, rng, runner):
        grid = SimulationGrid(n_samples=257, dt=1e-12)
        raster = rng.random((40, 257)) < 0.2
        batch = SpikeTrainBatch.from_raster(raster, grid)
        assert np.array_equal(
            batch.pairwise_overlap_matrix(runner=runner),
            batch.pairwise_overlap_matrix(),
        )


class TestFallbacks:
    def test_no_runner_runs_in_process(self, rng):
        a = _random_words(rng, 20, 129)
        b = _random_words(rng, 5, 129)
        assert np.array_equal(
            parallel.pairwise_counts(a, b, runner=None, min_rows=1),
            packed.pairwise_counts(a, b),
        )

    def test_single_job_runner_runs_in_process(self, rng):
        a = _random_words(rng, 20, 129)
        b = _random_words(rng, 5, 129)
        with Runner(jobs=1) as pool:
            assert np.array_equal(
                parallel.pairwise_counts(a, b, runner=pool, min_rows=1),
                packed.pairwise_counts(a, b),
            )

    def test_small_batches_stay_in_process(self, rng, runner):
        a = _random_words(rng, 20, 129)
        b = _random_words(rng, 5, 129)
        # min_rows above the batch: the pool must not be touched, so a
        # poisoned submit would raise if dispatch were attempted.
        out = parallel.pairwise_counts(a, b, runner=runner, min_rows=64)
        assert np.array_equal(out, packed.pairwise_counts(a, b))

    def test_single_row_never_dispatches(self, rng, runner):
        a = _random_words(rng, 1, 129)
        b = _random_words(rng, 5, 129)
        out = parallel.pairwise_counts(a, b, runner=runner, min_rows=1)
        assert np.array_equal(out, packed.pairwise_counts(a, b))

    def test_default_threshold_exported(self):
        assert parallel.DEFAULT_MIN_ROWS >= 2
