"""The memmap residency tier: persist packed words, map them back.

``mmapstore`` is the third way a packed bitset reaches a batch (after
in-process packing and shared-memory attachment): a word-aligned
``.npy`` on disk, adopted zero-copy as a packed-primary view.  The
contract under test: write → map round-trips bit-identically, row
windows slice before any page is touched, geometry checks catch the
wrong file, and the mapping is read-only.
"""

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch, mmapstore
from repro.backend.packed import n_packed_words
from repro.errors import SpikeTrainError
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=1000, dt=1e-12)


@pytest.fixture()
def batch():
    rng = np.random.default_rng(12)
    return SpikeTrainBatch.from_raster(
        rng.random((6, GRID.n_samples)) < 0.05, GRID
    )


class TestWordsRoundTrip:
    def test_write_then_open_is_bit_identical(self, tmp_path, batch):
        path = mmapstore.write_words(tmp_path / "b.npy", batch.packed_words())
        words = mmapstore.open_words(path, GRID.n_samples)
        assert words.dtype == np.uint64
        assert np.array_equal(words, batch.packed_words())

    def test_open_words_is_read_only(self, tmp_path, batch):
        path = mmapstore.write_words(tmp_path / "b.npy", batch.packed_words())
        words = mmapstore.open_words(path)
        with pytest.raises((ValueError, OSError)):
            words[0, 0] = 1

    def test_row_window(self, tmp_path, batch):
        path = mmapstore.write_words(tmp_path / "b.npy", batch.packed_words())
        window = mmapstore.open_words(path, GRID.n_samples, rows=(2, 5))
        assert np.array_equal(window, batch.packed_words()[2:5])

    def test_words_shape_reads_header_only(self, tmp_path, batch):
        path = mmapstore.write_words(tmp_path / "b.npy", batch.packed_words())
        assert mmapstore.words_shape(path) == (
            6, n_packed_words(GRID.n_samples),
        )

    def test_creates_parent_directories(self, tmp_path, batch):
        path = mmapstore.write_words(
            tmp_path / "deep" / "er" / "b.npy", batch.packed_words()
        )
        assert path.exists()

    def test_wrong_word_width_rejected(self, tmp_path, batch):
        path = mmapstore.write_words(tmp_path / "b.npy", batch.packed_words())
        with pytest.raises(SpikeTrainError, match="word"):
            mmapstore.open_words(path, n_samples=GRID.n_samples * 2)

    def test_wrong_dtype_rejected(self, tmp_path):
        bad = tmp_path / "f.npy"
        np.save(bad, np.zeros((3, 4), dtype=np.float64))
        with pytest.raises(SpikeTrainError):
            mmapstore.open_words(bad)
        with pytest.raises(SpikeTrainError):
            mmapstore.words_shape(bad)

    def test_one_dimensional_rejected(self, tmp_path):
        bad = tmp_path / "flat.npy"
        np.save(bad, np.zeros(16, dtype=np.uint64))
        with pytest.raises(SpikeTrainError):
            mmapstore.open_words(bad)


class TestBatchAdoption:
    def test_memmap_round_trip_is_packed_primary(self, tmp_path, batch):
        path = batch.to_memmap(tmp_path / "b.npy")
        mapped = SpikeTrainBatch.from_memmap(path, GRID)
        assert mapped.packed_materialised
        assert not mapped.csr_materialised
        assert not mapped.raster_materialised
        assert mapped == batch

    def test_windowed_load(self, tmp_path, batch):
        path = batch.to_memmap(tmp_path / "b.npy")
        window = SpikeTrainBatch.from_memmap(path, GRID, rows=(1, 4))
        assert window.packed_materialised and not window.csr_materialised
        assert window == batch.select_rows([1, 2, 3])

    def test_receivers_never_decode_the_mapping(self, tmp_path, batch):
        path = batch.to_memmap(tmp_path / "b.npy")
        mapped = SpikeTrainBatch.from_memmap(path, GRID)
        assert mapped.receiver_backend() == "bitset"
        counts = mapped.counts()
        assert not mapped.csr_materialised and not mapped.raster_materialised
        assert np.array_equal(counts, batch.counts())

    def test_grid_mismatch_rejected(self, tmp_path, batch):
        path = batch.to_memmap(tmp_path / "b.npy")
        other = SimulationGrid(n_samples=2 * GRID.n_samples, dt=GRID.dt)
        with pytest.raises(SpikeTrainError):
            SpikeTrainBatch.from_memmap(path, other)

    def test_silent_batch_round_trips(self, tmp_path):
        silent = SpikeTrainBatch.from_trains(
            [SpikeTrain.empty(GRID), SpikeTrain([3, 999], GRID)]
        )
        path = silent.to_memmap(tmp_path / "s.npy")
        assert SpikeTrainBatch.from_memmap(path, GRID) == silent
