"""Randomized equivalence: every backend and batch path is bit-identical.

The backend layer's contract is that representation is invisible:
sorted-merge, dense-raster and packed-bitset set algebra agree bit for
bit, and every batched receiver (identify, detect_members, linear_scan,
decode, query) reproduces its scalar counterpart exactly.  These tests
drive all of them over randomized seeds.
"""

import numpy as np
import pytest

from repro.backend import (
    RASTER_DENSITY_THRESHOLD,
    SpikeTrainBatch,
    available_backends,
    get_backend,
    select_backend,
    use_backend,
)
from repro.hyperspace.basis import HyperspaceBasis
from repro.hyperspace.superposition import (
    decode_superposition,
    decode_superposition_batch,
)
from repro.logic.correlator import CoincidenceCorrelator
from repro.orthogonator.demux import DemuxOrthogonator
from repro.orthogonator.intersection import IntersectionOrthogonator
from repro.search.classical import linear_scan, linear_scan_batch
from repro.search.superposition_search import SuperpositionDatabase
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

OPS = ["union", "intersection", "difference", "symmetric_difference"]


def random_train(rng, grid, density):
    n = max(1, int(density * grid.n_samples))
    indices = rng.choice(grid.n_samples, size=n, replace=False)
    return SpikeTrain(indices, grid)


@pytest.fixture(params=[0, 1, 2, 3, 4])
def rng(request):
    return np.random.default_rng(request.param)


class TestBackendSetOps:
    @pytest.mark.parametrize("density", [0.002, 0.05, 0.4])
    @pytest.mark.parametrize("op", OPS)
    def test_all_backends_bit_identical(self, rng, density, op):
        grid = SimulationGrid(n_samples=int(rng.integers(512, 4096)), dt=1e-12)
        a = random_train(rng, grid, density)
        b = random_train(rng, grid, density)
        results = {}
        for name in available_backends():
            with use_backend(name):
                results[name] = getattr(a, op)(b).indices
        reference = results["sorted"]
        for name, indices in results.items():
            assert np.array_equal(indices, reference), (name, op)

    @pytest.mark.parametrize("op", OPS)
    def test_backend_api_direct(self, rng, op):
        grid = SimulationGrid(n_samples=1024, dt=1e-12)
        a = random_train(rng, grid, 0.1).indices
        b = random_train(rng, grid, 0.1).indices
        outputs = [
            getattr(get_backend(name), op)(a, b, grid.n_samples)
            for name in available_backends()
        ]
        for out in outputs[1:]:
            assert np.array_equal(out, outputs[0])

    def test_empty_operands(self):
        grid = SimulationGrid(n_samples=256, dt=1e-12)
        a = SpikeTrain.empty(grid)
        b = SpikeTrain([0, 255], grid)
        for name in available_backends():
            with use_backend(name):
                assert (a | b) == b
                assert len(a & b) == 0
                assert (b - a) == b
                assert (a ^ b) == b

    def test_auto_selection_by_density(self):
        assert select_backend(0, 65536).name == "sorted"
        sparse = int(RASTER_DENSITY_THRESHOLD * 65536) - 1
        assert select_backend(sparse, 65536).name == "sorted"
        dense = int(RASTER_DENSITY_THRESHOLD * 65536) + 1
        assert select_backend(dense, 65536).name == "raster"

    def test_use_backend_pins_selection(self):
        with use_backend("bitset"):
            assert select_backend(1, 65536).name == "bitset"
        assert select_backend(1, 65536).name == "sorted"


@pytest.fixture
def basis(rng):
    grid = SimulationGrid(n_samples=4096, dt=1e-12)
    source = random_train(rng, grid, 0.2)
    output = DemuxOrthogonator.with_outputs(8).transform(source)
    return HyperspaceBasis.from_orthogonator(output)


def random_wires(rng, basis, n_wires):
    """Wires = random element encodes, some with injected foreign spikes."""
    wires = []
    for _unused in range(n_wires):
        element = int(rng.integers(basis.size))
        wire = basis.encode(element)
        if rng.random() < 0.5:
            extra = random_train(rng, basis.grid, 0.01)
            wire = wire | extra
        wires.append(wire)
    return wires


class TestBatchedIdentification:
    def test_identify_batch_matches_scalar(self, rng, basis):
        correlator = CoincidenceCorrelator(basis)
        wires = random_wires(rng, basis, 32)
        batch = SpikeTrainBatch.from_trains(wires)
        batched = correlator.identify_batch(batch).results()
        for wire, got in zip(wires, batched):
            assert got == correlator.identify(wire)

    def test_identify_batch_with_start_slot(self, rng, basis):
        correlator = CoincidenceCorrelator(basis)
        wires = random_wires(rng, basis, 16)
        batch = SpikeTrainBatch.from_trains(wires)
        start = int(rng.integers(1, basis.grid.n_samples // 2))
        batched = correlator.identify_batch(batch, start_slot=start).results()
        for wire, got in zip(wires, batched):
            assert got == correlator.identify(wire, start_slot=start)

    def test_identify_batch_missing_none(self, basis):
        silent = SpikeTrain.empty(basis.grid)
        batch = SpikeTrainBatch.from_trains([basis.encode(0), silent])
        results = CoincidenceCorrelator(basis).identify_batch(
            batch, missing="none"
        ).results()
        assert results[0] is not None and results[0].element == 0
        assert results[1] is None

    def test_identify_batch_missing_raise(self, basis):
        from repro.errors import IdentificationError

        silent = SpikeTrain.empty(basis.grid)
        batch = SpikeTrainBatch.from_trains([basis.encode(0), silent])
        with pytest.raises(IdentificationError):
            CoincidenceCorrelator(basis).identify_batch(batch)

    def test_detect_members_batch_matches_scalar(self, rng, basis):
        correlator = CoincidenceCorrelator(basis)
        wires = []
        for _unused in range(16):
            members = rng.choice(
                basis.size, size=int(rng.integers(0, basis.size + 1)), replace=False
            )
            wires.append(basis.encode_set(members.tolist()))
        batch = SpikeTrainBatch.from_trains(wires)
        batched = correlator.detect_members_batch(batch).as_dicts()
        for wire, got in zip(wires, batched):
            assert got == correlator.detect_members(wire)

    def test_detect_members_batch_until_slot(self, rng, basis):
        correlator = CoincidenceCorrelator(basis)
        wires = random_wires(rng, basis, 8)
        batch = SpikeTrainBatch.from_trains(wires)
        limit = int(rng.integers(1, basis.grid.n_samples))
        batched = correlator.detect_members_batch(batch, until_slot=limit)
        for wire, got in zip(wires, batched.as_dicts()):
            assert got == correlator.detect_members(wire, until_slot=limit)


class TestBatchedDecode:
    def test_decode_batch_matches_scalar(self, rng, basis):
        selections = [
            rng.choice(basis.size, size=int(rng.integers(0, 5)), replace=False).tolist()
            for _unused in range(12)
        ]
        batch = basis.encode_batch(selections)
        decoded = decode_superposition_batch(basis, batch)
        for keys, value, wire in zip(selections, decoded, batch):
            assert value == decode_superposition(basis, wire)
            assert value.members == frozenset(int(k) for k in keys)

    def test_decode_batch_strict_rejects_foreign(self, rng, basis):
        foreign = basis.grid.n_samples - 1
        while basis.owner_of_slot(foreign) is not None:
            foreign -= 1
        wire = basis.encode(0) | SpikeTrain([foreign], basis.grid)
        batch = SpikeTrainBatch.from_trains([basis.encode(1), wire])
        from repro.errors import HyperspaceError

        with pytest.raises(HyperspaceError):
            decode_superposition_batch(basis, batch, strict=True)
        decoded = decode_superposition_batch(basis, batch, strict=False)
        assert decoded[1].members == frozenset([0])


class TestBatchedSearch:
    def test_linear_scan_batch_matches_scalar(self, rng):
        database = rng.integers(0, 50, size=40).tolist()
        targets = rng.integers(0, 60, size=25).tolist()
        batched = linear_scan_batch(database, targets)
        for target, got in zip(targets, batched):
            assert got == linear_scan(database, target)

    def test_linear_scan_batch_empty_database(self):
        results = linear_scan_batch([], [1, 2])
        assert all(not r.found and r.queries == 0 for r in results)

    def test_query_batch_matches_scalar(self, rng, basis):
        database = SuperpositionDatabase(basis)
        members = rng.choice(
            basis.size, size=int(rng.integers(1, basis.size)), replace=False
        )
        database.load(members.tolist())
        states = list(range(basis.size))
        batched = database.query_batch(states)
        for state, got in zip(states, batched):
            assert got == database.query(state)
        assert database.verify()

    def test_query_batch_with_start_slot(self, rng, basis):
        database = SuperpositionDatabase(basis)
        database.load([0, 2, 4])
        start = int(rng.integers(1, basis.grid.n_samples // 4))
        for state, got in zip(
            range(basis.size), database.query_batch(range(basis.size), start)
        ):
            assert got == database.query(state, start_slot=start)


class TestPackedReceiverEquivalence:
    """Every batched receiver, pinned to each backend, bit for bit.

    The packed kernels (``use_backend("bitset")``) and the CSR walks
    (``"sorted"``/``"raster"`` pins) must agree on identification,
    membership and decode over randomized wires — including wires with
    injected foreign spikes.
    """

    @pytest.mark.parametrize("backend", ["sorted", "raster", "bitset"])
    def test_identify_batch_all_backends(self, rng, basis, backend):
        correlator = CoincidenceCorrelator(basis)
        wires = random_wires(rng, basis, 24)
        batch = SpikeTrainBatch.from_trains(wires)
        start = int(rng.integers(0, basis.grid.n_samples // 2))
        reference = correlator.identify_batch(
            batch, start_slot=start, missing="none"
        ).results()
        with use_backend(backend):
            pinned = correlator.identify_batch(
                batch, start_slot=start, missing="none"
            ).results()
        assert pinned == reference

    @pytest.mark.parametrize("backend", ["sorted", "raster", "bitset"])
    def test_detect_members_batch_all_backends(self, rng, basis, backend):
        correlator = CoincidenceCorrelator(basis)
        batch = SpikeTrainBatch.from_trains(random_wires(rng, basis, 12))
        limit = int(rng.integers(1, basis.grid.n_samples))
        reference = correlator.detect_members_batch(batch, until_slot=limit)
        with use_backend(backend):
            pinned = correlator.detect_members_batch(batch, until_slot=limit)
        assert np.array_equal(pinned.first_slots, reference.first_slots)

    def test_packed_primary_receivers_never_decode(self, rng, basis):
        """A packed-primary batch is identified and decoded on the
        bitset itself; the CSR must stay unmaterialised throughout."""
        correlator = CoincidenceCorrelator(basis)
        wires = [basis.encode(int(rng.integers(basis.size))) for _ in range(16)]
        csr_batch = SpikeTrainBatch.from_trains(wires)
        primary = SpikeTrainBatch.from_packed(
            csr_batch.packbits(), csr_batch.grid
        )
        identified = correlator.identify_batch(primary)
        members = correlator.detect_members_batch(primary)
        decoded = decode_superposition_batch(basis, primary)
        assert not primary.csr_materialised
        assert identified.results() == correlator.identify_batch(
            csr_batch
        ).results()
        reference = correlator.detect_members_batch(csr_batch)
        assert np.array_equal(members.first_slots, reference.first_slots)
        assert decoded == decode_superposition_batch(basis, csr_batch)

    def test_encode_batch_stays_packed_and_matches_scalar(self, rng, basis):
        selections = [
            rng.choice(basis.size, size=int(rng.integers(0, 4)), replace=False).tolist()
            for _unused in range(8)
        ]
        batch = basis.encode_batch(selections)
        assert batch.packed_materialised and not batch.csr_materialised
        assert batch.to_trains() == [
            basis.encode_set(keys) for keys in selections
        ]


class TestOrthogonatorBatchOutputs:
    def test_demux_transform_batch_matches(self, rng):
        grid = SimulationGrid(n_samples=2048, dt=1e-12)
        source = random_train(rng, grid, 0.3)
        device = DemuxOrthogonator.with_outputs(5)
        scalar = device.transform(source)
        batched = device.transform_batch(source)
        assert batched.labels == scalar.labels
        assert batched.batch.to_trains() == list(scalar.trains)
        assert batched.batch.is_mutually_orthogonal()

    def test_intersection_transform_batch_matches(self, rng):
        grid = SimulationGrid(n_samples=2048, dt=1e-12)
        inputs = [random_train(rng, grid, 0.15) for _unused in range(3)]
        device = IntersectionOrthogonator(3)
        scalar = device.transform(*inputs)
        batched = device.transform_batch(*inputs)
        assert batched.labels == scalar.labels
        assert batched.batch.to_trains() == list(scalar.trains)
        assert batched.to_output(verify=True).labels == scalar.labels

    def test_intersection_transform_batch_empty(self):
        grid = SimulationGrid(n_samples=64, dt=1e-12)
        device = IntersectionOrthogonator(2)
        batched = device.transform_batch(
            SpikeTrain.empty(grid), SpikeTrain.empty(grid)
        )
        assert batched.batch.total_spikes == 0
        assert len(batched) == 3
