"""Tests for repro.backend.batch: the SpikeTrainBatch container."""

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch
from repro.errors import SpikeTrainError
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=128, dt=1e-12)


@pytest.fixture
def trains():
    return [
        SpikeTrain([0, 10, 20], GRID),
        SpikeTrain([5, 15], GRID),
        SpikeTrain.empty(GRID),
        SpikeTrain([127], GRID),
    ]


@pytest.fixture
def batch(trains):
    return SpikeTrainBatch.from_trains(trains)


class TestConstruction:
    def test_roundtrip_from_trains(self, batch, trains):
        assert batch.n_trains == 4
        assert batch.to_trains() == trains

    def test_counts_and_totals(self, batch):
        assert batch.counts().tolist() == [3, 2, 0, 1]
        assert batch.total_spikes == 6
        assert len(batch) == 4

    def test_from_train_adapter(self, trains):
        one = SpikeTrainBatch.from_train(trains[0])
        assert one.n_trains == 1
        assert one.row(0) == trains[0]
        assert trains[0].to_batch() == one

    def test_raster_roundtrip(self, batch):
        rebuilt = SpikeTrainBatch.from_raster(batch.raster, GRID)
        assert rebuilt == batch

    def test_packbits_roundtrip(self, batch):
        packed = batch.packbits()
        assert packed.shape == (4, 16)
        assert SpikeTrainBatch.from_packed(packed, GRID) == batch

    def test_empty_batch(self):
        empty = SpikeTrainBatch.empty(3, GRID)
        assert empty.total_spikes == 0
        assert all(len(t) == 0 for t in empty)

    def test_mixed_grids_rejected(self, trains):
        other = SimulationGrid(n_samples=128, dt=2e-12)
        with pytest.raises(SpikeTrainError):
            SpikeTrainBatch.from_trains([trains[0], SpikeTrain([1], other)])

    def test_no_trains_rejected(self):
        with pytest.raises(SpikeTrainError):
            SpikeTrainBatch.from_trains([])

    def test_out_of_range_slot_rejected(self):
        with pytest.raises(SpikeTrainError):
            SpikeTrainBatch(
                np.array([200]), np.array([0, 1]), GRID
            )

    def test_bad_raster_shape_rejected(self):
        with pytest.raises(SpikeTrainError):
            SpikeTrainBatch.from_raster(np.zeros((2, 64), dtype=bool), GRID)


class TestAccessors:
    def test_row_negative_index(self, batch, trains):
        assert batch.row(-1) == trains[-1]

    def test_row_out_of_range(self, batch):
        with pytest.raises(SpikeTrainError):
            batch.row(4)

    def test_iteration_yields_trains(self, batch, trains):
        assert list(batch) == trains

    def test_select_rows(self, batch, trains):
        sub = batch.select_rows([3, 1])
        assert sub.to_trains() == [trains[3], trains[1]]

    def test_density(self, batch):
        assert batch.density() == pytest.approx(6 / (4 * 128))

    def test_raster_is_readonly(self, batch):
        with pytest.raises((ValueError, RuntimeError)):
            batch.raster[0, 0] = True


class TestSetAlgebra:
    def test_rowwise_ops_match_scalar(self, trains):
        a = SpikeTrainBatch.from_trains(trains)
        shifted = [t.shifted(1) for t in trains]
        b = SpikeTrainBatch.from_trains(shifted)
        for op in ("union", "intersection", "difference", "symmetric_difference"):
            got = getattr(a, op)(b).to_trains()
            want = [getattr(x, op)(y) for x, y in zip(trains, shifted)]
            assert got == want, op

    def test_broadcast_single_row(self, trains, batch):
        probe = SpikeTrainBatch.from_train(SpikeTrain([0, 5, 127], GRID))
        got = batch.intersection(probe).to_trains()
        want = [t & SpikeTrain([0, 5, 127], GRID) for t in trains]
        assert got == want

    def test_incompatible_rows_rejected(self, batch):
        other = SpikeTrainBatch.from_trains(
            [SpikeTrain([1], GRID), SpikeTrain([2], GRID)]
        )
        with pytest.raises(SpikeTrainError):
            batch | other

    def test_mismatched_grid_rejected(self, batch):
        other_grid = SimulationGrid(n_samples=128, dt=2e-12)
        other = SpikeTrainBatch.from_train(SpikeTrain([1], other_grid))
        with pytest.raises(SpikeTrainError):
            batch & other

    def test_any_union(self, batch, trains):
        want = trains[0]
        for t in trains[1:]:
            want = want | t
        assert batch.any_union() == want

    def test_overlap_counts(self, batch):
        counts = batch.overlap_counts(batch)
        assert counts.tolist() == [3, 2, 0, 1]

    def test_pairwise_overlap_matrix(self, batch):
        matrix = batch.pairwise_overlap_matrix()
        assert matrix.shape == (4, 4)
        assert np.array_equal(np.diag(matrix), [3, 2, 0, 1])
        assert matrix[0, 1] == 0

    def test_orthogonality_check(self, trains):
        assert SpikeTrainBatch.from_trains(trains).is_mutually_orthogonal()
        overlapping = SpikeTrainBatch.from_trains(
            [SpikeTrain([1, 2], GRID), SpikeTrain([2, 3], GRID)]
        )
        assert not overlapping.is_mutually_orthogonal()
