"""Tests for repro.simulator.components."""

import pytest

from repro.errors import SimulationError
from repro.simulator.components import (
    AntiCoincidenceGate,
    CoincidenceGate,
    CyclicDemux,
    DelayLine,
    Probe,
    RefractoryFilter,
    SpikeSource,
)
from repro.simulator.engine import Engine
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=200, dt=1e-12)


def run_pair(component, train_a, train_b=None, until=None):
    """Wire one or two sources into a 2-port component, return probe slots."""
    engine = Engine(GRID)
    probe = Probe("p")
    source_a = SpikeSource("a", train_a)
    if train_b is not None:
        source_b = SpikeSource("b", train_b)
    if isinstance(component, CoincidenceGate):
        engine.connect(source_a, "out", component, "in0")
        engine.connect(source_b, "out", component, "in1")
    elif isinstance(component, AntiCoincidenceGate):
        engine.connect(source_a, "out", component, "a")
        engine.connect(source_b, "out", component, "b")
    else:
        engine.connect(source_a, "out", component, "in")
    engine.connect(component, "out", probe, "in")
    engine.run(until=until if until is not None else GRID.n_samples + 64)
    return probe.slots


class TestDelayLine:
    def test_delay(self):
        slots = run_pair(DelayLine("d", 7), SpikeTrain([1, 10], GRID))
        assert slots == [8, 17]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            DelayLine("d", -1)


class TestCyclicDemux:
    def test_round_robin(self):
        engine = Engine(GRID)
        source = SpikeSource("s", SpikeTrain([0, 10, 20, 30, 40], GRID))
        demux = CyclicDemux("d", 3)
        probes = [Probe(f"p{i}") for i in range(1, 4)]
        engine.connect(source, "out", demux, "in")
        for i, probe in enumerate(probes, start=1):
            engine.connect(demux, f"out{i}", probe, "in")
        engine.run()
        assert probes[0].slots == [0, 30]
        assert probes[1].slots == [10, 40]
        assert probes[2].slots == [20]

    def test_invalid_outputs(self):
        with pytest.raises(SimulationError):
            CyclicDemux("d", 0)


class TestCoincidenceGate:
    def test_same_slot_coincidence(self):
        slots = run_pair(
            CoincidenceGate("c", window=0),
            SpikeTrain([5, 10, 20], GRID),
            SpikeTrain([10, 21], GRID),
        )
        assert slots == [10]

    def test_windowed_coincidence(self):
        slots = run_pair(
            CoincidenceGate("c", window=2),
            SpikeTrain([10], GRID),
            SpikeTrain([12], GRID),
        )
        assert slots == [12]

    def test_re_arms_after_fire(self):
        slots = run_pair(
            CoincidenceGate("c", window=0),
            SpikeTrain([10, 20], GRID),
            SpikeTrain([10, 20], GRID),
        )
        assert slots == [10, 20]

    def test_needs_two_inputs(self):
        with pytest.raises(SimulationError):
            CoincidenceGate("c", n_inputs=1)

    def test_negative_window_rejected(self):
        with pytest.raises(SimulationError):
            CoincidenceGate("c", window=-1)


class TestAntiCoincidenceGate:
    def test_passes_unvetoed(self):
        gate = AntiCoincidenceGate("x", window=0)
        slots = run_pair(gate, SpikeTrain([5, 10], GRID), SpikeTrain([10], GRID))
        # Spike at 5 passes (emitted at 5 + latency); 10 vetoed.
        assert slots == [5 + gate.latency]

    def test_future_veto_applies(self):
        gate = AntiCoincidenceGate("x", window=2)
        # B at 11 vetoes A at 10 (|11-10| <= 2) even though B is later.
        slots = run_pair(gate, SpikeTrain([10], GRID), SpikeTrain([11], GRID))
        assert slots == []

    def test_veto_window_boundary(self):
        gate = AntiCoincidenceGate("x", window=2)
        slots = run_pair(gate, SpikeTrain([10], GRID), SpikeTrain([13], GRID))
        assert slots == [10 + gate.latency]

    def test_latency_constant(self):
        gate = AntiCoincidenceGate("x", window=3)
        assert gate.latency == 4

    def test_foreign_port_rejected(self):
        engine = Engine(GRID)
        gate = AntiCoincidenceGate("x")
        engine.add(gate)
        engine.schedule(gate, "weird", 0)
        with pytest.raises(SimulationError):
            engine.run()


class TestRefractoryFilter:
    def test_suppresses_close_spikes(self):
        slots = run_pair(
            RefractoryFilter("r", dead_time=5),
            SpikeTrain([10, 12, 14, 30], GRID),
        )
        assert slots == [10, 30]

    def test_zero_dead_time_passes_all_distinct(self):
        slots = run_pair(
            RefractoryFilter("r", dead_time=0),
            SpikeTrain([10, 12], GRID),
        )
        assert slots == [10, 12]

    def test_negative_dead_time_rejected(self):
        with pytest.raises(SimulationError):
            RefractoryFilter("r", dead_time=-1)


class TestSpikeSource:
    def test_foreign_port_rejected(self):
        engine = Engine(GRID)
        source = SpikeSource("s", SpikeTrain([1], GRID))
        engine.add(source)
        engine.schedule(source, "bogus", 0)
        with pytest.raises(SimulationError):
            engine.run()
