"""Cross-validation: event-driven circuit execution vs Circuit.transmit.

Values must agree exactly.  Decision slots agree exactly for depth-1
gates; for deeper gates the event-driven execution may settle *earlier*
because its input correlators listen from t = 0, while the array model
conservatively restarts identification when the gate's latest input
becomes ready.  Both are valid self-timed disciplines; the array model
upper-bounds the event-driven latency (asserted below).
"""

import itertools

import pytest

from repro.errors import SimulationError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.circuits import Circuit
from repro.logic.gates import and_gate, not_gate, xor_gate
from repro.logic.synthesis import ripple_adder
from repro.simulator.circuit_runner import compile_circuit, run_circuit
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=512, dt=1e-12)


def make_basis(m: int) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 512, m), GRID) for k in range(m)])


@pytest.fixture
def b2():
    return make_basis(2)


@pytest.fixture
def b4():
    return make_basis(4)


class TestHalfAdder:
    def test_values_and_depth1_slots_match(self, b2):
        circuit = Circuit("half_adder", {"a": b2, "b": b2})
        circuit.add_gate("sum", xor_gate(b2), ["a", "b"])
        circuit.add_gate("carry", and_gate(b2), ["a", "b"])
        circuit.mark_output("sum")
        circuit.mark_output("carry")

        for a, b in itertools.product((0, 1), repeat=2):
            wires = {"a": b2.encode(a), "b": b2.encode(b)}
            array = circuit.transmit(wires)
            values, slots = run_circuit(circuit, wires)
            assert values["sum"] == array.values["sum"]
            assert values["carry"] == array.values["carry"]
            # Depth-1 gates: identical decision slots.
            assert slots["sum"] == array.decision_slots["sum"]
            assert slots["carry"] == array.decision_slots["carry"]


class TestRippleAdder:
    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (3, 1, 0), (15, 15, 1),
                                         (10, 5, 1), (7, 9, 0)])
    def test_radix4_adder_agrees(self, b4, a, b, cin):
        adder = ripple_adder(2, b4)
        assignments = {"cin": cin}
        for d in range(2):
            assignments[f"a{d}"] = (a // 4**d) % 4
            assignments[f"b{d}"] = (b // 4**d) % 4
        wires = {name: b4.encode(v) for name, v in assignments.items()}

        array = adder.transmit(wires)
        values, slots = run_circuit(adder, wires)
        for signal in ("s0", "s1", "c1", "c2"):
            assert values[signal] == array.values[signal], signal
        # Event-driven settles no later than the conservative array model.
        for signal, slot in slots.items():
            assert slot <= array.decision_slots[signal]


class TestChain:
    def test_inverter_chain_values(self, b2):
        circuit = Circuit("chain", {"a": b2})
        previous = "a"
        for depth in range(4):
            previous = circuit.add_gate(f"n{depth}", not_gate(b2), [previous])
        circuit.mark_output(previous)

        for value in (0, 1):
            values, _slots = run_circuit(circuit, {"a": b2.encode(value)})
            assert values["n3"] == value  # even number of inversions

    def test_probe_records_output_stream(self, b2):
        circuit = Circuit("buf", {"a": b2})
        circuit.add_gate("n", not_gate(b2), ["a"])
        circuit.mark_output("n")
        compiled = compile_circuit(circuit, {"a": b2.encode(0)})
        compiled.engine.run()
        probe_train = compiled.probes["n"].to_train(GRID)
        component = compiled.gate_components["n"]
        expected = b2.encode(1).window(component.decision_slot, GRID.n_samples)
        assert probe_train == expected


class TestErrors:
    def test_missing_wire(self, b2):
        circuit = Circuit("c", {"a": b2})
        circuit.add_gate("n", not_gate(b2), ["a"])
        with pytest.raises(SimulationError):
            compile_circuit(circuit, {})

    def test_unsettled_gate_detected(self, b2):
        circuit = Circuit("c", {"a": b2})
        circuit.add_gate("n", not_gate(b2), ["a"])
        with pytest.raises(SimulationError):
            run_circuit(circuit, {"a": SpikeTrain.empty(GRID)})
