"""Tests for repro.simulator.variation: delay Monte Carlo.

The bases here are sparse *random* spike sets — the paper's setting.
Under random per-connection delays the confidence-gated receivers must
never produce a wrong value: they either settle correctly (small
delays keep spikes on their owned slots? no — ANY nonzero shift moves
spikes off their exact slots, so misaligned gates stall) or stall
detectably.  Dense periodic bases would alias instead (Section 6), which
``test_periodic_basis_aliases_documented`` records.
"""

import itertools

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.circuits import Circuit
from repro.logic.gates import and_gate, xor_gate
from repro.logic.synthesis import ripple_adder
from repro.simulator.circuit_runner import compile_circuit
from repro.simulator.variation import (
    randomize_connection_delays,
    variation_monte_carlo,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=4096, dt=1e-12)


def sparse_random_basis(m: int, n_spikes: int = 256, seed: int = 0) -> HyperspaceBasis:
    rng = np.random.default_rng(seed)
    slots = np.sort(rng.choice(GRID.n_samples, size=n_spikes, replace=False))
    return HyperspaceBasis([SpikeTrain(slots[k::m], GRID) for k in range(m)])


@pytest.fixture
def b2():
    return sparse_random_basis(2)


@pytest.fixture
def half_adder(b2):
    circuit = Circuit("half_adder", {"a": b2, "b": b2})
    circuit.add_gate("sum", xor_gate(b2), ["a", "b"])
    circuit.add_gate("carry", and_gate(b2), ["a", "b"])
    circuit.mark_output("sum")
    circuit.mark_output("carry")
    return circuit


class TestRandomizeDelays:
    def test_zero_delay_noop(self, half_adder, b2):
        wires = {"a": b2.encode(1), "b": b2.encode(0)}
        compiled = compile_circuit(half_adder, wires)
        before = {k: list(v) for k, v in compiled.engine._connections.items()}
        randomize_connection_delays(compiled, 0, np.random.default_rng(0))
        after = compiled.engine._connections
        assert {k: list(v) for k, v in after.items()} == before

    def test_delays_bounded(self, half_adder, b2):
        wires = {"a": b2.encode(1), "b": b2.encode(0)}
        compiled = compile_circuit(half_adder, wires)
        randomize_connection_delays(compiled, 7, np.random.default_rng(0))
        for sinks in compiled.engine._connections.values():
            for _sink, _port, delay in sinks:
                assert 0 <= delay <= 7

    def test_negative_rejected(self, half_adder, b2):
        wires = {"a": b2.encode(1), "b": b2.encode(0)}
        compiled = compile_circuit(half_adder, wires)
        with pytest.raises(SimulationError):
            randomize_connection_delays(compiled, -1, np.random.default_rng(0))


class TestMonteCarlo:
    def test_never_silently_wrong(self, half_adder, b2):
        """The headline: wrong values never occur; stalls are detectable."""
        rng = np.random.default_rng(1)
        for a, b in itertools.product((0, 1), repeat=2):
            wires = {"a": b2.encode(a), "b": b2.encode(b)}
            outcome = variation_monte_carlo(
                half_adder, wires, max_extra_delay=16, trials=5, rng=rng
            )
            assert outcome.wrong_value_trials == 0

    def test_zero_delay_all_settle_correctly(self, half_adder, b2):
        rng = np.random.default_rng(2)
        wires = {"a": b2.encode(1), "b": b2.encode(1)}
        outcome = variation_monte_carlo(
            half_adder, wires, max_extra_delay=0, trials=2, rng=rng
        )
        assert outcome.wrong_value_trials == 0
        assert outcome.unsettled_trials == 0

    def test_large_delays_stall_not_corrupt(self, half_adder, b2):
        rng = np.random.default_rng(3)
        wires = {"a": b2.encode(0), "b": b2.encode(1)}
        outcome = variation_monte_carlo(
            half_adder, wires, max_extra_delay=64, trials=6, rng=rng
        )
        assert outcome.wrong_value_trials == 0
        # With delays far beyond the slot scale some trials must stall.
        assert outcome.unsettled_trials > 0

    def test_adder_never_wrong(self):
        b4 = sparse_random_basis(4, n_spikes=512, seed=5)
        adder = ripple_adder(1, b4)
        wires = {
            "a0": b4.encode(3),
            "b0": b4.encode(2),
            "cin": b4.encode(0),
        }
        rng = np.random.default_rng(4)
        outcome = variation_monte_carlo(
            adder, wires, max_extra_delay=32, trials=8, rng=rng
        )
        assert outcome.wrong_value_trials == 0
        assert outcome.trials == 8

    def test_trials_validated(self, half_adder, b2):
        wires = {"a": b2.encode(0), "b": b2.encode(0)}
        with pytest.raises(SimulationError):
            variation_monte_carlo(
                half_adder, wires, 1, 0, np.random.default_rng(0)
            )


class TestPeriodicBasisAliases:
    def test_periodic_basis_aliases_documented(self):
        """Counterpoint: a dense periodic basis CAN be silently wrong
        under delay — Section 6's argument against periodic timing."""
        periodic = HyperspaceBasis(
            [SpikeTrain(range(k, 4096, 2), GRID) for k in range(2)]
        )
        circuit = Circuit("buf", {"a": periodic})
        from repro.logic.gates import buffer_gate

        circuit.add_gate("y", buffer_gate(periodic), ["a"])
        circuit.mark_output("y")
        rng = np.random.default_rng(6)
        outcome = variation_monte_carlo(
            circuit, {"a": periodic.encode(0)}, max_extra_delay=5,
            trials=10, rng=rng,
        )
        # Odd delays flip every slot's ownership: confident wrong values.
        assert outcome.wrong_value_trials > 0
