"""Tests for repro.simulator.engine: the event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.simulator.components import Probe, SpikeSource
from repro.simulator.engine import Component, Engine
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=100, dt=1e-12)


class Recorder(Component):
    """Records (port, slot) pairs."""

    def __init__(self, name):
        super().__init__(name)
        self.events = []

    def on_spike(self, port, slot):
        self.events.append((port, slot))


class Repeater(Component):
    """Forwards every input spike to its 'out' port."""

    def on_spike(self, port, slot):
        self.engine.emit(self, "out", slot)


class TestEngine:
    def test_source_to_probe(self):
        engine = Engine(GRID)
        train = SpikeTrain([1, 5, 9], GRID)
        source = SpikeSource("s", train)
        probe = Probe("p")
        engine.connect(source, "out", probe, "in")
        engine.run()
        assert probe.to_train(GRID) == train

    def test_connection_delay(self):
        engine = Engine(GRID)
        source = SpikeSource("s", SpikeTrain([10], GRID))
        probe = Probe("p")
        engine.connect(source, "out", probe, "in", delay=5)
        engine.run()
        assert probe.slots == [15]

    def test_negative_delay_rejected(self):
        engine = Engine(GRID)
        a, b = Recorder("a"), Recorder("b")
        with pytest.raises(SimulationError):
            engine.connect(a, "out", b, "in", delay=-1)

    def test_time_ordering(self):
        engine = Engine(GRID)
        recorder = Recorder("r")
        engine.add(recorder)
        engine.schedule(recorder, "x", 30)
        engine.schedule(recorder, "y", 10)
        engine.schedule(recorder, "z", 20)
        engine.run()
        assert recorder.events == [("y", 10), ("z", 20), ("x", 30)]

    def test_same_slot_fifo(self):
        engine = Engine(GRID)
        recorder = Recorder("r")
        engine.add(recorder)
        engine.schedule(recorder, "first", 10)
        engine.schedule(recorder, "second", 10)
        engine.run()
        assert recorder.events == [("first", 10), ("second", 10)]

    def test_horizon_bounds_run(self):
        engine = Engine(GRID)
        recorder = Recorder("r")
        engine.add(recorder)
        engine.schedule(recorder, "early", 10)
        engine.schedule(recorder, "late", 90)
        delivered = engine.run(until=50)
        assert delivered == 1
        assert recorder.events == [("early", 10)]
        # A later run picks up the rest.
        engine.run()
        assert recorder.events == [("early", 10), ("late", 90)]

    def test_fanout(self):
        engine = Engine(GRID)
        source = SpikeSource("s", SpikeTrain([3], GRID))
        p1, p2 = Probe("p1"), Probe("p2")
        engine.connect(source, "out", p1, "in")
        engine.connect(source, "out", p2, "in")
        engine.run()
        assert p1.slots == p2.slots == [3]

    def test_chained_components(self):
        engine = Engine(GRID)
        source = SpikeSource("s", SpikeTrain([1, 2], GRID))
        repeater = Repeater("r")
        probe = Probe("p")
        engine.connect(source, "out", repeater, "in")
        engine.connect(repeater, "out", probe, "in", delay=1)
        engine.run()
        assert probe.slots == [2, 3]

    def test_unattached_component_engine_access(self):
        with pytest.raises(SimulationError):
            Recorder("lonely").engine

    def test_component_cannot_join_two_engines(self):
        recorder = Recorder("r")
        Engine(GRID).add(recorder)
        with pytest.raises(SimulationError):
            Engine(GRID).add(recorder)

    def test_delivered_counter(self):
        engine = Engine(GRID)
        source = SpikeSource("s", SpikeTrain([1, 2, 3], GRID))
        probe = Probe("p")
        engine.connect(source, "out", probe, "in")
        engine.run()
        # 3 source self-events + 3 probe deliveries.
        assert engine.delivered_events == 6
