"""Cross-validation: event-driven networks vs array pipelines.

The event-driven and array implementations of the orthogonators are
independent codes; they must agree spike for spike on the same inputs.
"""

import numpy as np
import pytest

from repro.noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from repro.noise.synthesis import NoiseSynthesizer
from repro.orthogonator.demux import DemuxOrthogonator
from repro.orthogonator.intersection import IntersectionOrthogonator
from repro.simulator.networks import (
    delayed_identification_network,
    demux_network,
    intersection_network_2,
)
from repro.spikes.train import SpikeTrain
from repro.spikes.zero_crossing import AllCrossingDetector
from repro.units import SimulationGrid, paper_white_grid

GRID = SimulationGrid(n_samples=512, dt=1e-12)


@pytest.fixture
def noise_trains():
    grid = paper_white_grid(n_samples=4096)
    synth = NoiseSynthesizer(WhiteSpectrum(PAPER_WHITE_BAND), grid)
    rng = np.random.default_rng(3)
    detector = AllCrossingDetector()
    a = detector.detect(synth.generate(rng), grid)
    b = detector.detect(synth.generate(rng), grid)
    return a, b


class TestDemuxCrossValidation:
    def test_matches_array_demux(self, noise_trains):
        source, _unused = noise_trains
        engine, probes = demux_network(source, 3)
        engine.run()
        array_output = DemuxOrthogonator.with_outputs(3).transform(source)
        for probe, train in zip(probes, array_output.trains):
            assert probe.to_train(source.grid) == train

    def test_synthetic_source(self):
        source = SpikeTrain(np.arange(0, 512, 5), GRID)
        engine, probes = demux_network(source, 4)
        engine.run()
        array_output = DemuxOrthogonator.with_outputs(4).transform(source)
        for probe, train in zip(probes, array_output.trains):
            assert probe.to_train(GRID) == train


class TestIntersectionCrossValidation:
    def test_matches_array_products(self, noise_trains):
        a, b = noise_trains
        engine, probes = intersection_network_2(a, b, window=0)
        # Anti-coincidence gates decide (window+1) after each A spike;
        # run past the grid so the last decisions land.
        engine.run(until=a.grid.n_samples + 8)

        device = IntersectionOrthogonator(2)
        array_output = device.transform(a, b)
        grid = a.grid

        both = probes["AB"].to_train(grid)
        assert both == device.coincidence_product(array_output)

        latency = 1  # AntiCoincidenceGate(window=0).latency
        a_only = SpikeTrain(
            np.asarray(probes["Ab"].slots, dtype=np.int64) - latency, grid
        )
        assert a_only == array_output[device.labels[1]]
        b_only = SpikeTrain(
            np.asarray(probes["aB"].slots, dtype=np.int64) - latency, grid
        )
        assert b_only == array_output[device.labels[2]]


class TestDelayedIdentification:
    def test_zero_delay_hits_only_own_reference(self):
        references = [
            SpikeTrain(np.arange(k, 512, 4), GRID) for k in range(4)
        ]
        signal = references[2]
        engine, probes = delayed_identification_network(signal, references, delay=0)
        engine.run()
        hits = [len(p.slots) for p in probes]
        assert hits[2] > 0
        assert hits[0] == hits[1] == hits[3] == 0

    def test_periodic_delay_aliases_to_wrong_reference(self):
        references = [
            SpikeTrain(np.arange(k * 8, 512, 32), GRID) for k in range(4)
        ]
        signal = references[0]
        engine, probes = delayed_identification_network(signal, references, delay=8)
        engine.run(until=GRID.n_samples + 16)
        hits = [len(p.slots) for p in probes]
        # Delay of one spacing: every spike now matches reference 1.
        assert hits[1] > 0
        assert hits[0] == 0
