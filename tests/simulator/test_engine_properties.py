"""Property-based tests for the event engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import Component, Engine
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=1024, dt=1e-12)


class Recorder(Component):
    def __init__(self, name):
        super().__init__(name)
        self.events = []

    def on_spike(self, port, slot):
        self.events.append((slot, port))


schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=GRID.n_samples - 1),
        st.sampled_from(["a", "b", "c"]),
    ),
    max_size=64,
)


@given(schedules)
def test_delivery_is_time_ordered(schedule):
    engine = Engine(GRID)
    recorder = Recorder("r")
    engine.add(recorder)
    for slot, port in schedule:
        engine.schedule(recorder, port, slot)
    delivered = engine.run()
    assert delivered == len(schedule)
    slots = [slot for slot, _port in recorder.events]
    assert slots == sorted(slots)


@given(schedules)
def test_same_slot_delivery_is_fifo(schedule):
    engine = Engine(GRID)
    recorder = Recorder("r")
    engine.add(recorder)
    for slot, port in schedule:
        engine.schedule(recorder, port, slot)
    engine.run()
    # Within one slot, events keep their scheduling order.
    by_slot = {}
    for slot, port in schedule:
        by_slot.setdefault(slot, []).append(port)
    seen = {}
    for slot, port in recorder.events:
        seen.setdefault(slot, []).append(port)
    assert seen == by_slot


@given(schedules, st.integers(min_value=0, max_value=1023))
def test_horizon_splits_runs_exactly(schedule, horizon):
    engine = Engine(GRID)
    recorder = Recorder("r")
    engine.add(recorder)
    for slot, port in schedule:
        engine.schedule(recorder, port, slot)
    first = engine.run(until=horizon)
    assert first == sum(1 for slot, _p in schedule if slot < horizon)
    engine.run()
    assert len(recorder.events) == len(schedule)
