"""Cross-validation: event-driven gates vs the array logic layer."""

import itertools

import pytest

from repro.errors import SimulationError
from repro.hyperspace.basis import HyperspaceBasis
from repro.logic.gates import and_gate, xor_gate
from repro.logic.multivalued import mod_sum_gate
from repro.simulator.components import Probe, SpikeSource
from repro.simulator.engine import Engine
from repro.simulator.logic_components import (
    CorrelatorComponent,
    GateComponent,
    gate_network,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=256, dt=1e-12)


def make_basis(m: int) -> HyperspaceBasis:
    return HyperspaceBasis([SpikeTrain(range(k, 256, m), GRID) for k in range(m)])


class TestCorrelatorComponent:
    def test_latches_first_owned_spike(self):
        basis = make_basis(4)
        engine = Engine(GRID)
        correlator = CorrelatorComponent("c", basis)
        source = SpikeSource("s", basis.encode(2))
        probe = Probe("p")
        engine.connect(source, "out", correlator, "in")
        engine.connect(correlator, "decided", probe, "in")
        engine.run()
        assert correlator.element == 2
        assert correlator.decision_slot == 2
        assert probe.slots == [2]  # decides once, then latches

    def test_foreign_spikes_ignored(self):
        sparse = HyperspaceBasis(
            [SpikeTrain([50], GRID), SpikeTrain([60], GRID)]
        )
        engine = Engine(GRID)
        correlator = CorrelatorComponent("c", sparse)
        source = SpikeSource("s", SpikeTrain([10, 60], GRID))
        engine.connect(source, "out", correlator, "in")
        engine.run()
        assert correlator.element == 1

    def test_foreign_port_rejected(self):
        engine = Engine(GRID)
        correlator = CorrelatorComponent("c", make_basis(2))
        engine.add(correlator)
        engine.schedule(correlator, "bogus", 0)
        with pytest.raises(SimulationError):
            engine.run()


class TestGateComponentCrossValidation:
    @pytest.mark.parametrize("a,b", list(itertools.product(range(4), repeat=2)))
    def test_mod_sum_agrees_with_array_layer(self, a, b):
        basis = make_basis(4)
        gate = mod_sum_gate(basis)

        # Array level.
        array = gate.transmit(basis.encode(a), basis.encode(b))

        # Event level.
        engine = Engine(GRID)
        network = gate_network(engine, gate, name="g")
        for position, value in enumerate((a, b)):
            source = SpikeSource(f"s{position}", basis.encode(value))
            engine.connect(source, "out", network.correlator(position), "in")
        probe = Probe("p")
        engine.connect(network, "out", probe, "in")
        engine.run()

        assert network.value == array.value
        assert network.decision_slot == array.decision_slot
        # Output train: the reference train from the decision onward.
        expected = basis.encode(array.value).window(
            array.decision_slot, GRID.n_samples
        )
        assert probe.to_train(GRID) == expected

    def test_binary_gates(self):
        basis = make_basis(2)
        for factory in (and_gate, xor_gate):
            gate = factory(basis)
            for a, b in itertools.product((0, 1), repeat=2):
                engine = Engine(GRID)
                network = gate_network(engine, gate)
                for position, value in enumerate((a, b)):
                    source = SpikeSource(f"s{position}", basis.encode(value))
                    engine.connect(source, "out", network.correlator(position), "in")
                engine.run()
                assert network.value == gate.evaluate(a, b)

    def test_foreign_port_rejected(self):
        basis = make_basis(2)
        engine = Engine(GRID)
        gate_component = GateComponent("g", and_gate(basis))
        engine.add(gate_component)
        engine.schedule(gate_component, "bogus", 0)
        with pytest.raises(SimulationError):
            engine.run()
