"""Protocol v3: PING health probes and corpus-query serving.

A corpus query names a server-hosted corpus and a row range — no
bitset ever crosses the wire on the request path.  The contract: the
merged reply is bit-identical to computing the same window serially
in-process, the server maps at most ``corpus_chunk_rows`` rows per
chunk, the raster never materialises, and every failure mode answers
a typed error frame instead of dropping the connection.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ProtocolError, ServingError
from repro.logic.correlator import CoincidenceCorrelator
from repro.pipeline.corpus import CorpusStore
from repro.serving import protocol
from repro.serving.client import AsyncServingClient, ServingClient
from repro.serving.server import (
    ServerConfig,
    ServerThread,
    build_serving_basis,
)
from repro.units import paper_white_grid

SMALL = dict(n_samples=4096, basis_size=8, source_isi_samples=16, seed=7)
CORPUS_ROWS = 100
CHUNK_ROWS = 16


@pytest.fixture(scope="module")
def small_basis():
    return build_serving_basis(ServerConfig(**SMALL))


@pytest.fixture(scope="module")
def corpus_root(tmp_path_factory, small_basis):
    """An on-disk corpus drawn from the serving basis."""
    root = tmp_path_factory.mktemp("serving") / "library"
    grid = paper_white_grid(n_samples=SMALL["n_samples"])
    store = CorpusStore.create(root, grid)
    rng = np.random.default_rng(13)
    elements = rng.integers(SMALL["basis_size"], size=CORPUS_ROWS)
    with store.writer() as writer:
        for lo in range(0, CORPUS_ROWS, 25):
            writer.append(
                small_basis.as_batch().select_rows(elements[lo:lo + 25])
            )
    return root, elements


@pytest.fixture(scope="module")
def corpus_server(corpus_root):
    root, _elements = corpus_root
    config = ServerConfig(
        jobs=1, corpus=str(root), corpus_chunk_rows=CHUNK_ROWS, **SMALL
    )
    with ServerThread(config) as handle:
        yield handle


class TestPing:
    def test_ping_reports_corpus(self, corpus_server):
        with ServingClient(corpus_server.host, corpus_server.port) as client:
            pong = client.ping()
        assert pong["kind"] == "pong"
        assert pong["ready"] is True
        assert pong["protocol_version"] == protocol.PROTOCOL_VERSION
        assert pong["corpus"] == "library"
        assert pong["corpus_rows"] == CORPUS_ROWS

    def test_ping_without_corpus(self):
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                pong = client.ping()
        assert pong["ready"] is True
        assert pong["corpus"] is None
        assert pong["corpus_rows"] is None

    def test_async_ping(self, corpus_server):
        async def go():
            client = await AsyncServingClient.open(
                corpus_server.host, corpus_server.port
            )
            try:
                return await client.ping()
            finally:
                await client.aclose()

        pong = asyncio.run(go())
        assert pong["corpus"] == "library"


class TestCorpusQueries:
    def test_identify_bit_identical_to_serial(
        self, corpus_server, corpus_root, small_basis
    ):
        root, elements = corpus_root
        correlator = CoincidenceCorrelator(small_basis)
        local = correlator.identify_batch(
            CorpusStore(root).open_rows(0, CORPUS_ROWS), missing="none"
        )
        with ServingClient(corpus_server.host, corpus_server.port) as client:
            reply = client.corpus_identify("library", 0, CORPUS_ROWS)
        assert np.array_equal(reply.elements, elements)
        assert np.array_equal(reply.elements, local.elements)
        assert np.array_equal(reply.decision_slots, local.decision_slots)
        assert np.array_equal(
            reply.spikes_inspected, local.spikes_inspected
        )
        assert reply.summary["transport"] == "corpus-mmap"
        assert reply.summary["corpus"] == "library"

    def test_chunking_honours_the_budget(self, corpus_server):
        with ServingClient(corpus_server.host, corpus_server.port) as client:
            reply = client.corpus_identify("library", 0, CORPUS_ROWS)
            # ceil(100 / 16) = 7 chunks; none wider than the budget.
            assert reply.summary["n_shards"] == 7
            for shard in reply.shards:
                assert shard["row_stop"] - shard["row_start"] <= CHUNK_ROWS
            # Asking for *more* shards than the budget is honoured...
            finer = client.corpus_identify("library", 0, CORPUS_ROWS,
                                           n_shards=20)
            assert finer.summary["n_shards"] == 20
            # ...asking for fewer is not: the budget wins.
            coarse = client.corpus_identify("library", 0, CORPUS_ROWS,
                                            n_shards=2)
            assert coarse.summary["n_shards"] == 7
        assert np.array_equal(reply.elements, finer.elements)
        assert np.array_equal(reply.elements, coarse.elements)

    def test_raster_never_materialises(self, corpus_server):
        with ServingClient(corpus_server.host, corpus_server.port) as client:
            reply = client.corpus_membership("library", 0, CORPUS_ROWS)
        assert reply.summary["server_residency"]["raster"] is False
        for shard in reply.shards:
            assert shard["residency"]["raster"] is False
            assert shard["residency"]["packed"] is True

    def test_membership_window_bit_identical(
        self, corpus_server, corpus_root, small_basis
    ):
        root, _elements = corpus_root
        correlator = CoincidenceCorrelator(small_basis)
        window = CorpusStore(root).open_rows(7, 61)
        local = correlator.detect_members_batch(window, until_slot=1000)
        with ServingClient(corpus_server.host, corpus_server.port) as client:
            reply = client.corpus_membership("library", 7, 61,
                                             until_slot=1000)
        assert np.array_equal(reply.membership, local.membership)
        assert np.array_equal(reply.first_slots, local.first_slots)

    def test_bitset_requests_still_served(self, corpus_server, small_basis):
        wires = small_basis.as_batch().select_rows([3, 0, 5])
        with ServingClient(corpus_server.host, corpus_server.port) as client:
            reply = client.identify(wires)
        assert reply.elements.tolist() == [3, 0, 5]

    def test_concurrent_async_queries(self, corpus_server, corpus_root):
        root, elements = corpus_root

        async def go():
            client = await AsyncServingClient.open(
                corpus_server.host, corpus_server.port
            )
            try:
                return await asyncio.gather(
                    *[
                        client.corpus_identify("library", lo, lo + 20)
                        for lo in range(0, CORPUS_ROWS, 20)
                    ]
                )
            finally:
                await client.aclose()

        replies = asyncio.run(go())
        merged = np.concatenate([r.elements for r in replies])
        assert np.array_equal(merged, elements)


class TestCorpusErrors:
    def test_no_corpus_hosted(self):
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                with pytest.raises(ServingError) as excinfo:
                    client.corpus_identify("library", 0, 10)
        assert excinfo.value.code == protocol.ERR_NO_CORPUS

    def test_wrong_corpus_name(self, corpus_server):
        with ServingClient(corpus_server.host, corpus_server.port) as client:
            with pytest.raises(ServingError) as excinfo:
                client.corpus_identify("someone-elses", 0, 10)
        assert excinfo.value.code == protocol.ERR_NO_CORPUS

    def test_range_past_the_corpus(self, corpus_server):
        with ServingClient(corpus_server.host, corpus_server.port) as client:
            with pytest.raises(ServingError) as excinfo:
                client.corpus_identify("library", 0, CORPUS_ROWS + 1)
        assert excinfo.value.code == protocol.ERR_BAD_FRAME

    def test_server_survives_an_error(self, corpus_server):
        with ServingClient(corpus_server.host, corpus_server.port) as client:
            with pytest.raises(ServingError):
                client.corpus_identify("library", 0, CORPUS_ROWS + 1)
            reply = client.corpus_identify("library", 0, 5)
        assert reply.elements.shape == (5,)


class TestCorpusFrameCodec:
    def test_encode_parse_round_trip(self):
        frame_bytes = protocol.encode_corpus_query(
            "library", 3, 99, mode="membership", start_slot=7, limit=123,
            n_shards=4, request_id=11,
        )
        (frame,) = protocol.FrameReader().feed(frame_bytes)
        assert frame.frame_type == protocol.FRAME_CORPUS_QUERY
        query = protocol.parse_corpus_query(frame)
        assert query.corpus == "library"
        assert (query.row_start, query.row_stop) == (3, 99)
        assert query.mode == "membership"
        assert query.start_slot == 7
        assert query.limit == 123
        assert query.n_shards == 4
        assert query.request_id == 11
        assert query.n_wires == 96

    def test_unicode_corpus_name(self):
        frame_bytes = protocol.encode_corpus_query("bibliothèque", 0, 1)
        (frame,) = protocol.FrameReader().feed(frame_bytes)
        assert protocol.parse_corpus_query(frame).corpus == "bibliothèque"

    def test_encode_rejects_bad_ranges(self):
        with pytest.raises(ProtocolError):
            protocol.encode_corpus_query("c", 5, 5)
        with pytest.raises(ProtocolError):
            protocol.encode_corpus_query("c", 9, 3)
        with pytest.raises(ProtocolError):
            protocol.encode_corpus_query("", 0, 1)

    def test_encode_rejects_pre_v3(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.encode_corpus_query("c", 0, 1, version=2)
        assert excinfo.value.code == protocol.ERR_BAD_VERSION

    def test_truncated_payload_rejected(self):
        frame_bytes = protocol.encode_corpus_query("library", 0, 10)
        (frame,) = protocol.FrameReader().feed(frame_bytes)
        clipped = protocol.Frame(
            frame_type=frame.frame_type,
            version=frame.version,
            request_id=frame.request_id,
            payload=frame.payload[:-1],
        )
        with pytest.raises(ProtocolError):
            protocol.parse_corpus_query(clipped)
