"""Tests for the multi-worker serving tier.

Three layers: the fork-shared stats block (pure data structure), the
WorkerStats mirror (every ServerStats mutation path must land in the
block), and end-to-end clusters in both listener modes — SO_REUSEPORT
and the front-proxy fallback — checking that requests really spread
across worker processes and that any worker answers a STATS request
with the cluster-wide aggregate.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.backend.shared import HAVE_SHARED_MEMORY
from repro.serving.client import AsyncServingClient, ServingClient
from repro.serving.cluster import (
    HAVE_REUSEPORT,
    ClusterStatsBlock,
    ServerCluster,
    WorkerStats,
)
from repro.serving.server import ServerConfig, build_serving_basis
from repro.errors import ServingError

pytestmark = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="no POSIX shared memory on this host"
)

CONFIG = ServerConfig(
    host="127.0.0.1", port=0, n_samples=4096, basis_size=8, workers=2
)


@pytest.fixture(scope="module")
def basis():
    return build_serving_basis(CONFIG)


@pytest.fixture(scope="module")
def wires(basis):
    return basis.as_batch().select_rows([1, 3, 5])


class TestClusterStatsBlock:
    def test_rejects_zero_workers(self):
        with pytest.raises(ServingError):
            ClusterStatsBlock(0)

    def test_aggregate_sums_rows(self):
        block = ClusterStatsBlock(3)
        block.counters[0, 0] = 5  # requests_served
        block.counters[2, 0] = 2
        block.counters[1, 5] = 1  # errors
        stats = block.aggregate()
        assert stats["requests_served"] == 7
        assert stats["errors"] == 1
        assert stats["scope"] == "cluster"
        assert stats["workers"] == 3
        assert [w["requests_served"] for w in stats["per_worker"]] == [5, 0, 2]

    def test_empty_latency_quantiles_are_none(self):
        stats = ClusterStatsBlock(2).aggregate()
        assert stats["latency_window"] == 0
        assert stats["latency_p50_seconds"] is None
        assert stats["latency_p99_seconds"] is None

    def test_latencies_pool_across_workers(self):
        block = ClusterStatsBlock(2, window=8)
        for value in (0.1, 0.2):
            block.record_latency(0, value)
        block.record_latency(1, 0.3)
        stats = block.aggregate()
        assert stats["latency_window"] == 3
        assert stats["latency_p50_seconds"] == pytest.approx(0.2)

    def test_latency_ring_wraps(self):
        block = ClusterStatsBlock(1, window=4)
        for value in range(10):
            block.record_latency(0, float(value))
        stats = block.aggregate()
        # Only the window's worth of samples remain valid.
        assert stats["latency_window"] == 4
        assert int(block.positions[0]) == 10

    def test_summary_mentions_worker_count(self):
        block = ClusterStatsBlock(4)
        assert "across 4 workers" in block.summary()


class TestWorkerStats:
    def test_record_mirrors_into_block_row(self):
        block = ClusterStatsBlock(2)
        stats = WorkerStats(block, 1)
        stats.record("fast-path", 0.01)
        stats.record("pool", 0.02)
        stats.record("coalesced", 0.03)
        assert block.counters[1, 0] == 3  # requests_served
        assert block.counters[1, 1] == 1  # fast_path
        assert block.counters[1, 2] == 1  # pool_path
        assert block.counters[1, 3] == 1  # coalesced
        assert block.counters[0].sum() == 0  # sibling row untouched
        assert int(block.positions[1]) == 3

    def test_direct_increment_paths_mirror(self):
        # The server bumps these two counters without going through
        # record(); the property mirror must catch them.
        block = ClusterStatsBlock(1)
        stats = WorkerStats(block, 0)
        stats.errors += 1
        stats.coalesced_batches += 1
        assert block.counters[0, 5] == 1
        assert block.counters[0, 4] == 1

    def test_snapshot_reads_the_shared_row(self):
        block = ClusterStatsBlock(1)
        stats = WorkerStats(block, 0)
        stats.record("fast-path", 0.01)
        snapshot = stats.snapshot()
        assert snapshot["requests_served"] == 1
        assert snapshot["fast_path_requests"] == 1
        # A write from "another process" (same mapping) is visible.
        block.counters[0, 0] = 41
        assert stats.snapshot()["requests_served"] == 41

    def test_two_workers_do_not_interfere(self):
        block = ClusterStatsBlock(2)
        first, second = WorkerStats(block, 0), WorkerStats(block, 1)
        first.record("fast-path", 0.01)
        second.errors += 3
        assert first.requests_served == 1
        assert second.requests_served == 0
        assert second.errors == 3
        assert first.errors == 0


def _roundtrip(port, wires, count):
    """``count`` sequential one-connection identify requests."""
    for _ in range(count):
        with ServingClient("127.0.0.1", port) as client:
            reply = client.identify(wires)
            assert list(reply.elements) == [1, 3, 5]


@pytest.mark.skipif(not HAVE_REUSEPORT, reason="no SO_REUSEPORT")
class TestReuseportCluster:
    def test_aggregated_stats_count_all_workers(self, wires):
        sent = 6
        with ServerCluster(CONFIG) as cluster:
            _roundtrip(cluster.port, wires, sent)
            with ServingClient("127.0.0.1", cluster.port) as client:
                stats = client.stats()
            assert stats["requests_served"] == sent
            assert stats["scope"] == "cluster"
            assert stats["workers"] == 2
            per_worker = stats["per_worker"]
            assert len(per_worker) == 2
            assert sum(w["requests_served"] for w in per_worker) == sent
            assert all(w["pid"] > 0 for w in per_worker)
            assert all(w["pid"] != os.getpid() for w in per_worker)

    def test_local_scope_returns_one_worker(self, wires):
        with ServerCluster(CONFIG) as cluster:
            _roundtrip(cluster.port, wires, 4)
            with ServingClient("127.0.0.1", cluster.port) as client:
                local = client.stats(scope="local")
            assert "scope" not in local
            assert "per_worker" not in local
            assert 0 <= local["requests_served"] <= 4

    def test_close_returns_final_aggregate_and_reaps_workers(self, wires):
        cluster = ServerCluster(CONFIG).start()
        pids = []
        try:
            _roundtrip(cluster.port, wires, 2)
            pids = [int(p) for p in cluster.block.pids]
        finally:
            final = cluster.close()
        assert final["requests_served"] == 2
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


class TestProxyCluster:
    def test_pipelined_requests_spread_and_aggregate(self, wires):
        sent_blocking, sent_pipelined = 4, 5
        with ServerCluster(CONFIG, force_proxy=True) as cluster:
            _roundtrip(cluster.port, wires, sent_blocking)

            async def pipelined():
                client = await AsyncServingClient.open(
                    "127.0.0.1", cluster.port
                )
                try:
                    replies = await asyncio.gather(
                        *(client.identify(wires) for _ in range(sent_pipelined))
                    )
                    for reply in replies:
                        assert list(reply.elements) == [1, 3, 5]
                finally:
                    await client.aclose()

            asyncio.run(pipelined())
            with ServingClient("127.0.0.1", cluster.port) as client:
                stats = client.stats()
            assert stats["requests_served"] == sent_blocking + sent_pipelined
            assert stats["workers"] == 2
            # Sequential single-connection clients round-robin, so both
            # workers must have served something.
            assert all(
                w["requests_served"] > 0 for w in stats["per_worker"]
            )


class TestClusterConfig:
    def test_workers_must_be_positive(self):
        with pytest.raises(ServingError):
            ServerCluster(CONFIG, workers=0)

    def test_port_before_start_raises(self):
        cluster = ServerCluster(CONFIG)
        with pytest.raises(ServingError):
            cluster.port
