"""Client ↔ server integration: bit-identity, residency, flow control.

The acceptance contract of the serving layer:

* served identify results are **bit-identical** to what the serial
  compute path (the same packed receivers a serial
  :class:`~repro.pipeline.runner.Runner` shard executes) produces for
  the same batch — and, aggregated, reproduce the Runner's ``identify``
  experiment result exactly;
* the payload is **never unpacked to a raster** on the server or in
  any worker — asserted through the residency blocks every shard and
  summary frame reports;
* malformed or mismatched requests answer with the documented error
  codes, and overload answers OVERLOADED instead of growing memory.
"""

import socket

import numpy as np
import pytest

from repro.backend.shared import HAVE_SHARED_MEMORY
from repro.errors import ProtocolError, ServingError
from repro.logic.correlator import CoincidenceCorrelator
from repro.serving import protocol
from repro.serving.client import ServingClient
from repro.serving.server import (
    ServerConfig,
    ServerThread,
    build_serving_basis,
)

#: Small, fast serving universe shared by most tests in this module.
SMALL = dict(
    n_samples=4096, basis_size=8, source_isi_samples=16, seed=7
)


@pytest.fixture(scope="module")
def inline_server():
    """One in-process (jobs=1) server for the whole module."""
    with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
        yield handle


@pytest.fixture(scope="module")
def small_basis():
    """The basis the module's servers serve (rebuilt deterministically)."""
    return build_serving_basis(ServerConfig(**SMALL))


@pytest.fixture(scope="module")
def small_wires(small_basis):
    """A wire batch drawn from the basis, every element represented."""
    rng = np.random.default_rng(99)
    elements = rng.integers(small_basis.size, size=24)
    return small_basis.as_batch().select_rows(elements), elements


class TestInlineServing:
    def test_identify_bit_identical_to_serial_compute(
        self, inline_server, small_basis, small_wires
    ):
        wires, _elements = small_wires
        local = CoincidenceCorrelator(small_basis).identify_batch(
            wires, missing="none"
        )
        with ServingClient(inline_server.host, inline_server.port) as client:
            reply = client.identify(wires, n_shards=3)
        assert np.array_equal(reply.elements, local.elements)
        assert np.array_equal(reply.decision_slots, local.decision_slots)
        assert np.array_equal(
            reply.spikes_inspected, local.spikes_inspected
        )
        assert reply.labels == list(small_basis.labels)
        assert reply.summary["transport"] == "in-process"
        assert reply.summary["n_shards"] == 3

    def test_start_slot_honoured(
        self, inline_server, small_basis, small_wires
    ):
        wires, _elements = small_wires
        start = 1500
        local = CoincidenceCorrelator(small_basis).identify_batch(
            wires, start_slot=start, missing="none"
        )
        with ServingClient(inline_server.host, inline_server.port) as client:
            reply = client.identify(wires, start_slot=start)
        assert np.array_equal(reply.elements, local.elements)
        assert np.array_equal(reply.decision_slots, local.decision_slots)
        assert np.array_equal(
            reply.spikes_inspected, local.spikes_inspected
        )

    def test_membership_matches_local(
        self, inline_server, small_basis, small_wires
    ):
        wires, _elements = small_wires
        limit = 2000
        local = CoincidenceCorrelator(small_basis).detect_members_batch(
            wires, until_slot=limit
        )
        with ServingClient(inline_server.host, inline_server.port) as client:
            reply = client.membership(wires, until_slot=limit, n_shards=2)
        assert np.array_equal(reply.membership, local.membership)
        assert np.array_equal(reply.first_slots, local.first_slots)

    def test_payload_never_unpacked_to_raster(
        self, inline_server, small_wires
    ):
        """The acceptance residency check, inline flavour."""
        wires, _elements = small_wires
        with ServingClient(inline_server.host, inline_server.port) as client:
            reply = client.identify(wires, n_shards=4)
        server_residency = reply.summary["server_residency"]
        assert server_residency["packed"] is True
        assert server_residency["raster"] is False
        assert server_residency["csr"] is False
        assert len(reply.shards) == 4
        for shard in reply.shards:
            assert shard["residency"]["packed"] is True
            assert shard["residency"]["raster"] is False
            assert shard["residency"]["csr"] is False

    def test_sequential_requests_reuse_one_connection(
        self, inline_server, small_wires
    ):
        wires, _elements = small_wires
        with ServingClient(inline_server.host, inline_server.port) as client:
            first = client.identify(wires)
            second = client.identify(wires)
        assert np.array_equal(first.elements, second.elements)
        assert first.summary["mode"] == second.summary["mode"] == "identify"

    def test_single_wire_request(self, inline_server, small_basis):
        wire = small_basis.as_batch().select_rows([2])
        with ServingClient(inline_server.host, inline_server.port) as client:
            reply = client.identify(wire, n_shards=8)  # clamped to 1 wire
        assert reply.elements.tolist() == [2]
        assert reply.summary["n_shards"] == 1


@pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
)
class TestPooledServing:
    """The zero-copy path: shards attach the request arena's bitset."""

    @pytest.fixture(scope="class")
    def pooled_server(self):
        with ServerThread(ServerConfig(jobs=2, **SMALL)) as handle:
            yield handle

    def test_pooled_identify_bit_identical_and_packed_resident(
        self, pooled_server, small_basis, small_wires
    ):
        wires, _elements = small_wires
        local = CoincidenceCorrelator(small_basis).identify_batch(
            wires, missing="none"
        )
        with ServingClient(pooled_server.host, pooled_server.port) as client:
            reply = client.identify(wires, n_shards=2)
        assert np.array_equal(reply.elements, local.elements)
        assert np.array_equal(reply.decision_slots, local.decision_slots)
        assert np.array_equal(
            reply.spikes_inspected, local.spikes_inspected
        )
        assert reply.summary["transport"] == "shared-arena"
        # Residency holds across the process boundary: the workers
        # computed on the mapped bitset, decoding nothing.
        for shard in reply.shards:
            assert shard["residency"]["packed"] is True
            assert shard["residency"]["raster"] is False
            assert shard["residency"]["csr"] is False

    def test_pooled_equals_inline(
        self, pooled_server, inline_server, small_wires
    ):
        wires, _elements = small_wires
        with ServingClient(inline_server.host, inline_server.port) as client:
            inline_reply = client.identify(wires, n_shards=2)
        with ServingClient(pooled_server.host, pooled_server.port) as client:
            pooled_reply = client.identify(wires, n_shards=2)
        assert np.array_equal(inline_reply.elements, pooled_reply.elements)
        assert np.array_equal(
            inline_reply.decision_slots, pooled_reply.decision_slots
        )
        assert np.array_equal(
            inline_reply.spikes_inspected, pooled_reply.spikes_inspected
        )

    def test_pooled_membership_matches_local(
        self, pooled_server, small_basis, small_wires
    ):
        wires, _elements = small_wires
        local = CoincidenceCorrelator(small_basis).detect_members_batch(
            wires
        )
        with ServingClient(pooled_server.host, pooled_server.port) as client:
            reply = client.membership(wires, n_shards=2)
        assert np.array_equal(reply.membership, local.membership)
        assert np.array_equal(reply.first_slots, local.first_slots)


class TestServedResultsReproduceRunnerExperiment:
    """Aggregating served replies reproduces a serial Runner S1 run."""

    def test_identify_experiment_reproduced_over_rpc(self):
        from repro.experiments.identify import IdentifyConfig, _workload
        from repro.pipeline.runner import Runner

        overrides = dict(
            n_wires=24, basis_size=8, n_trials=3, n_shards=2,
            source_isi_samples=16,
        )
        report = Runner().run("identify", seed=123, overrides=overrides)
        assert report.ok
        serial = report.result

        # Serve the *same* workload: the identify experiment runs on
        # the paper grid, so the server does too (default n_samples).
        config = IdentifyConfig(seed=123, **overrides)
        basis, wires, elements, start_slots = _workload(config)
        served = ServerConfig(
            jobs=1,
            seed=123,
            basis_size=8,
            source_isi_samples=16,
        )
        identifications = correct = misses = 0
        latencies = []
        with ServerThread(served) as handle:
            assert handle.server.basis.labels == basis.labels
            with ServingClient(handle.host, handle.port) as client:
                for start in start_slots.tolist():
                    reply = client.identify(
                        wires, start_slot=int(start), n_shards=2
                    )
                    found = reply.elements >= 0
                    identifications += reply.elements.size
                    misses += int(np.count_nonzero(~found))
                    correct += int(
                        np.count_nonzero(
                            reply.elements[found] == elements[found]
                        )
                    )
                    latencies.append(reply.decision_slots[found] - start)
        stacked = np.concatenate(latencies)
        hits = identifications - misses
        assert identifications == serial.identifications
        assert correct == serial.correct
        assert misses == serial.misses
        assert correct / hits == serial.accuracy
        assert float(np.median(stacked)) == serial.median_latency_samples
        assert (
            float(np.percentile(stacked, 90)) == serial.p90_latency_samples
        )


class TestErrors:
    def test_mismatched_grid_rejected(self, inline_server):
        rng = np.random.default_rng(1)
        packed = (rng.random((2, 8)) < 0.2).astype(np.uint8)
        wire = protocol.encode_request(packed, 64, 1e-9, request_id=5)
        with socket.create_connection(
            (inline_server.host, inline_server.port), timeout=30
        ) as sock:
            sock.sendall(wire)
            reader = protocol.FrameReader()
            frames = []
            while not frames:
                frames = reader.feed(sock.recv(65536))
        payload = protocol.parse_json_frame(frames[0])
        assert frames[0].frame_type == protocol.FRAME_ERROR
        assert payload["code"] == protocol.ERR_BAD_GRID

    def test_client_raises_serving_error_on_bad_grid(self, inline_server):
        from repro.units import SimulationGrid

        grid = SimulationGrid(n_samples=64, dt=1e-9)
        packed = np.zeros((1, 8), dtype=np.uint8)
        packed[0, 0] = 0x80
        with ServingClient(inline_server.host, inline_server.port) as client:
            with pytest.raises(ServingError) as err:
                client.identify(packed, grid)
        assert err.value.code == protocol.ERR_BAD_GRID

    def test_garbage_bytes_answered_with_error_and_close(
        self, inline_server
    ):
        with socket.create_connection(
            (inline_server.host, inline_server.port), timeout=30
        ) as sock:
            sock.sendall((32).to_bytes(4, "little") + b"G" * 32)
            reader = protocol.FrameReader()
            frames = []
            data = sock.recv(65536)
            while data:
                frames.extend(reader.feed(data))
                data = sock.recv(65536)
        assert frames  # the error frame arrived before the close
        payload = protocol.parse_json_frame(frames[0])
        assert payload["code"] == protocol.ERR_BAD_MAGIC

    def test_oversized_frame_rejected(self):
        config = ServerConfig(jobs=1, max_frame_bytes=2048, **SMALL)
        with ServerThread(config) as handle:
            with socket.create_connection(
                (handle.host, handle.port), timeout=30
            ) as sock:
                sock.sendall((4096).to_bytes(4, "little"))
                reader = protocol.FrameReader()
                frames = []
                data = sock.recv(65536)
                while data:
                    frames.extend(reader.feed(data))
                    data = sock.recv(65536)
        payload = protocol.parse_json_frame(frames[0])
        assert payload["code"] == protocol.ERR_FRAME_TOO_LARGE

    def test_request_over_inflight_budget_is_overloaded(self, small_basis):
        # fast_path_bytes=0: the budget only governs arena-pinning
        # (sharded) requests, so force this tiny payload onto that path.
        config = ServerConfig(
            jobs=1, max_inflight_bytes=64, fast_path_bytes=0, **SMALL
        )
        wires = small_basis.as_batch().select_rows([0, 1])
        with ServerThread(config) as handle:
            with ServingClient(handle.host, handle.port) as client:
                with pytest.raises(ServingError) as err:
                    client.identify(wires)
        assert err.value.code == protocol.ERR_OVERLOADED

    def test_connection_closed_mid_response_raises(self, inline_server):
        client = ServingClient(inline_server.host, inline_server.port)
        client.close()
        rng = np.random.default_rng(2)
        with pytest.raises((ProtocolError, OSError)):
            grid_samples = SMALL["n_samples"]
            packed = (
                rng.random((1, (grid_samples + 7) // 8)) < 0.1
            ).astype(np.uint8)
            from repro.units import paper_white_grid

            client.identify(packed, paper_white_grid(grid_samples))


class TestInflightBudgetFairness:
    def test_fifo_admission_prevents_starvation(self):
        """A big waiter is not starved by smaller later arrivals."""
        import asyncio

        from repro.serving.server import _InflightBudget

        async def scenario():
            budget = _InflightBudget(100)
            order = []

            async def claim(name, nbytes):
                await budget.acquire(nbytes)
                order.append(name)

            await budget.acquire(60)
            big = asyncio.ensure_future(claim("big", 50))
            await asyncio.sleep(0.01)  # big is queued first
            small = asyncio.ensure_future(claim("small", 10))
            await asyncio.sleep(0.01)
            # 10 bytes would fit, but FIFO holds it behind the big one.
            assert order == []
            await budget.release(60)
            await asyncio.gather(big, small)
            assert order == ["big", "small"]

        asyncio.run(scenario())

    def test_cancelled_waiter_unblocks_the_queue(self):
        import asyncio

        from repro.serving.server import _InflightBudget

        async def scenario():
            budget = _InflightBudget(100)
            await budget.acquire(90)
            blocked = asyncio.ensure_future(budget.acquire(50))
            await asyncio.sleep(0.01)
            blocked.cancel()
            await asyncio.gather(blocked, return_exceptions=True)
            later = asyncio.ensure_future(budget.acquire(10))
            await asyncio.sleep(0.01)
            assert later.done()  # the dead ticket did not wedge the head
            await later

        asyncio.run(scenario())


@pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
)
class TestSharedRunnerEmbedding:
    def test_default_shards_follow_the_dispatching_runner(self):
        """A shared multi-worker runner sets the shard default, not the
        config's own (single-job) worker count."""
        from repro.pipeline.runner import Runner

        basis = build_serving_basis(ServerConfig(**SMALL))
        wires = basis.as_batch().select_rows([0, 1, 2, 3, 4, 5])
        with Runner(jobs=2) as runner:
            with ServerThread(
                ServerConfig(jobs=1, fast_path_bytes=0, **SMALL),
                runner=runner,
            ) as handle:
                with ServingClient(handle.host, handle.port) as client:
                    reply = client.identify(wires)  # n_shards unset
        assert reply.summary["transport"] == "shared-arena"
        assert reply.summary["n_shards"] == 2
        assert reply.elements.tolist() == [0, 1, 2, 3, 4, 5]


class TestGracefulShutdown:
    def test_server_thread_close_is_idempotent_and_releases(self):
        handle = ServerThread(ServerConfig(jobs=1, **SMALL)).start()
        basis = build_serving_basis(ServerConfig(**SMALL))
        wires = basis.as_batch().select_rows([1, 2])
        with ServingClient(handle.host, handle.port) as client:
            reply = client.identify(wires)
        assert reply.elements.tolist() == [1, 2]
        handle.close()
        handle.close()  # idempotent
        with pytest.raises(OSError):
            socket.create_connection(
                (handle.host, handle.port), timeout=0.5
            )

    @pytest.mark.skipif(
        not HAVE_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
    )
    def test_pooled_shutdown_releases_worker_attachments(self):
        from repro.pipeline.runner import Runner

        runner = Runner(jobs=2)
        try:
            with ServerThread(
                ServerConfig(jobs=2, **SMALL), runner=runner
            ) as handle:
                basis = build_serving_basis(ServerConfig(**SMALL))
                wires = basis.as_batch().select_rows([0, 3, 5, 6])
                with ServingClient(handle.host, handle.port) as client:
                    client.identify(wires, n_shards=2)
            # Shutdown broadcast the release: no worker still maps a
            # serving arena segment.
            counts = runner.broadcast(len_of_process_cache, None)
            assert counts == [0, 0]
        finally:
            runner.close()


def len_of_process_cache(_payload):
    """Broadcast target: this worker's resident attachment count."""
    from repro.backend.shared import process_cache

    return len(process_cache())
