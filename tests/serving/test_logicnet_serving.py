"""Protocol v5: served LOGICNET queries ≡ local batched evaluation.

A logicnet query is 20 bytes — seed, network range, shape — and the
server rebuilds the named networks from their spawn keys against its
own basis.  The contract: the merged reply is bit-identical to
building and evaluating the same range locally, however the server
shards or dispatches it (in-process or pool), the raster never
materialises server-side, and every failure mode answers a typed
error frame.
"""

import asyncio

import numpy as np
import pytest

from repro.backend.shared import HAVE_SHARED_MEMORY
from repro.errors import ProtocolError, ServingError
from repro.logic.netbatch import LogicNetBatch
from repro.serving import protocol
from repro.serving.client import AsyncServingClient, ServingClient
from repro.serving.server import (
    ServerConfig,
    ServerThread,
    build_serving_basis,
)

SMALL = dict(n_samples=4096, basis_size=8, source_isi_samples=16, seed=7)
#: The family every test queries: (query seed, n_gates, depth).
FAMILY = dict(seed=21, n_gates=6, depth=3)
N_NETWORKS = 12


@pytest.fixture(scope="module")
def small_basis():
    return build_serving_basis(ServerConfig(**SMALL))


@pytest.fixture(scope="module")
def expected(small_basis):
    """The local answer every served reply must reproduce exactly."""
    inputs = small_basis.as_batch()
    nets = LogicNetBatch.random(
        N_NETWORKS,
        FAMILY["n_gates"],
        FAMILY["depth"],
        inputs.n_trains,
        FAMILY["seed"],
    )
    popcounts, checksums = nets.evaluate(
        inputs.packed_words(), inputs.grid.n_samples
    )
    return popcounts, checksums


@pytest.fixture(scope="module")
def inline_server():
    with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
        yield handle


def _query(client, net_start=0, net_stop=N_NETWORKS, n_shards=0):
    return client.logicnet(
        FAMILY["seed"],
        net_start,
        net_stop,
        n_gates=FAMILY["n_gates"],
        depth=FAMILY["depth"],
        n_shards=n_shards,
    )


class TestServedEqualsLocal:
    def test_inline_bit_identical(self, inline_server, expected):
        popcounts, checksums = expected
        with ServingClient(inline_server.host, inline_server.port) as client:
            reply = _query(client, n_shards=3)
        np.testing.assert_array_equal(reply.popcounts, popcounts)
        np.testing.assert_array_equal(reply.checksums, checksums)
        assert reply.summary["mode"] == "logicnet"
        assert reply.summary["transport"] == "in-process"
        assert reply.summary["n_networks"] == N_NETWORKS

    def test_shard_count_is_invisible(self, inline_server, expected):
        popcounts, checksums = expected
        with ServingClient(inline_server.host, inline_server.port) as client:
            replies = [_query(client, n_shards=n) for n in (1, 2, 5)]
        for reply in replies:
            np.testing.assert_array_equal(reply.popcounts, popcounts)
            np.testing.assert_array_equal(reply.checksums, checksums)
        assert [r.summary["n_shards"] for r in replies] == [1, 2, 5]

    def test_subrange_is_the_full_range_sliced(self, inline_server, expected):
        popcounts, checksums = expected
        with ServingClient(inline_server.host, inline_server.port) as client:
            reply = _query(client, net_start=3, net_stop=9, n_shards=2)
        np.testing.assert_array_equal(reply.popcounts, popcounts[3:9])
        np.testing.assert_array_equal(reply.checksums, checksums[3:9])

    def test_raster_never_materialises(self, inline_server):
        with ServingClient(inline_server.host, inline_server.port) as client:
            reply = _query(client, n_shards=2)
        assert not reply.summary["server_residency"]["raster"]
        assert reply.summary["server_residency"]["packed"]
        for shard in reply.shards:
            assert not shard["residency"]["raster"]

    def test_other_request_kinds_still_served(self, inline_server, small_basis):
        """v5 serves logicnet alongside the v1-v4 request kinds."""
        wires = small_basis.as_batch()
        with ServingClient(inline_server.host, inline_server.port) as client:
            identified = client.identify(wires)
            reply = _query(client)
            assert client.ping()["ready"] is True
        assert identified.elements.tolist() == list(range(wires.n_trains))
        assert reply.popcounts.shape == (N_NETWORKS, FAMILY["n_gates"])

    @pytest.mark.skipif(
        not HAVE_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
    )
    def test_pool_dispatch_bit_identical(self, expected):
        popcounts, checksums = expected
        with ServerThread(ServerConfig(jobs=2, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                reply = _query(client, n_shards=2)
        np.testing.assert_array_equal(reply.popcounts, popcounts)
        np.testing.assert_array_equal(reply.checksums, checksums)
        assert reply.summary["transport"] == "seed-rebuild"

    def test_async_pipelined_queries(self, inline_server, expected):
        popcounts, checksums = expected

        async def run():
            client = await AsyncServingClient.open(
                inline_server.host, inline_server.port
            )
            try:
                return await asyncio.gather(
                    *[
                        client.logicnet(
                            FAMILY["seed"],
                            0,
                            N_NETWORKS,
                            n_gates=FAMILY["n_gates"],
                            depth=FAMILY["depth"],
                            n_shards=n,
                        )
                        for n in (1, 2, 3)
                    ]
                )
            finally:
                await client.aclose()

        for reply in asyncio.run(run()):
            np.testing.assert_array_equal(reply.popcounts, popcounts)
            np.testing.assert_array_equal(reply.checksums, checksums)

    def test_request_counted_in_stats(self, expected):
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                _query(client)
                stats = client.stats()
        assert stats["requests_served"] >= 1
        assert stats["pool_path_requests"] >= 1


class TestLogicNetErrors:
    def test_oversized_query_is_typed(self, inline_server):
        with ServingClient(inline_server.host, inline_server.port) as client:
            with pytest.raises(ServingError) as info:
                client.logicnet(1, 0, 1 << 20, n_gates=1024, depth=16)
        assert info.value.code == protocol.ERR_OVERLOADED

    def test_server_survives_an_error(self, inline_server, expected):
        popcounts, _checksums = expected
        with ServingClient(inline_server.host, inline_server.port) as client:
            with pytest.raises(ServingError):
                client.logicnet(1, 0, 1 << 20, n_gates=1024, depth=16)
            reply = _query(client)
        np.testing.assert_array_equal(reply.popcounts, popcounts)


class TestLogicNetFrameCodec:
    def test_encode_parse_round_trip(self):
        frame_bytes = protocol.encode_logicnet_query(
            99, 3, 40, n_gates=32, depth=5, n_shards=4, request_id=11
        )
        (frame,) = protocol.FrameReader().feed(frame_bytes)
        assert frame.frame_type == protocol.FRAME_LOGICNET
        query = protocol.parse_logicnet_query(frame)
        assert query.seed == 99
        assert (query.net_start, query.net_stop) == (3, 40)
        assert query.n_gates == 32
        assert query.depth == 5
        assert query.n_shards == 4
        assert query.request_id == 11
        assert query.n_networks == 37
        assert query.mode == "logicnet"

    def test_encode_rejects_bad_shapes(self):
        with pytest.raises(ProtocolError):
            protocol.encode_logicnet_query(1, 5, 5, n_gates=4, depth=1)
        with pytest.raises(ProtocolError):
            protocol.encode_logicnet_query(1, 9, 3, n_gates=4, depth=1)
        with pytest.raises(ProtocolError):
            protocol.encode_logicnet_query(1, 0, 4, n_gates=0, depth=1)
        with pytest.raises(ProtocolError):
            protocol.encode_logicnet_query(1, 0, 4, n_gates=4, depth=0)

    def test_encode_rejects_pre_v5(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.encode_logicnet_query(
                1, 0, 4, n_gates=4, depth=1, version=4
            )
        assert excinfo.value.code == protocol.ERR_BAD_VERSION

    def test_truncated_payload_rejected(self):
        frame_bytes = protocol.encode_logicnet_query(
            1, 0, 4, n_gates=4, depth=1
        )
        (frame,) = protocol.FrameReader().feed(frame_bytes)
        clipped = protocol.Frame(
            frame_type=frame.frame_type,
            version=frame.version,
            request_id=frame.request_id,
            payload=frame.payload[:-1],
        )
        with pytest.raises(ProtocolError):
            protocol.parse_logicnet_query(clipped)

    def test_versions_one_to_four_still_supported(self):
        assert protocol.PROTOCOL_VERSION == 5
        assert protocol.SUPPORTED_VERSIONS == (1, 2, 3, 4, 5)
