"""Protocol codec tests: round trips, framing rejection, ragged grids.

The codec is the serving boundary's contract, so these tests are
deliberately adversarial: every malformed frame class documented in
``docs/protocol.md`` (bad magic, unsupported version, truncated and
oversized payloads, nonzero reserved fields, dimension mismatches)
must be rejected with the matching error code, and well-formed frames
must round-trip bit-identically over grids whose length is *not* a
multiple of 8 or 64 — the ragged-tail shapes the packed kernels are
property-tested over.
"""

import numpy as np
import pytest

from repro.backend.batch import SpikeTrainBatch
from repro.backend.packed import n_packed_bytes
from repro.errors import ProtocolError
from repro.serving import protocol
from repro.units import SimulationGrid

#: Grid lengths exercising clean, byte-ragged and word-ragged tails.
RAGGED_LENGTHS = [1, 7, 8, 63, 64, 65, 100, 511, 1000]


def random_packed(rng, n_wires, n_samples, density=0.05):
    """A random packed bitset with a clean tail, plus its batch."""
    grid = SimulationGrid(n_samples=n_samples, dt=1e-9)
    raster = rng.random((n_wires, n_samples)) < density
    batch = SpikeTrainBatch.from_raster(raster, grid)
    return batch.packbits(), grid, batch


def feed_in_chunks(reader, data, rng):
    """Feed ``data`` in random-size chunks, collecting every frame."""
    frames = []
    cursor = 0
    while cursor < len(data):
        step = int(rng.integers(1, 97))
        frames.extend(reader.feed(data[cursor : cursor + step]))
        cursor += step
    return frames


class TestRequestRoundTrip:
    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    def test_ragged_grids_round_trip_bit_identically(self, n_samples):
        rng = np.random.default_rng(n_samples)
        packed, grid, batch = random_packed(rng, 5, n_samples, density=0.3)
        wire = protocol.encode_request(
            packed, grid.n_samples, grid.dt, request_id=42
        )
        frames = protocol.FrameReader().feed(wire)
        assert len(frames) == 1
        request = protocol.parse_request(frames[0])
        assert request.mode == "identify"
        assert request.request_id == 42
        assert request.n_samples == grid.n_samples
        assert request.dt == grid.dt
        assert np.array_equal(request.packed, packed)
        # The parsed payload rebuilds the exact batch (packed-primary).
        rebuilt = SpikeTrainBatch.from_packed(request.packed, request.grid())
        assert rebuilt == batch

    def test_property_randomized_round_trips(self):
        rng = np.random.default_rng(2016)
        for _trial in range(25):
            n_samples = int(rng.integers(1, 700))
            n_wires = int(rng.integers(1, 9))
            packed, grid, batch = random_packed(
                rng, n_wires, n_samples, density=float(rng.uniform(0, 0.5))
            )
            mode = ["identify", "membership"][int(rng.integers(2))]
            start = int(rng.integers(0, n_samples + 1))
            limit = (
                None if rng.integers(2) else int(rng.integers(0, n_samples))
            )
            wire = protocol.encode_request(
                packed,
                grid.n_samples,
                grid.dt,
                mode=mode,
                start_slot=start,
                limit=limit,
                n_shards=int(rng.integers(0, 9)),
                request_id=int(rng.integers(0, 2**32)),
            )
            frames = feed_in_chunks(protocol.FrameReader(), wire, rng)
            assert len(frames) == 1
            request = protocol.parse_request(frames[0])
            assert request.mode == mode
            assert request.start_slot == start
            assert request.limit == limit
            assert np.array_equal(request.packed, packed)
            assert (
                SpikeTrainBatch.from_packed(request.packed, request.grid())
                == batch
            )

    def test_several_frames_in_one_stream(self):
        rng = np.random.default_rng(3)
        stream = b""
        for request_id in range(4):
            packed, grid, _batch = random_packed(rng, 2, 100)
            stream += protocol.encode_request(
                packed, grid.n_samples, grid.dt, request_id=request_id
            )
        frames = feed_in_chunks(protocol.FrameReader(), stream, rng)
        assert [frame.request_id for frame in frames] == [0, 1, 2, 3]

    def test_limit_sentinel_is_none(self):
        rng = np.random.default_rng(4)
        packed, grid, _batch = random_packed(rng, 1, 64)
        wire = protocol.encode_request(
            packed, grid.n_samples, grid.dt, mode="membership", limit=None
        )
        request = protocol.parse_request(
            protocol.FrameReader().feed(wire)[0]
        )
        assert request.limit is None


class TestJsonFrames:
    def test_shard_and_done_round_trip(self):
        for ftype in (protocol.FRAME_SHARD, protocol.FRAME_DONE):
            payload = {"elements": [1, 2, -1], "wall_seconds": 0.25}
            wire = protocol.encode_json_frame(ftype, 9, payload)
            frame = protocol.FrameReader().feed(wire)[0]
            assert frame.frame_type == ftype
            assert frame.request_id == 9
            assert protocol.parse_json_frame(frame) == payload

    def test_error_frame_carries_code_and_name(self):
        wire = protocol.encode_error(7, protocol.ERR_BAD_GRID, "wrong grid")
        payload = protocol.parse_json_frame(
            protocol.FrameReader().feed(wire)[0]
        )
        assert payload["code"] == protocol.ERR_BAD_GRID
        assert payload["error"] == "BAD_GRID"
        assert payload["message"] == "wrong grid"

    def test_non_json_payload_rejected(self):
        wire = protocol.encode_frame(protocol.FRAME_DONE, 1, b"\xff\xfe{")
        frame = protocol.FrameReader().feed(wire)[0]
        with pytest.raises(ProtocolError) as err:
            protocol.parse_json_frame(frame)
        assert err.value.code == protocol.ERR_BAD_FRAME


class TestFramingRejection:
    def encode_one(self, **overrides):
        rng = np.random.default_rng(5)
        packed, grid, _batch = random_packed(rng, 3, 100)
        return protocol.encode_request(
            packed, grid.n_samples, grid.dt, **overrides
        )

    def test_bad_magic(self):
        wire = bytearray(self.encode_one())
        wire[4:8] = b"NOPE"
        with pytest.raises(ProtocolError) as err:
            protocol.FrameReader().feed(bytes(wire))
        assert err.value.code == protocol.ERR_BAD_MAGIC

    def test_unsupported_version(self):
        wire = bytearray(self.encode_one())
        wire[8] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError) as err:
            protocol.FrameReader().feed(bytes(wire))
        assert err.value.code == protocol.ERR_BAD_VERSION

    def test_nonzero_flags_rejected(self):
        wire = bytearray(self.encode_one())
        wire[10] = 1  # flags low byte
        with pytest.raises(ProtocolError) as err:
            protocol.FrameReader().feed(bytes(wire))
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_oversized_frame_rejected_from_the_length_prefix(self):
        reader = protocol.FrameReader(max_frame_bytes=1024)
        big = (2048).to_bytes(4, "little")
        with pytest.raises(ProtocolError) as err:
            reader.feed(big)
        assert err.value.code == protocol.ERR_FRAME_TOO_LARGE

    def test_declared_length_below_header_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.FrameReader().feed((4).to_bytes(4, "little"))
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_truncated_payload_rejected(self):
        """A frame cut short re-framed as complete must not parse."""
        wire = self.encode_one()
        cut = wire[4 : len(wire) - 37]  # drop the length prefix + a tail
        frame = protocol.FrameReader().feed(
            len(cut).to_bytes(4, "little") + cut
        )[0]
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame)
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_payload_shorter_than_request_header_rejected(self):
        frame = protocol.Frame(
            version=1,
            frame_type=protocol.FRAME_IDENTIFY,
            request_id=0,
            payload=b"\x00" * 8,
        )
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame)
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_trailing_garbage_rejected(self):
        wire = self.encode_one()
        body = wire[4:] + b"\x00" * 3
        frame = protocol.FrameReader().feed(
            len(body).to_bytes(4, "little") + body
        )[0]
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame)
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_incomplete_frame_waits_instead_of_erroring(self):
        wire = self.encode_one()
        reader = protocol.FrameReader()
        assert reader.feed(wire[:-10]) == []
        assert reader.buffered_bytes == len(wire) - 10
        frames = reader.feed(wire[-10:])
        assert len(frames) == 1
        assert reader.buffered_bytes == 0

    def test_response_frame_is_not_a_request(self):
        wire = protocol.encode_json_frame(protocol.FRAME_DONE, 1, {})
        frame = protocol.FrameReader().feed(wire)[0]
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame)
        assert err.value.code == protocol.ERR_BAD_TYPE


class TestPoisonedStreamKeepsEarlierFrames:
    def test_good_frames_survive_a_later_corrupt_frame(self):
        rng = np.random.default_rng(8)
        packed, grid, _batch = random_packed(rng, 2, 100)
        good = protocol.encode_request(
            packed, grid.n_samples, grid.dt, request_id=1
        )
        corrupt = (32).to_bytes(4, "little") + b"X" * 32
        reader = protocol.FrameReader()
        frames = reader.feed(good + corrupt)
        # The valid frame is returned, the violation is deferred...
        assert len(frames) == 1
        assert frames[0].request_id == 1
        assert reader.pending_error is not None
        assert reader.pending_error.code == protocol.ERR_BAD_MAGIC
        # ...and raised on the next feed: the stream is unusable.
        with pytest.raises(ProtocolError) as err:
            reader.feed(b"")
        assert err.value.code == protocol.ERR_BAD_MAGIC


class TestErrorsSurvivePickling:
    def test_serving_and_protocol_errors_round_trip(self):
        """Worker-raised errors cross the pool's pickle boundary intact."""
        import pickle

        from repro.errors import ProtocolError as PE
        from repro.errors import ServingError as SE

        for exc in (SE(7, "budget"), PE(protocol.ERR_BAD_MAGIC, "magic")):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert clone.code == exc.code
            assert str(clone) == str(exc)


class TestRequestValidation:
    def test_zero_wires_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(
                np.empty((0, n_packed_bytes(64)), dtype=np.uint8), 64, 1e-9
            )

    def test_wrong_packed_width_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(
                np.zeros((2, 9), dtype=np.uint8), 64, 1e-9
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(
                np.zeros((1, 8), dtype=np.uint8), 64, 1e-9, mode="classify"
            )

    def test_start_slot_outside_grid_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(
                np.zeros((1, 8), dtype=np.uint8), 64, 1e-9, start_slot=65
            )

    def test_request_nbytes_matches_encoding(self):
        rng = np.random.default_rng(6)
        packed, grid, _batch = random_packed(rng, 4, 100)
        wire = protocol.encode_request(packed, grid.n_samples, grid.dt)
        assert len(wire) == 4 + protocol.request_nbytes(4, 100)


class TestVersionNegotiation:
    def test_version_1_requests_still_decode(self):
        rng = np.random.default_rng(7)
        packed, grid, _batch = random_packed(rng, 3, 100)
        wire = protocol.encode_request(
            packed, grid.n_samples, grid.dt, version=1, request_id=9
        )
        frames = protocol.FrameReader().feed(wire)
        request = protocol.parse_request(frames[0])
        assert request.version == 1
        assert np.array_equal(request.packed, packed)

    def test_requests_default_to_current_version(self):
        rng = np.random.default_rng(8)
        packed, grid, _batch = random_packed(rng, 3, 100)
        wire = protocol.encode_request(packed, grid.n_samples, grid.dt)
        request = protocol.parse_request(
            protocol.FrameReader().feed(wire)[0]
        )
        assert request.version == protocol.PROTOCOL_VERSION == 5

    def test_version_2_requests_still_decode(self):
        rng = np.random.default_rng(8)
        packed, grid, _batch = random_packed(rng, 3, 100)
        wire = protocol.encode_request(
            packed, grid.n_samples, grid.dt, version=2, request_id=4
        )
        request = protocol.parse_request(
            protocol.FrameReader().feed(wire)[0]
        )
        assert request.version == 2
        assert np.array_equal(request.packed, packed)

    def test_unsupported_version_rejected_on_encode(self):
        with pytest.raises(ProtocolError) as err:
            protocol.encode_request(
                np.zeros((1, 8), dtype=np.uint8), 64, 1e-9, version=6
            )
        assert err.value.code == protocol.ERR_BAD_VERSION

    def test_json_frames_stamp_the_requested_version(self):
        wire = protocol.encode_json_frame(
            protocol.FRAME_DONE, 5, {"kind": "done"}, version=1
        )
        frame = protocol.FrameReader().feed(wire)[0]
        assert frame.version == 1

    def test_request_parts_concatenate_to_encode_request(self):
        rng = np.random.default_rng(9)
        packed, grid, _batch = random_packed(rng, 4, 511)
        parts = protocol.encode_request_parts(
            packed, grid.n_samples, grid.dt, request_id=3
        )
        joined = b"".join(bytes(part) for part in parts)
        assert joined == protocol.encode_request(
            packed, grid.n_samples, grid.dt, request_id=3
        )


class TestResultFrames:
    def identify_payload(self, rng, n_rows, row_start=0):
        return {
            "row_start": row_start,
            "row_stop": row_start + n_rows,
            "wall_seconds": 0.125,
            "residency": {"packed": True, "csr": False, "raster": False},
            "elements": rng.integers(-1, 16, n_rows).astype(np.int64),
            "decision_slots": rng.integers(-1, 1000, n_rows).astype(np.int64),
            "spikes_inspected": rng.integers(0, 99, n_rows).astype(np.int64),
        }

    @pytest.mark.parametrize("n_rows", [1, 5, 257])
    def test_identify_round_trip(self, n_rows):
        rng = np.random.default_rng(n_rows)
        payload = self.identify_payload(rng, n_rows, row_start=7)
        wire = protocol.encode_result_frame(11, payload, mode="identify")
        frame = protocol.FrameReader().feed(wire)[0]
        assert frame.frame_type == protocol.FRAME_RESULT
        assert frame.request_id == 11
        parsed = protocol.parse_result_frame(frame)
        assert parsed["kind"] == "shard"
        assert parsed["row_start"] == 7
        assert parsed["row_stop"] == 7 + n_rows
        assert parsed["wall_seconds"] == 0.125
        assert parsed["residency"] == payload["residency"]
        for key in ("elements", "decision_slots", "spikes_inspected"):
            assert np.array_equal(parsed[key], payload[key])

    @pytest.mark.parametrize("n_cols", [1, 7, 8, 16, 33])
    def test_membership_round_trip(self, n_cols):
        rng = np.random.default_rng(n_cols)
        n_rows = 9
        payload = {
            "row_start": 0,
            "row_stop": n_rows,
            "wall_seconds": 0.5,
            "residency": {"packed": True, "csr": True, "raster": False},
            "membership": rng.random((n_rows, n_cols)) < 0.4,
            "first_slots": rng.integers(-1, 512, (n_rows, n_cols)).astype(
                np.int64
            ),
        }
        wire = protocol.encode_result_frame(4, payload, mode="membership")
        parsed = protocol.parse_result_frame(
            protocol.FrameReader().feed(wire)[0]
        )
        assert np.array_equal(parsed["membership"], payload["membership"])
        assert np.array_equal(parsed["first_slots"], payload["first_slots"])
        assert parsed["residency"] == payload["residency"]

    def test_mismatched_array_lengths_rejected_on_encode(self):
        rng = np.random.default_rng(0)
        payload = self.identify_payload(rng, 4)
        payload["elements"] = payload["elements"][:-1]
        with pytest.raises(ProtocolError) as err:
            protocol.encode_result_frame(1, payload, mode="identify")
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_truncated_result_payload_rejected(self):
        rng = np.random.default_rng(1)
        wire = bytearray(
            protocol.encode_result_frame(
                1, self.identify_payload(rng, 3), mode="identify"
            )
        )
        # Drop the last 8 bytes and fix up the length prefix.
        wire = wire[:-8]
        wire[0:4] = (len(wire) - 4).to_bytes(4, "little")
        frame = protocol.FrameReader().feed(bytes(wire))[0]
        with pytest.raises(ProtocolError) as err:
            protocol.parse_result_frame(frame)
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_stats_request_round_trips(self):
        wire = protocol.encode_stats_request(77)
        frame = protocol.FrameReader().feed(wire)[0]
        assert frame.frame_type == protocol.FRAME_STATS
        assert frame.request_id == 77
        assert frame.payload == b""

    def test_jsonable_payload_matches_v1_shapes(self):
        rng = np.random.default_rng(2)
        payload = {
            "membership": rng.random((3, 4)) < 0.5,
            "first_slots": rng.integers(-1, 9, (3, 4)).astype(np.int64),
            "row_start": 0,
        }
        out = protocol.jsonable_payload(payload)
        assert out["row_start"] == 0
        assert isinstance(out["membership"], list)
        assert all(
            value in (0, 1) for row in out["membership"] for value in row
        )
        assert isinstance(out["first_slots"][0][0], int)


def drive_buffered(reader, data, rng=None, step=None):
    """Write ``data`` into the reader's own buffers, transport-style."""
    frames = []
    cursor = 0
    while cursor < len(data):
        view = reader.get_buffer(-1)
        if step is not None:
            n = step
        else:
            n = int(rng.integers(1, 97)) if rng is not None else len(view)
        n = min(n, len(view), len(data) - cursor)
        view[:n] = data[cursor : cursor + n]
        frames.extend(reader.buffer_updated(n))
        cursor += n
    return frames


class TestBufferedIngestion:
    """get_buffer/buffer_updated must match feed() frame for frame."""

    def test_large_frame_assembles_in_place(self):
        rng = np.random.default_rng(11)
        packed, grid, batch = random_packed(rng, 64, 65536)
        wire = protocol.encode_request(
            packed, grid.n_samples, grid.dt, request_id=9
        )
        assert len(wire) > protocol.FrameReader._SCRATCH_BYTES
        reader = protocol.FrameReader()
        frames = drive_buffered(reader, wire, step=65536)
        assert len(frames) == 1
        request = protocol.parse_request(frames[0])
        assert request.request_id == 9
        assert np.array_equal(request.packed, packed)
        assert (
            SpikeTrainBatch.from_packed(request.packed, request.grid())
            == batch
        )

    def test_direct_assembly_buffer_spans_the_whole_tail(self):
        # Once the length prefix declares a large frame, the exposed
        # buffer is the frame's own remaining region, so the transport
        # can drain it in one recv_into.
        rng = np.random.default_rng(12)
        packed, grid, _batch = random_packed(rng, 64, 65536)
        wire = protocol.encode_request(packed, grid.n_samples, grid.dt)
        reader = protocol.FrameReader()
        view = reader.get_buffer(-1)
        first = 1024
        view[:first] = wire[:first]
        assert reader.buffer_updated(first) == []
        tail = reader.get_buffer(-1)
        assert len(tail) == len(wire) - first
        tail[: len(tail)] = wire[first:]
        frames = reader.buffer_updated(len(tail))
        assert len(frames) == 1
        assert np.array_equal(
            protocol.parse_request(frames[0]).packed, packed
        )

    def test_randomized_chunking_matches_feed(self):
        rng = np.random.default_rng(13)
        stream = b""
        for request_id in range(3):
            packed, grid, _batch = random_packed(rng, 2, 777)
            stream += protocol.encode_request(
                packed, grid.n_samples, grid.dt, request_id=request_id
            )
        stream += protocol.encode_stats_request(request_id=3)
        fed = protocol.FrameReader().feed(stream)
        driven = drive_buffered(
            protocol.FrameReader(), stream, rng=np.random.default_rng(14)
        )
        assert len(driven) == len(fed) == 4
        for a, b in zip(driven, fed):
            assert a.version == b.version
            assert a.frame_type == b.frame_type
            assert a.request_id == b.request_id
            assert bytes(a.payload) == bytes(b.payload)

    def test_small_and_large_frames_interleave(self):
        rng = np.random.default_rng(15)
        small_packed, grid, _b = random_packed(rng, 1, 64)
        big_packed, big_grid, _b2 = random_packed(rng, 64, 65536)
        stream = (
            protocol.encode_request(
                small_packed, grid.n_samples, grid.dt, request_id=1
            )
            + protocol.encode_request(
                big_packed, big_grid.n_samples, big_grid.dt, request_id=2
            )
            + protocol.encode_request(
                small_packed, grid.n_samples, grid.dt, request_id=3
            )
        )
        frames = drive_buffered(
            protocol.FrameReader(), stream, rng=np.random.default_rng(16)
        )
        assert [frame.request_id for frame in frames] == [1, 2, 3]
        assert np.array_equal(
            protocol.parse_request(frames[1]).packed, big_packed
        )

    def test_poison_defers_like_feed(self):
        rng = np.random.default_rng(17)
        packed, grid, _batch = random_packed(rng, 1, 64)
        good = protocol.encode_request(
            packed, grid.n_samples, grid.dt, request_id=5
        )
        bad = bytearray(good)
        bad[4:8] = b"XXXX"  # corrupt the magic
        reader = protocol.FrameReader()
        frames = drive_buffered(reader, good + bytes(bad), step=1 << 20)
        assert [frame.request_id for frame in frames] == [5]
        assert reader.pending_error is not None
        assert reader.pending_error.code == protocol.ERR_BAD_MAGIC
        with pytest.raises(ProtocolError):
            reader.buffer_updated(0)

    def test_oversized_declared_length_raises(self):
        reader = protocol.FrameReader(max_frame_bytes=1024)
        view = reader.get_buffer(-1)
        prefix = (1 << 20).to_bytes(4, "little")
        view[: len(prefix)] = prefix
        with pytest.raises(ProtocolError):
            reader.buffer_updated(len(prefix))
