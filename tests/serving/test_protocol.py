"""Protocol codec tests: round trips, framing rejection, ragged grids.

The codec is the serving boundary's contract, so these tests are
deliberately adversarial: every malformed frame class documented in
``docs/protocol.md`` (bad magic, unsupported version, truncated and
oversized payloads, nonzero reserved fields, dimension mismatches)
must be rejected with the matching error code, and well-formed frames
must round-trip bit-identically over grids whose length is *not* a
multiple of 8 or 64 — the ragged-tail shapes the packed kernels are
property-tested over.
"""

import numpy as np
import pytest

from repro.backend.batch import SpikeTrainBatch
from repro.backend.packed import n_packed_bytes
from repro.errors import ProtocolError
from repro.serving import protocol
from repro.units import SimulationGrid

#: Grid lengths exercising clean, byte-ragged and word-ragged tails.
RAGGED_LENGTHS = [1, 7, 8, 63, 64, 65, 100, 511, 1000]


def random_packed(rng, n_wires, n_samples, density=0.05):
    """A random packed bitset with a clean tail, plus its batch."""
    grid = SimulationGrid(n_samples=n_samples, dt=1e-9)
    raster = rng.random((n_wires, n_samples)) < density
    batch = SpikeTrainBatch.from_raster(raster, grid)
    return batch.packbits(), grid, batch


def feed_in_chunks(reader, data, rng):
    """Feed ``data`` in random-size chunks, collecting every frame."""
    frames = []
    cursor = 0
    while cursor < len(data):
        step = int(rng.integers(1, 97))
        frames.extend(reader.feed(data[cursor : cursor + step]))
        cursor += step
    return frames


class TestRequestRoundTrip:
    @pytest.mark.parametrize("n_samples", RAGGED_LENGTHS)
    def test_ragged_grids_round_trip_bit_identically(self, n_samples):
        rng = np.random.default_rng(n_samples)
        packed, grid, batch = random_packed(rng, 5, n_samples, density=0.3)
        wire = protocol.encode_request(
            packed, grid.n_samples, grid.dt, request_id=42
        )
        frames = protocol.FrameReader().feed(wire)
        assert len(frames) == 1
        request = protocol.parse_request(frames[0])
        assert request.mode == "identify"
        assert request.request_id == 42
        assert request.n_samples == grid.n_samples
        assert request.dt == grid.dt
        assert np.array_equal(request.packed, packed)
        # The parsed payload rebuilds the exact batch (packed-primary).
        rebuilt = SpikeTrainBatch.from_packed(request.packed, request.grid())
        assert rebuilt == batch

    def test_property_randomized_round_trips(self):
        rng = np.random.default_rng(2016)
        for _trial in range(25):
            n_samples = int(rng.integers(1, 700))
            n_wires = int(rng.integers(1, 9))
            packed, grid, batch = random_packed(
                rng, n_wires, n_samples, density=float(rng.uniform(0, 0.5))
            )
            mode = ["identify", "membership"][int(rng.integers(2))]
            start = int(rng.integers(0, n_samples + 1))
            limit = (
                None if rng.integers(2) else int(rng.integers(0, n_samples))
            )
            wire = protocol.encode_request(
                packed,
                grid.n_samples,
                grid.dt,
                mode=mode,
                start_slot=start,
                limit=limit,
                n_shards=int(rng.integers(0, 9)),
                request_id=int(rng.integers(0, 2**32)),
            )
            frames = feed_in_chunks(protocol.FrameReader(), wire, rng)
            assert len(frames) == 1
            request = protocol.parse_request(frames[0])
            assert request.mode == mode
            assert request.start_slot == start
            assert request.limit == limit
            assert np.array_equal(request.packed, packed)
            assert (
                SpikeTrainBatch.from_packed(request.packed, request.grid())
                == batch
            )

    def test_several_frames_in_one_stream(self):
        rng = np.random.default_rng(3)
        stream = b""
        for request_id in range(4):
            packed, grid, _batch = random_packed(rng, 2, 100)
            stream += protocol.encode_request(
                packed, grid.n_samples, grid.dt, request_id=request_id
            )
        frames = feed_in_chunks(protocol.FrameReader(), stream, rng)
        assert [frame.request_id for frame in frames] == [0, 1, 2, 3]

    def test_limit_sentinel_is_none(self):
        rng = np.random.default_rng(4)
        packed, grid, _batch = random_packed(rng, 1, 64)
        wire = protocol.encode_request(
            packed, grid.n_samples, grid.dt, mode="membership", limit=None
        )
        request = protocol.parse_request(
            protocol.FrameReader().feed(wire)[0]
        )
        assert request.limit is None


class TestJsonFrames:
    def test_shard_and_done_round_trip(self):
        for ftype in (protocol.FRAME_SHARD, protocol.FRAME_DONE):
            payload = {"elements": [1, 2, -1], "wall_seconds": 0.25}
            wire = protocol.encode_json_frame(ftype, 9, payload)
            frame = protocol.FrameReader().feed(wire)[0]
            assert frame.frame_type == ftype
            assert frame.request_id == 9
            assert protocol.parse_json_frame(frame) == payload

    def test_error_frame_carries_code_and_name(self):
        wire = protocol.encode_error(7, protocol.ERR_BAD_GRID, "wrong grid")
        payload = protocol.parse_json_frame(
            protocol.FrameReader().feed(wire)[0]
        )
        assert payload["code"] == protocol.ERR_BAD_GRID
        assert payload["error"] == "BAD_GRID"
        assert payload["message"] == "wrong grid"

    def test_non_json_payload_rejected(self):
        wire = protocol.encode_frame(protocol.FRAME_DONE, 1, b"\xff\xfe{")
        frame = protocol.FrameReader().feed(wire)[0]
        with pytest.raises(ProtocolError) as err:
            protocol.parse_json_frame(frame)
        assert err.value.code == protocol.ERR_BAD_FRAME


class TestFramingRejection:
    def encode_one(self, **overrides):
        rng = np.random.default_rng(5)
        packed, grid, _batch = random_packed(rng, 3, 100)
        return protocol.encode_request(
            packed, grid.n_samples, grid.dt, **overrides
        )

    def test_bad_magic(self):
        wire = bytearray(self.encode_one())
        wire[4:8] = b"NOPE"
        with pytest.raises(ProtocolError) as err:
            protocol.FrameReader().feed(bytes(wire))
        assert err.value.code == protocol.ERR_BAD_MAGIC

    def test_unsupported_version(self):
        wire = bytearray(self.encode_one())
        wire[8] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError) as err:
            protocol.FrameReader().feed(bytes(wire))
        assert err.value.code == protocol.ERR_BAD_VERSION

    def test_nonzero_flags_rejected(self):
        wire = bytearray(self.encode_one())
        wire[10] = 1  # flags low byte
        with pytest.raises(ProtocolError) as err:
            protocol.FrameReader().feed(bytes(wire))
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_oversized_frame_rejected_from_the_length_prefix(self):
        reader = protocol.FrameReader(max_frame_bytes=1024)
        big = (2048).to_bytes(4, "little")
        with pytest.raises(ProtocolError) as err:
            reader.feed(big)
        assert err.value.code == protocol.ERR_FRAME_TOO_LARGE

    def test_declared_length_below_header_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.FrameReader().feed((4).to_bytes(4, "little"))
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_truncated_payload_rejected(self):
        """A frame cut short re-framed as complete must not parse."""
        wire = self.encode_one()
        cut = wire[4 : len(wire) - 37]  # drop the length prefix + a tail
        frame = protocol.FrameReader().feed(
            len(cut).to_bytes(4, "little") + cut
        )[0]
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame)
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_payload_shorter_than_request_header_rejected(self):
        frame = protocol.Frame(
            version=1,
            frame_type=protocol.FRAME_IDENTIFY,
            request_id=0,
            payload=b"\x00" * 8,
        )
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame)
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_trailing_garbage_rejected(self):
        wire = self.encode_one()
        body = wire[4:] + b"\x00" * 3
        frame = protocol.FrameReader().feed(
            len(body).to_bytes(4, "little") + body
        )[0]
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame)
        assert err.value.code == protocol.ERR_BAD_FRAME

    def test_incomplete_frame_waits_instead_of_erroring(self):
        wire = self.encode_one()
        reader = protocol.FrameReader()
        assert reader.feed(wire[:-10]) == []
        assert reader.buffered_bytes == len(wire) - 10
        frames = reader.feed(wire[-10:])
        assert len(frames) == 1
        assert reader.buffered_bytes == 0

    def test_response_frame_is_not_a_request(self):
        wire = protocol.encode_json_frame(protocol.FRAME_DONE, 1, {})
        frame = protocol.FrameReader().feed(wire)[0]
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame)
        assert err.value.code == protocol.ERR_BAD_TYPE


class TestPoisonedStreamKeepsEarlierFrames:
    def test_good_frames_survive_a_later_corrupt_frame(self):
        rng = np.random.default_rng(8)
        packed, grid, _batch = random_packed(rng, 2, 100)
        good = protocol.encode_request(
            packed, grid.n_samples, grid.dt, request_id=1
        )
        corrupt = (32).to_bytes(4, "little") + b"X" * 32
        reader = protocol.FrameReader()
        frames = reader.feed(good + corrupt)
        # The valid frame is returned, the violation is deferred...
        assert len(frames) == 1
        assert frames[0].request_id == 1
        assert reader.pending_error is not None
        assert reader.pending_error.code == protocol.ERR_BAD_MAGIC
        # ...and raised on the next feed: the stream is unusable.
        with pytest.raises(ProtocolError) as err:
            reader.feed(b"")
        assert err.value.code == protocol.ERR_BAD_MAGIC


class TestErrorsSurvivePickling:
    def test_serving_and_protocol_errors_round_trip(self):
        """Worker-raised errors cross the pool's pickle boundary intact."""
        import pickle

        from repro.errors import ProtocolError as PE
        from repro.errors import ServingError as SE

        for exc in (SE(7, "budget"), PE(protocol.ERR_BAD_MAGIC, "magic")):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert clone.code == exc.code
            assert str(clone) == str(exc)


class TestRequestValidation:
    def test_zero_wires_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(
                np.empty((0, n_packed_bytes(64)), dtype=np.uint8), 64, 1e-9
            )

    def test_wrong_packed_width_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(
                np.zeros((2, 9), dtype=np.uint8), 64, 1e-9
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(
                np.zeros((1, 8), dtype=np.uint8), 64, 1e-9, mode="classify"
            )

    def test_start_slot_outside_grid_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(
                np.zeros((1, 8), dtype=np.uint8), 64, 1e-9, start_slot=65
            )

    def test_request_nbytes_matches_encoding(self):
        rng = np.random.default_rng(6)
        packed, grid, _batch = random_packed(rng, 4, 100)
        wire = protocol.encode_request(packed, grid.n_samples, grid.dt)
        assert len(wire) == 4 + protocol.request_nbytes(4, 100)
