"""Fast path, pipelining, coalescing: equivalence under concurrency.

The tentpole contract of the optimised serving paths: whatever route a
request takes — fast path, coalesced micro-batch, sharded pool, any
mix of protocol versions, any interleaving of pipelined request ids —
the merged reply is **bit-identical** to the serial compute path, and
the payload never materialises a raster server-side.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ServingError
from repro.logic.correlator import CoincidenceCorrelator
from repro.serving import protocol
from repro.serving.client import AsyncServingClient, ServingClient
from repro.serving.server import (
    ServerConfig,
    ServerThread,
    build_serving_basis,
)

SMALL = dict(n_samples=4096, basis_size=8, source_isi_samples=16, seed=7)


@pytest.fixture(scope="module")
def small_basis():
    return build_serving_basis(ServerConfig(**SMALL))


@pytest.fixture(scope="module")
def fast_server():
    """Fast path on (default threshold), no coalescing."""
    with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
        yield handle


@pytest.fixture(scope="module")
def coalescing_server():
    """Coalescing on with a wide-open window."""
    config = ServerConfig(jobs=1, coalesce_window=0.05, **SMALL)
    with ServerThread(config) as handle:
        yield handle


@pytest.fixture(scope="module")
def request_batches(small_basis):
    """Several small wire batches with known element rows."""
    rng = np.random.default_rng(11)
    batches = []
    for _ in range(8):
        elements = rng.integers(small_basis.size, size=3)
        batches.append(
            (small_basis.as_batch().select_rows(elements), elements)
        )
    return batches


def local_identify(basis, wires):
    return CoincidenceCorrelator(basis).identify_batch(
        wires, missing="none"
    )


def gather(coroutine):
    return asyncio.run(coroutine)


class TestFastPath:
    def test_fast_path_bit_identical_to_pool_path(
        self, small_basis, request_batches
    ):
        """The same request served fast-path and sharded answers equal."""
        wires, _ = request_batches[0]
        local = local_identify(small_basis, wires)
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                fast = client.identify(wires)  # n_shards unset -> fast path
                sharded = client.identify(wires, n_shards=2)
        assert fast.summary["transport"] == "fast-path"
        assert sharded.summary["transport"] == "in-process"
        for reply in (fast, sharded):
            assert np.array_equal(reply.elements, local.elements)
            assert np.array_equal(
                reply.decision_slots, local.decision_slots
            )
            assert np.array_equal(
                reply.spikes_inspected, local.spikes_inspected
            )

    def test_fast_path_requests_skip_the_inflight_budget(
        self, small_basis, request_batches
    ):
        """A budget far below the payload size still serves fast-path
        requests — they pin no arena, so they are never OVERLOADED."""
        wires, _ = request_batches[0]
        config = ServerConfig(jobs=1, max_inflight_bytes=64, **SMALL)
        with ServerThread(config) as handle:
            with ServingClient(handle.host, handle.port) as client:
                reply = client.identify(wires)
                assert reply.summary["transport"] == "fast-path"
                # The sharded route must still hit the budget wall.
                with pytest.raises(ServingError) as err:
                    client.identify(wires, n_shards=2)
        assert err.value.code == protocol.ERR_OVERLOADED

    def test_fast_path_never_materialises_raster_or_csr(
        self, fast_server, request_batches
    ):
        wires, _ = request_batches[1]
        with ServingClient(fast_server.host, fast_server.port) as client:
            reply = client.identify(wires)
        assert reply.summary["server_residency"]["raster"] is False
        assert reply.summary["server_residency"]["csr"] is False
        assert reply.summary["server_residency"]["packed"] is True
        for shard in reply.shards:
            assert shard["residency"]["raster"] is False
            assert shard["residency"]["csr"] is False

    def test_membership_on_the_fast_path(
        self, fast_server, small_basis, request_batches
    ):
        wires, _ = request_batches[2]
        local = CoincidenceCorrelator(small_basis).detect_members_batch(
            wires
        )
        with ServingClient(fast_server.host, fast_server.port) as client:
            reply = client.membership(wires)
        assert reply.summary["transport"] == "fast-path"
        assert np.array_equal(reply.membership, local.membership)
        assert np.array_equal(reply.first_slots, local.first_slots)


class TestVersionNegotiation:
    def test_mixed_v1_and_v2_clients_on_one_server(
        self, fast_server, small_basis, request_batches
    ):
        """JSON and binary clients share a server, answers identical."""
        wires, _ = request_batches[3]
        local = local_identify(small_basis, wires)
        with ServingClient(
            fast_server.host, fast_server.port, version=1
        ) as v1, ServingClient(
            fast_server.host, fast_server.port, version=2
        ) as v2:
            reply_v1 = v1.identify(wires)
            reply_v2 = v2.identify(wires)
        for reply in (reply_v1, reply_v2):
            assert np.array_equal(reply.elements, local.elements)
            assert np.array_equal(
                reply.decision_slots, local.decision_slots
            )

    def test_v1_membership_matches_v2(
        self, fast_server, small_basis, request_batches
    ):
        wires, _ = request_batches[4]
        with ServingClient(
            fast_server.host, fast_server.port, version=1
        ) as v1, ServingClient(
            fast_server.host, fast_server.port, version=2
        ) as v2:
            reply_v1 = v1.membership(wires, n_shards=2)
            reply_v2 = v2.membership(wires, n_shards=2)
        assert np.array_equal(reply_v1.membership, reply_v2.membership)
        assert np.array_equal(reply_v1.first_slots, reply_v2.first_slots)


class TestPipelining:
    def test_interleaved_request_ids_all_answer_correctly(
        self, fast_server, small_basis, request_batches
    ):
        """Many concurrent requests on one connection, demuxed by id."""

        async def run():
            client = await AsyncServingClient.open(
                fast_server.host, fast_server.port
            )
            try:
                return await asyncio.gather(
                    *[
                        client.identify(wires)
                        for wires, _ in request_batches
                    ]
                )
            finally:
                await client.aclose()

        replies = gather(run())
        for (wires, _), reply in zip(request_batches, replies):
            local = local_identify(small_basis, wires)
            assert np.array_equal(reply.elements, local.elements)
            assert np.array_equal(
                reply.decision_slots, local.decision_slots
            )
            assert np.array_equal(
                reply.spikes_inspected, local.spikes_inspected
            )

    def test_pipelined_mixed_modes_share_a_connection(
        self, fast_server, small_basis, request_batches
    ):
        wires, _ = request_batches[5]
        local_id = local_identify(small_basis, wires)
        local_mem = CoincidenceCorrelator(small_basis).detect_members_batch(
            wires
        )

        async def run():
            async with await AsyncServingClient.open(
                fast_server.host, fast_server.port
            ) as client:
                return await asyncio.gather(
                    client.identify(wires),
                    client.membership(wires),
                    client.stats(),
                )

        identify_reply, membership_reply, stats = gather(run())
        assert np.array_equal(identify_reply.elements, local_id.elements)
        assert np.array_equal(
            membership_reply.membership, local_mem.membership
        )
        assert stats["kind"] == "stats"
        assert stats["requests_served"] >= 2


class TestCoalescing:
    def test_coalesced_responses_bit_identical_to_serial(
        self, coalescing_server, small_basis, request_batches
    ):
        """Concurrent small requests coalesce into one wide batch and
        still split back to each request's exact serial answer."""

        async def run():
            client = await AsyncServingClient.open(
                coalescing_server.host, coalescing_server.port
            )
            try:
                return await asyncio.gather(
                    *[
                        client.identify(wires)
                        for wires, _ in request_batches
                    ]
                )
            finally:
                await client.aclose()

        replies = gather(run())
        coalesced = 0
        for (wires, _), reply in zip(request_batches, replies):
            local = local_identify(small_basis, wires)
            assert np.array_equal(reply.elements, local.elements)
            assert np.array_equal(
                reply.decision_slots, local.decision_slots
            )
            assert reply.summary["transport"] == "coalesced"
            assert reply.shards[0]["row_start"] == 0
            assert reply.shards[0]["row_stop"] == wires.n_trains
            coalesced += 1
        assert coalesced == len(request_batches)

    def test_coalesced_batches_counted_and_smaller_than_requests(
        self, small_basis, request_batches
    ):
        config = ServerConfig(jobs=1, coalesce_window=0.05, **SMALL)
        with ServerThread(config) as handle:

            async def run():
                client = await AsyncServingClient.open(
                    handle.host, handle.port
                )
                try:
                    await asyncio.gather(
                        *[
                            client.identify(wires)
                            for wires, _ in request_batches
                        ]
                    )
                    return await client.stats()
                finally:
                    await client.aclose()

            stats = gather(run())
        assert stats["coalesced_requests"] == len(request_batches)
        assert 1 <= stats["coalesced_batches"] < len(request_batches)
        assert stats["errors"] == 0

    def test_coalescing_keeps_residency_packed_only(
        self, coalescing_server, request_batches
    ):
        wires, _ = request_batches[6]
        with ServingClient(
            coalescing_server.host, coalescing_server.port
        ) as client:
            reply = client.identify(wires)
        assert reply.summary["transport"] == "coalesced"
        assert reply.summary["server_residency"]["raster"] is False
        assert reply.shards[0]["residency"]["raster"] is False

    def test_membership_coalesces_separately_from_identify(
        self, coalescing_server, small_basis, request_batches
    ):
        """Different scan headers never share a micro-batch."""
        wires, _ = request_batches[7]
        local_mem = CoincidenceCorrelator(small_basis).detect_members_batch(
            wires
        )

        async def run():
            async with await AsyncServingClient.open(
                coalescing_server.host, coalescing_server.port
            ) as client:
                return await asyncio.gather(
                    client.identify(wires),
                    client.membership(wires),
                )

        identify_reply, membership_reply = gather(run())
        assert identify_reply.summary["transport"] == "coalesced"
        assert membership_reply.summary["transport"] == "coalesced"
        assert np.array_equal(
            membership_reply.membership, local_mem.membership
        )
        assert np.array_equal(
            membership_reply.first_slots, local_mem.first_slots
        )


class TestStats:
    def test_stats_frame_counts_paths(self, small_basis, request_batches):
        wires, _ = request_batches[0]
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                client.identify(wires)
                client.identify(wires, n_shards=2)
                stats = client.stats()
        assert stats["requests_served"] == 2
        assert stats["fast_path_requests"] == 1
        assert stats["pool_path_requests"] == 1
        assert stats["coalesced_requests"] == 0
        assert stats["latency_window"] == 2
        assert stats["latency_p50_seconds"] > 0
        assert stats["latency_p99_seconds"] >= stats["latency_p50_seconds"]

    def test_errors_counted(self, small_basis, request_batches):
        wires, _ = request_batches[0]
        with ServerThread(ServerConfig(jobs=1, **SMALL)) as handle:
            with ServingClient(handle.host, handle.port) as client:
                bad_grid_packed = np.zeros((2, 8), dtype=np.uint8)
                from repro.units import SimulationGrid

                with pytest.raises(ServingError):
                    client.identify(
                        bad_grid_packed,
                        SimulationGrid(n_samples=64, dt=1e-9),
                    )
                stats = client.stats()
        assert stats["errors"] == 1
        assert stats["requests_served"] == 0
