"""Tests for the serving tier's process-aware logging."""

import io
import logging
import os

import pytest

from repro.serving import log


@pytest.fixture(autouse=True)
def _isolated_logger():
    """Leave the shared logger unconfigured for the next test."""
    yield
    logger = logging.getLogger("repro.serving")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    log._configured_pid = None


class TestLevelFromEnv:
    def test_default_is_info(self, monkeypatch):
        monkeypatch.delenv(log.LEVEL_ENV, raising=False)
        assert log.level_from_env() == logging.INFO

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("DEBUG", logging.DEBUG),
            ("info", logging.INFO),
            ("Warning", logging.WARNING),
            ("ERROR", logging.ERROR),
        ],
    )
    def test_named_levels(self, monkeypatch, name, expected):
        monkeypatch.setenv(log.LEVEL_ENV, name)
        assert log.level_from_env() == expected

    def test_unknown_name_falls_back(self, monkeypatch):
        monkeypatch.setenv(log.LEVEL_ENV, "LOUD")
        assert log.level_from_env() == logging.INFO
        assert log.level_from_env(default=logging.ERROR) == logging.ERROR


class TestConfigure:
    def test_records_carry_the_pid_prefix(self):
        buf = io.StringIO()
        logger = log.configure(stream=buf)
        logger.info("listening on 127.0.0.1:8642")
        line = buf.getvalue().strip()
        assert line == (
            f"[{os.getpid()}] INFO repro.serving: listening on 127.0.0.1:8642"
        )

    def test_env_level_applies(self, monkeypatch):
        monkeypatch.setenv(log.LEVEL_ENV, "WARNING")
        buf = io.StringIO()
        logger = log.configure(stream=buf)
        logger.info("suppressed")
        logger.warning("kept")
        assert "suppressed" not in buf.getvalue()
        assert "kept" in buf.getvalue()

    def test_explicit_level_beats_env(self, monkeypatch):
        monkeypatch.setenv(log.LEVEL_ENV, "ERROR")
        buf = io.StringIO()
        logger = log.configure(stream=buf, level=logging.DEBUG)
        logger.debug("visible")
        assert "visible" in buf.getvalue()

    def test_reconfigure_does_not_double_log(self):
        first = io.StringIO()
        second = io.StringIO()
        log.configure(stream=first)
        logger = log.configure(stream=second)
        logger.info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_no_propagation_to_root(self, caplog):
        buf = io.StringIO()
        logger = log.configure(stream=buf)
        with caplog.at_level(logging.INFO):
            logger.info("stays in the serving handler")
        assert "stays in the serving handler" not in caplog.text


class TestGetLogger:
    def test_auto_configures_once_per_process(self):
        logger = log.get_logger()
        assert logging.getLogger("repro.serving").handlers

        assert logger.name == "repro.serving"

    def test_child_scoping(self):
        log.configure(stream=io.StringIO())
        assert log.get_logger("worker").name == "repro.serving.worker"

    def test_child_records_flow_through_parent_handler(self):
        buf = io.StringIO()
        log.configure(stream=buf)
        log.get_logger("worker").info("worker 1: served 3 requests")
        line = buf.getvalue()
        assert "repro.serving.worker" in line
        assert f"[{os.getpid()}]" in line
