"""Tests for repro.analysis.tables: result tables and rendering."""

import math

import pytest

from repro.analysis.tables import PaperValue, StatsRow, StatsTable
from repro.spikes.statistics import IsiStatistics


def stats(tau: float, dtau: float, n: int = 100, dt: float = 1e-12) -> IsiStatistics:
    return IsiStatistics(
        n_spikes=n, mean_isi_samples=tau, rms_isi_samples=dtau, dt=dt
    )


class TestStatsRow:
    def test_tau_ratio(self):
        row = StatsRow(
            "x",
            stats(90.0, 10.0),
            PaperValue(tau_seconds=90e-12, dtau_seconds=10e-12),
        )
        assert row.tau_ratio() == pytest.approx(1.0)

    def test_ratio_none_without_paper_value(self):
        assert StatsRow("x", stats(90.0, 10.0)).tau_ratio() is None

    def test_ratio_none_for_nan_measurement(self):
        row = StatsRow(
            "x", stats(math.nan, math.nan), PaperValue(tau_seconds=1e-12)
        )
        assert row.tau_ratio() is None


class TestStatsTable:
    def test_render_contains_rows_and_title(self):
        table = StatsTable("My Table")
        table.add(StatsRow("alpha", stats(10.0, 2.0)))
        table.add(StatsRow("beta", stats(20.0, 4.0)))
        text = table.render()
        assert "My Table" in text
        assert "alpha" in text and "beta" in text

    def test_render_paper_columns(self):
        table = StatsTable("T")
        table.add(
            StatsRow("x", stats(90.0, 10.0), PaperValue(tau_seconds=93e-12))
        )
        assert "93 ps" in table.render()

    def test_missing_paper_values_render_dash(self):
        table = StatsTable("T")
        table.add(StatsRow("x", stats(90.0, 10.0)))
        assert "-" in table.render()

    def test_csv_export(self):
        table = StatsTable("T")
        table.add(
            StatsRow("x", stats(10.0, 2.0), PaperValue(tau_seconds=1e-11))
        )
        csv = table.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0].startswith("label,")
        assert lines[1].startswith("x,100,")
        assert "1.000000e-11" in lines[1]

    def test_csv_empty_fields_for_missing(self):
        table = StatsTable("T")
        table.add(StatsRow("x", stats(10.0, 2.0)))
        assert table.to_csv().strip().endswith(",,")

    def test_len_and_iter(self):
        table = StatsTable("T", [StatsRow("x", stats(1.0, 0.5))])
        assert len(table) == 1
        assert [row.label for row in table] == ["x"]
