"""Tests for repro.analysis.rice: zero-crossing theory vs simulation."""

import math

import pytest

from repro.analysis.rice import (
    empirical_crossing_rate,
    relative_rate_error,
    rice_mean_isi,
    rice_rate,
    rice_rate_power_law,
    rice_rate_white,
)
from repro.errors import ConfigurationError
from repro.noise.spectra import (
    PAPER_PINK_BAND,
    PAPER_WHITE_BAND,
    PinkSpectrum,
    WhiteSpectrum,
)
from repro.noise.synthesis import NoiseSynthesizer
from repro.units import paper_white_grid


class TestClosedForms:
    def test_white_matches_spectrum_method(self):
        via_formula = rice_rate_white(5e6, 10e9)
        via_spectrum = rice_rate(WhiteSpectrum(PAPER_WHITE_BAND))
        assert via_formula == pytest.approx(via_spectrum)

    def test_pink_matches_spectrum_method(self):
        via_formula = rice_rate_power_law(2.5e6, 10e9, exponent=1.0)
        via_spectrum = rice_rate(PinkSpectrum(PAPER_PINK_BAND))
        assert via_formula == pytest.approx(via_spectrum)

    def test_paper_white_isi(self):
        """The paper's '90 ps' is Rice's ~86.6 ps for the 5 MHz-10 GHz band."""
        isi = rice_mean_isi(WhiteSpectrum(PAPER_WHITE_BAND))
        assert isi == pytest.approx(86.6e-12, rel=0.005)

    def test_paper_pink_isi(self):
        """The paper's '225 ps' sits near Rice's ~204 ps for 1/f."""
        isi = rice_mean_isi(PinkSpectrum(PAPER_PINK_BAND))
        assert isi == pytest.approx(204e-12, rel=0.02)

    def test_white_lowpass_limit(self):
        # f1 -> 0: rate -> 2*B/sqrt(3).
        assert rice_rate_white(0.0, 3.0) == pytest.approx(2 * 3.0 / math.sqrt(3.0))

    def test_power_law_zero_exponent_equals_white(self):
        assert rice_rate_power_law(1.0, 100.0, 0.0) == pytest.approx(
            rice_rate_white(1.0, 100.0)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rice_rate_white(10.0, 1.0)
        with pytest.raises(ConfigurationError):
            rice_rate_power_law(0.0, 10.0, 1.0)
        with pytest.raises(ConfigurationError):
            rice_rate_power_law(1.0, 10.0, 3.0)


class TestEmpiricalAgreement:
    def test_white_within_five_percent(self):
        grid = paper_white_grid(n_samples=32768)
        spectrum = WhiteSpectrum(PAPER_WHITE_BAND)
        record = NoiseSynthesizer(spectrum, grid).generate(0)
        assert relative_rate_error(record, grid, spectrum) < 0.05

    def test_pink_within_fifteen_percent(self):
        grid = paper_white_grid(n_samples=32768)
        spectrum = PinkSpectrum(PAPER_PINK_BAND)
        record = NoiseSynthesizer(spectrum, grid).generate(1)
        # 1/f records have large low-frequency excursions; looser bound.
        assert relative_rate_error(record, grid, spectrum) < 0.15

    def test_empirical_rate_positive(self):
        grid = paper_white_grid(n_samples=8192)
        spectrum = WhiteSpectrum(PAPER_WHITE_BAND)
        record = NoiseSynthesizer(spectrum, grid).generate(2)
        assert empirical_crossing_rate(record, grid) > 0
