"""Tests for repro.analysis.capacity: link capacity analysis."""

import math

import numpy as np
import pytest

from repro.analysis.capacity import (
    capacity_sweep,
    link_capacity,
    optimal_radix,
)
from repro.errors import ConfigurationError
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=65536, dt=1e-12)


@pytest.fixture
def source():
    return SpikeTrain(np.arange(0, GRID.n_samples, 8), GRID)


class TestLinkCapacity:
    def test_bits_identity(self, source):
        capacity = link_capacity(source, 4)
        assert capacity.bits_per_package == pytest.approx(2.0)
        assert capacity.bits_per_second == pytest.approx(
            capacity.package_rate * 2.0
        )

    def test_package_rate_scales_inverse_m(self, source):
        narrow = link_capacity(source, 2)
        wide = link_capacity(source, 8)
        assert narrow.package_rate == pytest.approx(4 * wide.package_rate, rel=0.01)

    def test_mean_tick(self, source):
        capacity = link_capacity(source, 4)
        # Periodic source with spacing 8: a package spans 3 gaps = 24 dt.
        assert capacity.mean_tick_seconds == pytest.approx(24e-12, rel=0.01)

    def test_radix_validation(self, source):
        with pytest.raises(ConfigurationError):
            link_capacity(source, 1)


class TestSweep:
    def test_ternary_optimum(self, source):
        """The (R/M)·log2 M curve peaks at M = 3 among integers."""
        sweep = capacity_sweep(source, [2, 3, 4, 5, 8])
        best = max(sweep, key=lambda c: c.bits_per_second)
        assert best.radix == 3

    def test_matches_analytic_curve(self, source):
        spike_rate = len(source) / GRID.duration
        for capacity in capacity_sweep(source, [2, 3, 4]):
            analytic = (spike_rate / capacity.radix) * math.log2(capacity.radix)
            assert capacity.bits_per_second == pytest.approx(analytic, rel=0.02)

    def test_on_noise_train(self):
        from repro.hyperspace.builders import paper_default_synthesizer
        from repro.noise.synthesis import make_rng
        from repro.spikes.zero_crossing import AllCrossingDetector

        synthesizer = paper_default_synthesizer()
        record = synthesizer.generate(make_rng(9))
        train = AllCrossingDetector().detect(record, synthesizer.grid)
        sweep = capacity_sweep(train, [2, 3, 4, 8])
        best = max(sweep, key=lambda c: c.bits_per_second)
        assert best.radix == 3
        # The paper-band source (~11.5 G crossings/s) gives ~6 Gbit/s at M=3.
        assert best.bits_per_second > 4e9


class TestOptimalRadix:
    def test_analytic_argmax_is_three(self):
        assert optimal_radix(range(2, 17), spike_rate=1e10) == 3

    def test_restricted_candidates(self):
        assert optimal_radix([4, 8, 16], spike_rate=1e10) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_radix([2, 3], spike_rate=0.0)
        with pytest.raises(ConfigurationError):
            optimal_radix([1], spike_rate=1e9)
