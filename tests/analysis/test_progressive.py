"""Tests for repro.analysis.progressive: rough-then-refine readout."""

import pytest

from repro.analysis.progressive import (
    progressive_readout,
    value_error_profile,
)
from repro.errors import ConfigurationError
from repro.hyperspace.basis import HyperspaceBasis
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=256, dt=1e-12)


@pytest.fixture
def skewed_basis():
    """Element 0 slow (first spike at 100), elements 1-2 fast."""
    return HyperspaceBasis(
        [
            SpikeTrain([100, 200], GRID),
            SpikeTrain([1, 50, 150], GRID),
            SpikeTrain([2, 51, 151], GRID),
        ]
    )


class TestReadout:
    def test_detection_slots_follow_first_spikes(self, skewed_basis):
        readouts = progressive_readout(skewed_basis, [0, 1, 2], radix=3)
        assert readouts[0].detection_slot == 100
        assert readouts[1].detection_slot == 1
        assert readouts[2].detection_slot == 2

    def test_weights(self, skewed_basis):
        readouts = progressive_readout(skewed_basis, [1, 1, 1], radix=3)
        assert [r.weight for r in readouts] == [1, 3, 9]

    def test_invalid_radix(self, skewed_basis):
        with pytest.raises(ConfigurationError):
            progressive_readout(skewed_basis, [0], radix=1)


class TestErrorProfile:
    def test_monotone_non_increasing(self, skewed_basis):
        digits = [0, 1, 2]
        readouts = progressive_readout(skewed_basis, digits, radix=3)
        profile = value_error_profile(readouts, digits, radix=3)
        errors = [error for _slot, error in profile]
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_final_error_zero(self, skewed_basis):
        digits = [0, 1, 2]
        readouts = progressive_readout(skewed_basis, digits, radix=3)
        profile = value_error_profile(readouts, digits, radix=3)
        assert profile[-1][1] == pytest.approx(0.0)

    def test_fast_high_digit_beats_slow_high_digit(self, skewed_basis):
        """The Section 4.2 claim in miniature."""
        # Paper assignment: slow element carries the LOW digit.
        paper = [0, 1, 2]
        # Adverse: slow element carries the HIGH digit.
        adverse = [1, 2, 0]

        def error_at_slot_10(digits):
            readouts = progressive_readout(skewed_basis, digits, radix=3)
            profile = value_error_profile(readouts, digits, radix=3)
            current = None
            for slot, error in profile:
                if slot <= 10:
                    current = error
            return current

        paper_error = error_at_slot_10(paper)
        adverse_error = error_at_slot_10(adverse)
        assert paper_error is not None and adverse_error is not None
        assert paper_error < adverse_error

    def test_length_mismatch_rejected(self, skewed_basis):
        readouts = progressive_readout(skewed_basis, [0, 1], radix=3)
        with pytest.raises(ConfigurationError):
            value_error_profile(readouts, [0, 1, 2], radix=3)
