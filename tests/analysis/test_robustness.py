"""Tests for repro.analysis.robustness: degradation sweeps."""

import math

import numpy as np
import pytest

from repro.analysis.robustness import (
    injection_sweep,
    jitter_sweep,
    loss_sweep,
)
from repro.errors import ConfigurationError
from repro.hyperspace.basis import HyperspaceBasis
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=2048, dt=1e-12)


@pytest.fixture
def basis():
    rng = np.random.default_rng(0)
    slots = np.sort(rng.choice(GRID.n_samples, size=400, replace=False))
    return HyperspaceBasis([SpikeTrain(slots[k::4], GRID) for k in range(4)])


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestJitterSweep:
    def test_zero_jitter_clean(self, basis, rng):
        points = jitter_sweep(basis, [0], rng, trials=2)
        assert points[0].wrong_rate == 0.0
        assert points[0].silent_rate == 0.0

    def test_within_window_jitter_mostly_clean(self, basis, rng):
        points = jitter_sweep(basis, [1], rng, trials=2, window=2)
        assert points[0].wrong_rate < 0.2

    def test_large_jitter_goes_silent_not_wrong(self, basis, rng):
        points = jitter_sweep(
            basis, [50], rng, trials=2, window=2, min_confidence=0.5
        )
        assert points[0].wrong_rate == 0.0
        assert points[0].silent_rate > 0.5

    def test_negative_jitter_rejected(self, basis, rng):
        with pytest.raises(ConfigurationError):
            jitter_sweep(basis, [-1], rng)


class TestLossSweep:
    def test_loss_never_wrong(self, basis, rng):
        points = loss_sweep(basis, [0.0, 0.3, 0.6, 0.9], rng, trials=3)
        for point in points:
            assert point.wrong_rate == 0.0

    def test_heavy_loss_may_silence_but_mostly_survives(self, basis, rng):
        points = loss_sweep(basis, [0.9], rng, trials=3)
        # With ~100 spikes per element, 90% loss still leaves ~10 spikes.
        assert points[0].silent_rate < 0.5

    def test_latency_grows_with_loss(self, basis, rng):
        points = loss_sweep(basis, [0.0, 0.8], rng, trials=5)
        assert points[1].mean_decision_slot > points[0].mean_decision_slot

    def test_invalid_probability(self, basis, rng):
        with pytest.raises(ConfigurationError):
            loss_sweep(basis, [1.0], rng)


class TestInjectionSweep:
    def test_no_injection_clean(self, basis, rng):
        points = injection_sweep(basis, [0], rng, trials=2)
        assert points[0].wrong_rate == 0.0

    def test_small_injection_defeated_by_plurality(self, basis, rng):
        points = injection_sweep(basis, [3], rng, trials=3)
        assert points[0].wrong_rate < 0.1

    def test_overwhelming_injection_reaches_tie_region(self, basis, rng):
        # Injection is capped at the rival's whole train (here 100 spikes
        # = the element's own count), producing a tie resolved by index
        # order: about half the verdicts flip — the crossover point.
        points = injection_sweep(basis, [200], rng, trials=3)
        assert 0.3 <= points[0].wrong_rate <= 0.7

    def test_negative_count_rejected(self, basis, rng):
        with pytest.raises(ConfigurationError):
            injection_sweep(basis, [-1], rng)
