"""Tests for repro.cli: the experiment command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.command == "run"
        assert args.experiment == "table1"
        assert args.seed == 2016
        assert args.output_dir is None

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestListOutput:
    def test_lists_every_experiment(self):
        out = io.StringIO()
        code = main(["list"], out=out)
        assert code == 0
        text = out.getvalue()
        for name in EXPERIMENTS:
            assert name in text


class TestRun:
    def test_run_energy_prints_table(self):
        out = io.StringIO()
        code = main(["run", "energy"], out=out)
        assert code == 0
        assert "noise-spike" in out.getvalue()

    def test_run_aliasing(self):
        out = io.StringIO()
        code = main(["run", "aliasing"], out=out)
        assert code == 0
        assert "periodic" in out.getvalue()

    def test_output_dir_archives(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["run", "energy", "--output-dir", str(tmp_path)], out=out
        )
        assert code == 0
        archived = (tmp_path / "energy.txt").read_text()
        assert "noise-spike" in archived

    def test_seed_flag_accepted(self):
        out = io.StringIO()
        code = main(["run", "aliasing", "--seed", "7"], out=out)
        assert code == 0

    def test_registry_complete(self):
        """Every driver in repro.experiments is exposed by the CLI."""
        assert set(EXPERIMENTS) == {
            "table1", "table2", "figure1", "figure2", "figure3",
            "speed", "aliasing", "scaling", "progressive", "energy",
            "gates", "search", "verification", "robustness",
        }
