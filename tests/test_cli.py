"""Tests for repro.cli: the registry-driven experiment CLI."""

import io
import json
from dataclasses import dataclass

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.pipeline import ExperimentSpec, register, spec_names, unregister


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.command == "run"
        assert args.experiment == "table1"
        assert args.seed == 2016
        assert args.jobs == 1
        assert args.output_dir is None

    def test_jobs_flag(self):
        args = build_parser().parse_args(["run", "identify", "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_rejects_nonpositive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "identify", "--jobs", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_command_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.jobs == 1
        assert args.basis_size == 16
        assert args.n_samples == 65536
        assert args.shards is None
        assert args.fast_path_bytes == 4 * 1024 * 1024
        assert args.coalesce_window_ms == 0.0
        assert args.coalesce_max_wires == 4096

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--jobs", "3",
                "--basis-size", "8", "--n-samples", "4096",
                "--shards", "2", "--seed", "7",
            ]
        )
        assert args.port == 0
        assert args.jobs == 3
        assert args.basis_size == 8
        assert args.n_samples == 4096
        assert args.shards == 2
        assert args.seed == 7

    def test_choices_come_from_registry(self):
        """The parser's experiment choices are exactly the registry."""
        run_action = next(
            a
            for a in build_parser()._subparsers._group_actions[0]
            .choices["run"]
            ._actions
            if a.dest == "experiment"
        )
        assert list(run_action.choices) == spec_names() + ["all"]


class TestListOutput:
    def test_lists_every_experiment(self):
        out = io.StringIO()
        code = main(["list"], out=out)
        assert code == 0
        text = out.getvalue()
        for name in EXPERIMENTS:
            assert name in text

    def test_lists_tier_and_description(self):
        out = io.StringIO()
        main(["list"], out=out)
        text = out.getvalue()
        assert "[table]" in text
        assert "[serving]" in text
        assert "demux orthogonator statistics" in text
        assert "[shardable]" in text


class TestRun:
    def test_run_energy_prints_table(self):
        out = io.StringIO()
        code = main(["run", "energy"], out=out)
        assert code == 0
        assert "noise-spike" in out.getvalue()

    def test_run_aliasing(self):
        out = io.StringIO()
        code = main(["run", "aliasing"], out=out)
        assert code == 0
        assert "periodic" in out.getvalue()

    def test_output_dir_archives_text_and_json(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["run", "energy", "--output-dir", str(tmp_path)], out=out
        )
        assert code == 0
        archived = (tmp_path / "energy.txt").read_text()
        assert "noise-spike" in archived
        record = json.loads((tmp_path / "energy.json").read_text())
        assert record["experiment"] == "energy"
        assert record["status"] == "ok"

    def test_seed_flag_accepted(self):
        out = io.StringIO()
        code = main(["run", "aliasing", "--seed", "7"], out=out)
        assert code == 0

    def test_sharded_run_matches_serial(self, tmp_path):
        serial, sharded = io.StringIO(), io.StringIO()
        assert main(
            ["run", "table1", "--output-dir", str(tmp_path / "serial")],
            out=serial,
        ) == 0
        assert main(
            [
                "run", "table1", "--jobs", "2",
                "--output-dir", str(tmp_path / "sharded"),
            ],
            out=sharded,
        ) == 0
        assert serial.getvalue() == sharded.getvalue()
        a = json.loads((tmp_path / "serial" / "table1.json").read_text())
        b = json.loads((tmp_path / "sharded" / "table1.json").read_text())
        assert a["result"] == b["result"]
        assert b["n_shards"] == 2

    def test_registry_complete(self):
        """Every registered spec is exposed by the CLI."""
        assert set(EXPERIMENTS) == {
            "table1", "table2", "figure1", "figure2", "figure3",
            "speed", "aliasing", "scaling", "progressive", "energy",
            "gates", "search", "verification", "robustness", "identify",
            "logicnet",
        }


class TestServeCommand:
    def test_serve_builds_config_and_delegates(self, monkeypatch):
        import repro.serving.server as server_mod

        captured = {}

        def fake_serve(config, out=None):
            captured["config"] = config
            return 0

        monkeypatch.setattr(server_mod, "serve_forever", fake_serve)
        out = io.StringIO()
        code = main(
            [
                "serve", "--port", "0", "--jobs", "2",
                "--n-samples", "4096", "--basis-size", "8",
                "--fast-path-bytes", "65536",
                "--coalesce-window-ms", "2.5",
                "--coalesce-max-wires", "256",
            ],
            out=out,
        )
        assert code == 0
        config = captured["config"]
        assert config.port == 0
        assert config.jobs == 2
        assert config.n_samples == 4096
        assert config.basis_size == 8
        assert config.fast_path_bytes == 65536
        assert config.coalesce_window == pytest.approx(0.0025)
        assert config.coalesce_max_wires == 256


@dataclass(frozen=True)
class _BoomConfig:
    seed: int = 2016


def _boom(config):
    raise RuntimeError("intentional test failure")


class TestRunAllContinues:
    """`run all` must survive a failing experiment and summarise."""

    @pytest.fixture
    def failing_spec(self):
        spec = register(
            ExperimentSpec(
                name="zz-boom",
                description="always fails (test fixture)",
                tier="claim",
                config_type=_BoomConfig,
                run=_boom,
            )
        )
        yield spec
        unregister("zz-boom")

    def test_single_failure_exits_nonzero(self, failing_spec):
        out = io.StringIO()
        code = main(["run", "zz-boom"], out=out)
        assert code == 1
        assert "intentional test failure" in out.getvalue()

    def test_run_all_continues_and_summarises(self, failing_spec, tmp_path):
        out = io.StringIO()
        code = main(
            ["run", "all", "--output-dir", str(tmp_path)], out=out
        )
        text = out.getvalue()
        assert code == 1  # one experiment failed
        assert "zz-boom" in text
        assert "run summary" in text
        assert f"{len(spec_names()) - 1}/{len(spec_names())} ok" in text
        # Every experiment — including the failure — left artifacts.
        for name in spec_names():
            assert (tmp_path / f"{name}.json").exists(), name
            assert (tmp_path / f"{name}.txt").exists(), name
        failed = json.loads((tmp_path / "zz-boom.json").read_text())
        assert failed["status"] == "error"
        assert "intentional test failure" in failed["error"]
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["n_failed"] == 1
        assert manifest["experiments"]["zz-boom"]["status"] == "error"
