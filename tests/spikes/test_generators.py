"""Tests for repro.spikes.generators: synthetic trains."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.spikes.generators import (
    bernoulli_train,
    jittered_periodic_train,
    periodic_train,
    poisson_train,
    renewal_train,
)
from repro.spikes.statistics import isi_statistics
from repro.units import SimulationGrid


@pytest.fixture
def grid():
    return SimulationGrid(n_samples=65536, dt=1e-12)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestPoisson:
    def test_rate_matches(self, grid, rng):
        rate = 5e9  # 5 spikes/ns at dt=1ps -> p=0.005
        train = poisson_train(rate, grid, rng)
        assert train.mean_rate() == pytest.approx(rate, rel=0.1)

    def test_cv_near_one(self, grid, rng):
        train = poisson_train(1e10, grid, rng)
        stats = isi_statistics(train)
        assert stats.coefficient_of_variation == pytest.approx(1.0, abs=0.1)

    def test_rate_too_high_rejected(self, grid, rng):
        with pytest.raises(ConfigurationError):
            poisson_train(2e12, grid, rng)  # p = 2 > 1


class TestBernoulli:
    def test_probability_bounds(self, grid, rng):
        with pytest.raises(ConfigurationError):
            bernoulli_train(1.5, grid, rng)

    def test_density(self, grid, rng):
        train = bernoulli_train(0.01, grid, rng)
        assert len(train) == pytest.approx(0.01 * grid.n_samples, rel=0.15)


class TestPeriodic:
    def test_spacing(self, grid):
        train = periodic_train(100, grid)
        intervals = train.interspike_intervals()
        assert np.all(intervals == 100)

    def test_phase(self, grid):
        train = periodic_train(100, grid, phase_samples=7)
        assert train.first_spike_index() == 7

    def test_phase_wraps_modulo_period(self, grid):
        assert periodic_train(100, grid, phase_samples=107) == periodic_train(
            100, grid, phase_samples=7
        )

    def test_shifted_copies_alias(self, grid):
        """The Section 6 hazard: a delayed periodic train IS another one."""
        a = periodic_train(100, grid, phase_samples=0)
        b = periodic_train(100, grid, phase_samples=30)
        assert a.shifted(30, wrap=True) == b

    def test_invalid_period(self, grid):
        with pytest.raises(ConfigurationError):
            periodic_train(0, grid)


class TestJitteredPeriodic:
    def test_zero_jitter_is_periodic(self, grid, rng):
        assert jittered_periodic_train(100, 0, grid, rng) == periodic_train(100, grid)

    def test_jitter_increases_cv(self, grid, rng):
        plain = isi_statistics(periodic_train(100, grid))
        jittered = isi_statistics(jittered_periodic_train(100, 20, grid, rng))
        assert jittered.coefficient_of_variation > plain.coefficient_of_variation


class TestRenewal:
    def test_mean_isi(self, grid, rng):
        train = renewal_train(100.0, cv=0.5, grid=grid, rng=rng)
        assert isi_statistics(train).mean_isi_samples == pytest.approx(100.0, rel=0.1)

    def test_cv_controls_regularity(self, grid, rng):
        regular = renewal_train(100.0, cv=0.2, grid=grid, rng=rng)
        bursty = renewal_train(100.0, cv=1.5, grid=grid, rng=rng)
        assert (
            isi_statistics(regular).coefficient_of_variation
            < isi_statistics(bursty).coefficient_of_variation
        )

    def test_invalid_parameters(self, grid, rng):
        with pytest.raises(ConfigurationError):
            renewal_train(0.0, cv=1.0, grid=grid, rng=rng)
        with pytest.raises(ConfigurationError):
            renewal_train(10.0, cv=0.0, grid=grid, rng=rng)
