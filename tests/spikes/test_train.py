"""Tests for repro.spikes.train: the SpikeTrain data structure."""

import numpy as np
import pytest

from repro.errors import SpikeTrainError
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid


@pytest.fixture
def grid():
    return SimulationGrid(n_samples=100, dt=1e-12)


class TestConstruction:
    def test_sorts_and_dedups(self, grid):
        train = SpikeTrain([5, 1, 5, 3], grid)
        assert train.indices.tolist() == [1, 3, 5]

    def test_empty(self, grid):
        train = SpikeTrain.empty(grid)
        assert len(train) == 0
        assert train.first_spike_index() is None
        assert train.first_spike_time() is None

    def test_from_times_rounds(self, grid):
        train = SpikeTrain.from_times([1.4e-12, 2.6e-12], grid)
        assert train.indices.tolist() == [1, 3]

    def test_from_times_slightly_negative_named_in_error(self, grid):
        # A slightly negative time used to surface as a baffling
        # "negative spike index: -1"; the message must now name the
        # offending time and the grid.
        with pytest.raises(SpikeTrainError, match=r"-9e-13 s.*SimulationGrid"):
            SpikeTrain.from_times([1.0e-12, -0.9e-12], grid)

    def test_from_times_rounding_to_zero_is_fine(self, grid):
        # Times inside the first half-slot legitimately round to slot 0.
        train = SpikeTrain.from_times([0.4e-12], grid)
        assert train.indices.tolist() == [0]

    def test_from_times_past_record_end_named_in_error(self, grid):
        with pytest.raises(SpikeTrainError, match="falls outside"):
            SpikeTrain.from_times([99.9e-12], grid)

    def test_from_times_non_finite_rejected(self, grid):
        with pytest.raises(SpikeTrainError, match="non-finite"):
            SpikeTrain.from_times([float("nan")], grid)

    def test_from_raster_round_trip(self, grid):
        train = SpikeTrain([2, 50, 99], grid)
        assert SpikeTrain.from_raster(train.to_raster(), grid) == train

    def test_from_raster_wrong_shape(self, grid):
        with pytest.raises(SpikeTrainError):
            SpikeTrain.from_raster(np.zeros(50, dtype=bool), grid)

    def test_rejects_negative(self, grid):
        with pytest.raises(SpikeTrainError):
            SpikeTrain([-1, 2], grid)

    def test_rejects_out_of_range(self, grid):
        with pytest.raises(SpikeTrainError):
            SpikeTrain([100], grid)

    def test_rejects_non_integral(self, grid):
        with pytest.raises(SpikeTrainError):
            SpikeTrain([1.5], grid)

    def test_accepts_integral_floats(self, grid):
        train = SpikeTrain([1.0, 2.0], grid)
        assert train.indices.tolist() == [1, 2]

    def test_indices_read_only(self, grid):
        train = SpikeTrain([1, 2], grid)
        with pytest.raises(ValueError):
            train.indices[0] = 9


class TestProtocols:
    def test_len_iter_contains(self, grid):
        train = SpikeTrain([1, 5, 7], grid)
        assert len(train) == 3
        assert list(train) == [1, 5, 7]
        assert 5 in train
        assert 6 not in train

    def test_equality_and_hash(self, grid):
        a = SpikeTrain([1, 2], grid)
        b = SpikeTrain([2, 1], grid)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_across_grids(self, grid):
        other = SimulationGrid(n_samples=100, dt=2e-12)
        assert SpikeTrain([1], grid) != SpikeTrain([1], other)

    def test_times(self, grid):
        train = SpikeTrain([3, 7], grid)
        assert np.allclose(train.times, [3e-12, 7e-12])

    def test_repr(self, grid):
        assert "n=2" in repr(SpikeTrain([1, 2], grid))


class TestSetAlgebra:
    def test_union(self, grid):
        a = SpikeTrain([1, 3], grid)
        b = SpikeTrain([3, 5], grid)
        assert (a | b).indices.tolist() == [1, 3, 5]

    def test_intersection(self, grid):
        a = SpikeTrain([1, 3, 5], grid)
        b = SpikeTrain([3, 5, 7], grid)
        assert (a & b).indices.tolist() == [3, 5]

    def test_difference(self, grid):
        a = SpikeTrain([1, 3, 5], grid)
        b = SpikeTrain([3], grid)
        assert (a - b).indices.tolist() == [1, 5]

    def test_symmetric_difference(self, grid):
        a = SpikeTrain([1, 3], grid)
        b = SpikeTrain([3, 5], grid)
        assert (a ^ b).indices.tolist() == [1, 5]

    def test_orthogonality(self, grid):
        a = SpikeTrain([1, 3], grid)
        b = SpikeTrain([2, 4], grid)
        assert a.is_orthogonal_to(b)
        assert not a.is_orthogonal_to(a)

    def test_subset(self, grid):
        a = SpikeTrain([1, 3], grid)
        b = SpikeTrain([1, 2, 3], grid)
        assert a.is_subset_of(b)
        assert not b.is_subset_of(a)

    def test_cross_grid_rejected(self, grid):
        other = SimulationGrid(n_samples=100, dt=2e-12)
        with pytest.raises(SpikeTrainError):
            SpikeTrain([1], grid) | SpikeTrain([1], other)

    def test_non_train_rejected(self, grid):
        with pytest.raises(SpikeTrainError):
            SpikeTrain([1], grid).union([1, 2])


class TestTransformations:
    def test_shift_drops_overflow(self, grid):
        train = SpikeTrain([95, 99], grid)
        assert train.shifted(10).indices.tolist() == []

    def test_shift_negative_drops_underflow(self, grid):
        train = SpikeTrain([0, 5], grid)
        assert train.shifted(-3).indices.tolist() == [2]

    def test_shift_wrap(self, grid):
        train = SpikeTrain([95, 99], grid)
        assert train.shifted(10, wrap=True).indices.tolist() == [5, 9]

    def test_shift_empty(self, grid):
        assert len(SpikeTrain.empty(grid).shifted(5)) == 0

    def test_window(self, grid):
        train = SpikeTrain([1, 10, 20, 30], grid)
        assert train.window(10, 30).indices.tolist() == [10, 20]

    def test_window_invalid(self, grid):
        with pytest.raises(SpikeTrainError):
            SpikeTrain([1], grid).window(10, 5)

    def test_jitter_zero_is_identity(self, grid):
        train = SpikeTrain([1, 50], grid)
        assert train.jittered(0, np.random.default_rng(0)) == train

    def test_jitter_bounded(self, grid):
        train = SpikeTrain(list(range(10, 90, 5)), grid)
        jittered = train.jittered(3, np.random.default_rng(1))
        for spike in jittered.indices:
            assert np.min(np.abs(train.indices - spike)) <= 3

    def test_jitter_negative_rejected(self, grid):
        with pytest.raises(SpikeTrainError):
            SpikeTrain([1], grid).jittered(-1, np.random.default_rng(0))

    def test_thinning_probability_bounds(self, grid):
        with pytest.raises(SpikeTrainError):
            SpikeTrain([1], grid).thinned(1.5, np.random.default_rng(0))

    def test_thinning_keep_all(self, grid):
        train = SpikeTrain([1, 2, 3], grid)
        assert train.thinned(1.0, np.random.default_rng(0)) == train

    def test_thinning_drop_all(self, grid):
        train = SpikeTrain([1, 2, 3], grid)
        assert len(train.thinned(0.0, np.random.default_rng(0))) == 0

    def test_mean_rate(self, grid):
        train = SpikeTrain([0, 50], grid)
        assert train.mean_rate() == pytest.approx(2 / (100 * 1e-12))

    def test_interspike_intervals(self, grid):
        train = SpikeTrain([2, 5, 11], grid)
        assert train.interspike_intervals().tolist() == [3, 6]
