"""Tests for repro.spikes.zero_crossing: detectors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.spikes.zero_crossing import (
    AllCrossingDetector,
    DownCrossingDetector,
    HysteresisDetector,
    UpCrossingDetector,
    zero_crossings,
)
from repro.units import SimulationGrid


@pytest.fixture
def grid():
    return SimulationGrid(n_samples=8, dt=1e-12)


class TestAllCrossing:
    def test_simple_alternating(self, grid):
        record = np.array([1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0])
        train = AllCrossingDetector().detect(record, grid)
        assert train.indices.tolist() == [1, 2, 3, 4, 5, 6, 7]

    def test_no_crossings(self, grid):
        record = np.ones(8)
        assert len(AllCrossingDetector().detect(record, grid)) == 0

    def test_zero_sample_not_double_counted(self, grid):
        # +1, 0, -1: one crossing, not two.
        record = np.array([1.0, 0.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0])
        train = AllCrossingDetector().detect(record, grid)
        assert len(train) == 1

    def test_zero_touch_and_return_not_a_crossing(self, grid):
        # +1, 0, +1: the signal touches zero but never changes sign.
        record = np.array([1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        assert len(AllCrossingDetector().detect(record, grid)) == 0

    def test_shape_validation(self, grid):
        with pytest.raises(ConfigurationError):
            AllCrossingDetector().detect(np.zeros(7), grid)


class TestDirectionalDetectors:
    def test_up_and_down_partition_all(self, grid):
        rng = np.random.default_rng(0)
        record = rng.normal(size=8)
        all_c = AllCrossingDetector().detect(record, grid)
        up = UpCrossingDetector().detect(record, grid)
        down = DownCrossingDetector().detect(record, grid)
        assert up.is_orthogonal_to(down)
        assert (up | down) == all_c

    def test_up_only(self, grid):
        record = np.array([-1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, 1.0])
        up = UpCrossingDetector().detect(record, grid)
        assert up.indices.tolist() == [1, 5]

    def test_down_only(self, grid):
        record = np.array([-1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, 1.0])
        down = DownCrossingDetector().detect(record, grid)
        assert down.indices.tolist() == [3]


class TestHysteresis:
    def test_zero_threshold_equals_all_crossings(self):
        grid = SimulationGrid(n_samples=1024, dt=1e-12)
        record = np.random.default_rng(1).normal(size=1024)
        plain = AllCrossingDetector().detect(record, grid)
        hysteresis = HysteresisDetector(0.0).detect(record, grid)
        assert plain == hysteresis

    def test_suppresses_chatter(self, grid):
        # Small wiggle around zero must produce no spikes with threshold 0.5.
        record = np.array([0.1, -0.1, 0.1, -0.1, 0.1, -0.1, 0.1, -0.1])
        assert len(HysteresisDetector(0.5).detect(record, grid)) == 0

    def test_detects_full_swings(self, grid):
        record = np.array([1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0])
        train = HysteresisDetector(0.5).detect(record, grid)
        assert train.indices.tolist() == [2, 4, 6]

    def test_fewer_spikes_than_plain_on_noise(self):
        grid = SimulationGrid(n_samples=4096, dt=1e-12)
        record = np.random.default_rng(2).normal(size=4096)
        plain = AllCrossingDetector().detect(record, grid)
        hysteresis = HysteresisDetector(0.3).detect(record, grid)
        assert 0 < len(hysteresis) < len(plain)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            HysteresisDetector(-0.1)


class TestFunctionalShortcut:
    def test_directions(self, grid):
        record = np.array([-1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0])
        both = zero_crossings(record, grid, "both")
        up = zero_crossings(record, grid, "up")
        down = zero_crossings(record, grid, "down")
        assert len(both) == len(up) + len(down)

    def test_invalid_direction(self, grid):
        with pytest.raises(ConfigurationError):
            zero_crossings(np.zeros(8), grid, "sideways")


class TestRiceAgreement:
    def test_white_noise_rate_matches_rice(self):
        """End-to-end: generated white noise crosses at the Rice rate."""
        from repro.noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
        from repro.noise.synthesis import NoiseSynthesizer
        from repro.units import paper_white_grid

        grid = paper_white_grid(n_samples=32768)
        spectrum = WhiteSpectrum(PAPER_WHITE_BAND)
        record = NoiseSynthesizer(spectrum, grid).generate(0)
        train = AllCrossingDetector().detect(record, grid)
        measured = len(train) / grid.duration
        assert measured == pytest.approx(
            spectrum.expected_zero_crossing_rate(), rel=0.05
        )
