"""Property-based tests (hypothesis) for SpikeTrain set algebra.

The spike-train set operations are the computational substrate of the
intersection orthogonator and the superposition codec, so their algebraic
laws are checked over arbitrary inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid

GRID = SimulationGrid(n_samples=256, dt=1e-12)

indices = st.lists(
    st.integers(min_value=0, max_value=GRID.n_samples - 1), max_size=64
)


def train(xs) -> SpikeTrain:
    return SpikeTrain(np.asarray(xs, dtype=np.int64), GRID)


@given(indices, indices)
def test_union_commutative(xs, ys):
    a, b = train(xs), train(ys)
    assert a | b == b | a


@given(indices, indices)
def test_intersection_commutative(xs, ys):
    a, b = train(xs), train(ys)
    assert a & b == b & a


@given(indices, indices, indices)
def test_union_associative(xs, ys, zs):
    a, b, c = train(xs), train(ys), train(zs)
    assert (a | b) | c == a | (b | c)


@given(indices, indices, indices)
def test_intersection_distributes_over_union(xs, ys, zs):
    a, b, c = train(xs), train(ys), train(zs)
    assert a & (b | c) == (a & b) | (a & c)


@given(indices, indices)
def test_difference_disjoint_from_other(xs, ys):
    a, b = train(xs), train(ys)
    assert (a - b).is_orthogonal_to(b)


@given(indices, indices)
def test_partition_by_other(xs, ys):
    """a = (a - b) ∪ (a ∩ b), disjointly — the orthogonator's identity."""
    a, b = train(xs), train(ys)
    only_a = a - b
    both = a & b
    assert only_a.is_orthogonal_to(both)
    assert only_a | both == a


@given(indices, indices)
def test_symmetric_difference_definition(xs, ys):
    a, b = train(xs), train(ys)
    assert a ^ b == (a | b) - (a & b)


@given(indices)
def test_self_laws(xs):
    a = train(xs)
    assert a | a == a
    assert a & a == a
    assert len(a - a) == 0


@given(indices, st.integers(min_value=-300, max_value=300))
def test_shift_preserves_or_drops(xs, offset):
    """Shifting never invents spikes; wrap preserves the count exactly."""
    a = train(xs)
    shifted = a.shifted(offset)
    assert len(shifted) <= len(a)
    wrapped = a.shifted(offset, wrap=True)
    assert len(wrapped) == len(a)


@given(indices, st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=256))
def test_window_subset(xs, start, extra):
    a = train(xs)
    stop = min(GRID.n_samples, start + extra)
    if start <= stop:
        w = a.window(start, stop)
        assert w.is_subset_of(a)
        assert all(start <= s < stop for s in w.indices)


@given(indices)
def test_raster_round_trip(xs):
    a = train(xs)
    assert SpikeTrain.from_raster(a.to_raster(), GRID) == a
