"""Tests for repro.spikes.statistics: ISI stats, coincidences, Fano."""

import math

import numpy as np
import pytest

from repro.errors import SpikeTrainError
from repro.spikes.statistics import (
    coincidence_count,
    coincidence_rate,
    cross_coincidence_matrix,
    fano_factor,
    isi_statistics,
    rate_in_windows,
)
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid


@pytest.fixture
def grid():
    return SimulationGrid(n_samples=1000, dt=1e-12)


class TestIsiStatistics:
    def test_periodic_train(self, grid):
        train = SpikeTrain(np.arange(0, 1000, 10), grid)
        stats = isi_statistics(train)
        assert stats.mean_isi_samples == pytest.approx(10.0)
        assert stats.rms_isi_samples == pytest.approx(0.0)
        assert stats.coefficient_of_variation == pytest.approx(0.0)

    def test_known_intervals(self, grid):
        train = SpikeTrain([0, 10, 30], grid)  # intervals 10, 20
        stats = isi_statistics(train)
        assert stats.mean_isi_samples == pytest.approx(15.0)
        assert stats.rms_isi_samples == pytest.approx(5.0)

    def test_seconds_scaling(self, grid):
        train = SpikeTrain([0, 10], grid)
        stats = isi_statistics(train)
        assert stats.mean_isi_seconds == pytest.approx(10e-12)
        assert stats.mean_rate == pytest.approx(1e11)

    def test_degenerate_train(self, grid):
        stats = isi_statistics(SpikeTrain([5], grid))
        assert math.isnan(stats.mean_isi_samples)
        assert math.isnan(stats.mean_rate)

    def test_format_row_contains_label(self, grid):
        stats = isi_statistics(SpikeTrain([0, 10, 20], grid))
        assert "mytrain" in stats.format_row("mytrain")


class TestCoincidence:
    def test_exact_count(self, grid):
        a = SpikeTrain([1, 5, 9], grid)
        b = SpikeTrain([5, 9, 20], grid)
        assert coincidence_count(a, b) == 2

    def test_windowed_count(self, grid):
        a = SpikeTrain([10], grid)
        b = SpikeTrain([12], grid)
        assert coincidence_count(a, b, window=0) == 0
        assert coincidence_count(a, b, window=1) == 0
        assert coincidence_count(a, b, window=2) == 1

    def test_window_left_and_right(self, grid):
        a = SpikeTrain([10, 20], grid)
        b = SpikeTrain([8, 22], grid)
        assert coincidence_count(a, b, window=2) == 2

    def test_negative_window_rejected(self, grid):
        with pytest.raises(SpikeTrainError):
            coincidence_count(SpikeTrain([1], grid), SpikeTrain([1], grid), window=-1)

    def test_rate(self, grid):
        a = SpikeTrain([1, 5, 9, 13], grid)
        b = SpikeTrain([5, 9], grid)
        assert coincidence_rate(a, b) == pytest.approx(0.5)

    def test_rate_empty_nan(self, grid):
        assert math.isnan(
            coincidence_rate(SpikeTrain.empty(grid), SpikeTrain([1], grid))
        )

    def test_empty_inputs(self, grid):
        assert coincidence_count(SpikeTrain.empty(grid), SpikeTrain([1], grid), 3) == 0
        assert coincidence_count(SpikeTrain([1], grid), SpikeTrain.empty(grid), 3) == 0


class TestCrossCoincidenceMatrix:
    def test_orthogonal_is_diagonal(self, grid):
        trains = [
            SpikeTrain([0, 3], grid),
            SpikeTrain([1, 4], grid),
            SpikeTrain([2, 5], grid),
        ]
        matrix = cross_coincidence_matrix(trains)
        assert matrix.tolist() == [[2, 0, 0], [0, 2, 0], [0, 0, 2]]

    def test_overlap_appears_off_diagonal(self, grid):
        trains = [SpikeTrain([0, 3], grid), SpikeTrain([3, 4], grid)]
        matrix = cross_coincidence_matrix(trains)
        assert matrix[0, 1] == matrix[1, 0] == 1


class TestFanoAndWindows:
    def test_rate_in_windows(self, grid):
        train = SpikeTrain([0, 1, 2, 500, 501], grid)
        counts = rate_in_windows(train, 100)
        assert counts[0] == 3
        assert counts[5] == 2
        assert counts.sum() == 5

    def test_periodic_fano_near_zero(self, grid):
        train = SpikeTrain(np.arange(0, 1000, 10), grid)
        assert fano_factor(train, 100) == pytest.approx(0.0, abs=1e-6)

    def test_poisson_fano_near_one(self):
        grid = SimulationGrid(n_samples=65536, dt=1e-12)
        rng = np.random.default_rng(0)
        hits = rng.random(grid.n_samples) < 0.02
        train = SpikeTrain(np.flatnonzero(hits), grid)
        assert fano_factor(train, 512) == pytest.approx(1.0, abs=0.15)

    def test_invalid_window(self, grid):
        with pytest.raises(SpikeTrainError):
            fano_factor(SpikeTrain([1], grid), 0)
        with pytest.raises(SpikeTrainError):
            rate_in_windows(SpikeTrain([1], grid), -5)

    def test_empty_window_result(self, grid):
        counts = rate_in_windows(SpikeTrain([1], grid), 2000)
        assert counts.size == 0
