"""Regression tests: shared-memory dispatch never leaks segments.

The arena owns segment lifecycle for one sharded run; these tests pin
the failure path — a worker raising mid-shard must leave no attachable
segment behind and no resource-tracker complaints at interpreter
shutdown.
"""

import os
import pathlib
import subprocess
import sys
from dataclasses import dataclass

import numpy as np
import pytest

from repro.backend.shared import HAVE_SHARED_MEMORY, SharedArena
from repro.pipeline import ExperimentSpec, Runner, register, unregister

pytestmark = pytest.mark.skipif(
    not HAVE_SHARED_MEMORY, reason="multiprocessing.shared_memory missing"
)


def _segment_gone(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


@dataclass(frozen=True)
class _MeltdownConfig:
    seed: int = 2016
    n_shards: int = 2


#: Segment names created by the last _meltdown_shard_shared call.
#: shard_shared runs in the dispatching process, so the test can read
#: this after the run to verify every segment was unlinked.
_CREATED_SEGMENTS = []


def _meltdown_shard_shared(config, arena: SharedArena):
    for _ in range(3):
        arena.share_array(np.arange(4096))
    _CREATED_SEGMENTS.clear()
    _CREATED_SEGMENTS.extend(arena.segment_names)
    return [("shared", i) for i in range(config.n_shards)]


def _meltdown_shard(config):
    return [("rebuild", i) for i in range(config.n_shards)]


def _meltdown_run_shard(task):
    raise ValueError("shard meltdown")


def _meltdown_merge(config, parts):
    return parts


def _meltdown_run(config):
    return _meltdown_merge(
        config, [_meltdown_run_shard(t) for t in _meltdown_shard(config)]
    )


@pytest.fixture
def meltdown_spec():
    register(
        ExperimentSpec(
            name="zz-meltdown",
            description="worker raises mid-shard (test fixture)",
            tier="claim",
            config_type=_MeltdownConfig,
            run=_meltdown_run,
            shard=_meltdown_shard,
            run_shard=_meltdown_run_shard,
            merge=_meltdown_merge,
            shard_shared=_meltdown_shard_shared,
        )
    )
    yield
    unregister("zz-meltdown")


class TestFailingShardLeaksNothing:
    def test_worker_exception_unlinks_all_segments(self, meltdown_spec):
        with Runner(jobs=2) as runner:
            report = runner.run("zz-meltdown")
        assert not report.ok
        assert "shard meltdown" in report.error
        assert len(_CREATED_SEGMENTS) == 3
        assert all(_segment_gone(name) for name in _CREATED_SEGMENTS)

    def test_successful_shared_run_unlinks_all_segments(self):
        with Runner(jobs=2) as runner:
            report = runner.run(
                "identify",
                overrides={"n_wires": 16, "n_trials": 2, "n_shards": 2,
                           "basis_size": 4},
            )
        assert report.ok, report.error


class TestNoResourceTrackerWarnings:
    def test_sharded_run_shutdown_is_silent(self):
        """A full interpreter lifecycle around a shared sharded run must
        emit no resource_tracker complaints (the 3.x tracker warns at
        shutdown about segments left on its ledger)."""
        script = (
            "from repro.pipeline import Runner\n"
            "cfg = {'n_wires': 16, 'n_trials': 2, 'n_shards': 2,"
            " 'basis_size': 4}\n"
            "with Runner(jobs=2) as runner:\n"
            "    report = runner.run('identify', overrides=cfg)\n"
            "assert report.ok, report.error\n"
        )
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=240,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "resource_tracker" not in result.stderr, result.stderr
        assert "leaked shared_memory" not in result.stderr, result.stderr
