"""Tests for the Runner: sharded == serial, failures don't abort runs."""

import json
from dataclasses import dataclass

import pytest

from repro.errors import PipelineError
from repro.pipeline import (
    ArtifactStore,
    ExperimentSpec,
    Runner,
    register,
    to_jsonable,
    unregister,
)

#: A small sharded workload (2 shards of 8 wires, 2 observation starts).
SMALL_IDENTIFY = {"n_wires": 16, "n_trials": 2, "n_shards": 2, "basis_size": 4}

#: Reduced configs for every shardable spec, used by the bit-identity
#: sweep (serial vs 2-job sharded must serialise identically).
SHARDABLE_SMALL = {
    "identify": SMALL_IDENTIFY,
    "speed": {"n_trials": 10},
    "gates": {"alphabet_sizes": (2,)},
    "search": {"n_inputs_sweep": (3,)},
    "verification": {"basis_sizes": (4,), "n_pairs": 4},
    "robustness": {"trials": 1},
    "table1": {"n_samples": 16384},
    "table2": {"n_samples": 16384},
    "aliasing": {},
    "scaling": {"max_inputs": 3},
    "logicnet": {
        "n_networks": 8,
        "n_gates": 6,
        "depth": 2,
        "basis_size": 4,
        "n_shards": 3,
    },
}


def _run_identify(tmp_path, jobs):
    store = ArtifactStore(tmp_path / f"jobs{jobs}")
    report = Runner(jobs=jobs, store=store).run(
        "identify", overrides=SMALL_IDENTIFY
    )
    assert report.ok, report.error
    return report, json.loads(report.json_path.read_text())


class TestShardedEqualsSerial:
    def test_two_job_identify_bit_identical(self, tmp_path):
        serial_report, serial = _run_identify(tmp_path, jobs=1)
        sharded_report, sharded = _run_identify(tmp_path, jobs=2)
        assert serial["result"] == sharded["result"]
        assert serial_report.rendered == sharded_report.rendered
        assert serial_report.text_path.read_text() == (
            sharded_report.text_path.read_text()
        )
        assert sharded["n_shards"] == 2
        assert sharded["jobs"] == 2

    def test_two_job_table2_bit_identical(self, tmp_path):
        overrides = {"n_samples": 16384}
        serial = Runner(jobs=1).run("table2", overrides=overrides)
        sharded = Runner(jobs=2).run("table2", overrides=overrides)
        assert serial.ok and sharded.ok
        assert serial.rendered == sharded.rendered
        assert sharded.n_shards == 2

    def test_shard_count_is_config_not_jobs(self, tmp_path):
        """More jobs than shards must not change the plan."""
        _report, record = _run_identify(tmp_path, jobs=5)
        assert record["n_shards"] == SMALL_IDENTIFY["n_shards"]

    @pytest.mark.parametrize(
        "name",
        [n for n in sorted(SHARDABLE_SMALL) if n != "scaling"],
    )
    def test_every_shardable_spec_bit_identical(self, name):
        """Serial vs sharded, for every spec carrying a shard plan.

        ``scaling`` is excluded: its result intentionally records
        per-shard wall times.  Serialised JSON comparison (rather than
        ``==``) keeps NaN payloads comparable.
        """
        serial = Runner(jobs=1).run(name, overrides=SHARDABLE_SMALL[name])
        with Runner(jobs=2) as runner:
            sharded = runner.run(name, overrides=SHARDABLE_SMALL[name])
        assert serial.ok, serial.error
        assert sharded.ok, sharded.error
        assert json.dumps(to_jsonable(serial.result)) == json.dumps(
            to_jsonable(sharded.result)
        )
        assert serial.rendered == sharded.rendered
        assert sharded.n_shards >= 1


class TestPersistentPool:
    def test_pool_reused_across_runs(self):
        with Runner(jobs=2) as runner:
            first = runner.run("identify", overrides=SMALL_IDENTIFY)
            pool = runner._pool
            assert pool is not None
            second = runner.run("speed", overrides={"n_trials": 10})
            assert runner._pool is pool  # same pool, no respawn
        assert first.ok and second.ok
        assert runner._pool is None  # context exit tears it down

    def test_serial_runner_never_forks(self):
        runner = Runner(jobs=1)
        report = runner.run("identify", overrides=SMALL_IDENTIFY)
        assert report.ok
        assert runner._pool is None

    def test_serial_run_uses_the_spec_driver_once(self, monkeypatch):
        """In-process execution goes through spec.run (which may share
        one workload across shards), not shard-by-shard mapping."""
        import repro.experiments.identify as identify

        calls = {"workload": 0}
        original = identify._workload

        def counting_workload(config):
            calls["workload"] += 1
            return original(config)

        monkeypatch.setattr(identify, "_workload", counting_workload)
        report = Runner(jobs=1).run("identify", overrides=SMALL_IDENTIFY)
        assert report.ok
        assert report.n_shards == SMALL_IDENTIFY["n_shards"]
        assert calls["workload"] == 1  # build-once serial driver

    def test_single_shard_plan_stays_in_process(self):
        """One shard + many jobs must not export, fork, or round-trip."""
        with Runner(jobs=2) as runner:
            report = runner.run(
                "identify", overrides=dict(SMALL_IDENTIFY, n_shards=1)
            )
            assert report.ok
            assert report.n_shards == 1
            assert runner._pool is None  # nothing to parallelise: no fork

    def test_unshardable_spec_never_forks(self):
        """jobs >= 2 on an unshardable spec must not pay pool startup."""
        with Runner(jobs=4) as runner:
            report = runner.run("energy")
            assert report.ok
            assert runner._pool is None

    def test_close_is_idempotent(self):
        runner = Runner(jobs=2)
        runner.run("identify", overrides=SMALL_IDENTIFY)
        runner.close()
        runner.close()
        assert runner._pool is None


class TestReleaseBroadcast:
    """End-of-run release: workers must not pin a finished run's arena."""

    def test_workers_drop_attachments_at_end_of_run(self):
        """After a shared-dispatch run every worker holds zero mappings.

        Without the broadcast, each worker would pin the attachments of
        the finished run's arena until a task from a *newer* arena
        happened to arrive.  The inspection tasks rendezvous on the
        pool barrier, so each of the two workers reports exactly once.
        """
        from repro.pipeline import runner as runner_mod

        with Runner(jobs=2) as runner:
            report = runner.run("identify", overrides=SMALL_IDENTIFY)
            assert report.ok, report.error
            pool = runner._pool
            assert pool is not None  # the shard plan actually dispatched
            counts = pool.map(
                runner_mod._attachment_count_worker, range(2), chunksize=1
            )
            assert counts == [0, 0], (
                f"workers still hold attachments after the run: {counts}"
            )
            runner._release_barrier.reset()

    def test_workers_pin_attachments_without_broadcast(self):
        """Control: with the broadcast disabled, mappings stay resident.

        Guards the regression test above against vacuous success (e.g.
        the run never attaching anything in the first place).
        """
        from repro.pipeline import runner as runner_mod
        from repro.pipeline.runner import _execute_record

        with Runner(jobs=2) as runner:
            record, _result = _execute_record(
                "identify", None, SMALL_IDENTIFY, runner.jobs,
                runner._ensure_pool, release=None,
            )
            assert record.status == "ok", record.error
            counts = runner._pool.map(
                runner_mod._attachment_count_worker, range(2), chunksize=1
            )
            runner._release_barrier.reset()
            assert sum(counts) > 0, "expected resident attachments"
            runner.release_worker_attachments()
            counts = runner._pool.map(
                runner_mod._attachment_count_worker, range(2), chunksize=1
            )
            runner._release_barrier.reset()
            assert counts == [0, 0]

    def test_release_without_pool_is_noop(self):
        Runner(jobs=1).release_worker_attachments()
        runner = Runner(jobs=4)
        runner.release_worker_attachments()  # pool never created
        assert runner._pool is None


def _pid_of_worker(_payload):
    """Broadcast target: identify the executing worker process."""
    import os

    return os.getpid()


def _double(value):
    """Submit target: trivial payload round trip."""
    return value * 2


class TestDispatchPrimitives:
    """The pool's public surface for non-experiment callers (serving)."""

    def test_submit_requires_a_pool(self):
        with Runner(jobs=1) as runner:
            with pytest.raises(PipelineError):
                runner.submit(_double, 21)

    def test_broadcast_without_pool_returns_none(self):
        with Runner(jobs=1) as runner:
            assert runner.broadcast(_pid_of_worker) is None

    def test_submit_runs_on_the_persistent_pool(self):
        with Runner(jobs=2) as runner:
            results = [runner.submit(_double, n) for n in range(5)]
            assert [r.get(timeout=60) for r in results] == [0, 2, 4, 6, 8]

    def test_broadcast_reaches_every_worker_exactly_once(self):
        import os

        with Runner(jobs=2) as runner:
            pids = runner.broadcast(_pid_of_worker)
            assert len(pids) == 2
            assert len(set(pids)) == 2  # two distinct workers, once each
            assert os.getpid() not in pids
            # The barrier resets: a second broadcast works too.
            assert set(runner.broadcast(_pid_of_worker)) == set(pids)


class TestRunnerBasics:
    def test_jobs_must_be_positive(self):
        with pytest.raises(PipelineError):
            Runner(jobs=0)

    def test_unknown_experiment_raises(self):
        with pytest.raises(PipelineError):
            Runner().run("nonsense")

    def test_unknown_override_raises(self):
        with pytest.raises(PipelineError):
            Runner().run("identify", overrides={"banana": 1})

    def test_run_without_store_keeps_result(self):
        report = Runner().run("identify", overrides=SMALL_IDENTIFY)
        assert report.ok
        assert report.result is not None
        assert report.result.accuracy == 1.0
        assert report.json_path is None

    def test_seed_recorded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = Runner(store=store).run(
            "identify", seed=7, overrides=SMALL_IDENTIFY
        )
        record = json.loads(report.json_path.read_text())
        assert record["seed"] == 7
        assert record["config"]["seed"] == 7


@dataclass(frozen=True)
class _FlakyConfig:
    seed: int = 2016


def _raise(config):
    raise ValueError("shard meltdown")


class TestFailureHandling:
    @pytest.fixture
    def failing_spec(self):
        register(
            ExperimentSpec(
                name="zz-flaky",
                description="always fails (test fixture)",
                tier="claim",
                config_type=_FlakyConfig,
                run=_raise,
            )
        )
        yield
        unregister("zz-flaky")

    def test_run_captures_traceback(self, failing_spec, tmp_path):
        store = ArtifactStore(tmp_path)
        report = Runner(store=store).run("zz-flaky")
        assert not report.ok
        assert "shard meltdown" in report.error
        record = json.loads(report.json_path.read_text())
        assert record["status"] == "error"
        assert "shard meltdown" in record["error"]

    def test_run_many_continues_past_failure(self, failing_spec, tmp_path):
        store = ArtifactStore(tmp_path)
        reports = Runner(store=store).run_many(["energy", "zz-flaky"])
        by_name = {report.name: report for report in reports}
        assert by_name["energy"].ok
        assert not by_name["zz-flaky"].ok
        manifest = store.load_manifest()
        assert manifest["n_failed"] == 1
        assert manifest["experiments"]["energy"]["status"] == "ok"

    def test_parallel_run_many_continues_past_failure(
        self, failing_spec, tmp_path
    ):
        """The experiment pool isolates failures the same way."""
        store = ArtifactStore(tmp_path)
        reports = Runner(jobs=2, store=store).run_many(
            ["energy", "zz-flaky", "progressive"]
        )
        statuses = {report.name: report.ok for report in reports}
        assert statuses == {
            "energy": True, "zz-flaky": False, "progressive": True,
        }
        # Pool workers serialise in-process; artifacts land either way.
        assert store.load("progressive")["status"] == "ok"
        assert "shard meltdown" in store.load("zz-flaky")["error"]

    def test_run_many_unknown_name_fails_fast(self):
        with pytest.raises(PipelineError):
            Runner().run_many(["energy", "nonsense"])


class TestParallelRunMany:
    def test_matches_serial_rendering(self, tmp_path):
        names = ["energy", "progressive"]
        serial = Runner(jobs=1).run_many(names)
        parallel = Runner(jobs=2).run_many(names)
        assert [r.rendered for r in serial] == [r.rendered for r in parallel]
        # Pool-executed experiments hand back records, not live objects.
        assert all(r.result is None for r in parallel)
