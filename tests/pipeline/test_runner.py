"""Tests for the Runner: sharded == serial, failures don't abort runs."""

import json
from dataclasses import dataclass

import pytest

from repro.errors import PipelineError
from repro.pipeline import (
    ArtifactStore,
    ExperimentSpec,
    Runner,
    register,
    unregister,
)

#: A small sharded workload (2 shards of 8 wires, 2 observation starts).
SMALL_IDENTIFY = {"n_wires": 16, "n_trials": 2, "n_shards": 2, "basis_size": 4}


def _run_identify(tmp_path, jobs):
    store = ArtifactStore(tmp_path / f"jobs{jobs}")
    report = Runner(jobs=jobs, store=store).run(
        "identify", overrides=SMALL_IDENTIFY
    )
    assert report.ok, report.error
    return report, json.loads(report.json_path.read_text())


class TestShardedEqualsSerial:
    def test_two_job_identify_bit_identical(self, tmp_path):
        serial_report, serial = _run_identify(tmp_path, jobs=1)
        sharded_report, sharded = _run_identify(tmp_path, jobs=2)
        assert serial["result"] == sharded["result"]
        assert serial_report.rendered == sharded_report.rendered
        assert serial_report.text_path.read_text() == (
            sharded_report.text_path.read_text()
        )
        assert sharded["n_shards"] == 2
        assert sharded["jobs"] == 2

    def test_two_job_table2_bit_identical(self, tmp_path):
        overrides = {"n_samples": 16384}
        serial = Runner(jobs=1).run("table2", overrides=overrides)
        sharded = Runner(jobs=2).run("table2", overrides=overrides)
        assert serial.ok and sharded.ok
        assert serial.rendered == sharded.rendered
        assert sharded.n_shards == 2

    def test_shard_count_is_config_not_jobs(self, tmp_path):
        """More jobs than shards must not change the plan."""
        _report, record = _run_identify(tmp_path, jobs=5)
        assert record["n_shards"] == SMALL_IDENTIFY["n_shards"]


class TestRunnerBasics:
    def test_jobs_must_be_positive(self):
        with pytest.raises(PipelineError):
            Runner(jobs=0)

    def test_unknown_experiment_raises(self):
        with pytest.raises(PipelineError):
            Runner().run("nonsense")

    def test_unknown_override_raises(self):
        with pytest.raises(PipelineError):
            Runner().run("identify", overrides={"banana": 1})

    def test_run_without_store_keeps_result(self):
        report = Runner().run("identify", overrides=SMALL_IDENTIFY)
        assert report.ok
        assert report.result is not None
        assert report.result.accuracy == 1.0
        assert report.json_path is None

    def test_seed_recorded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = Runner(store=store).run(
            "identify", seed=7, overrides=SMALL_IDENTIFY
        )
        record = json.loads(report.json_path.read_text())
        assert record["seed"] == 7
        assert record["config"]["seed"] == 7


@dataclass(frozen=True)
class _FlakyConfig:
    seed: int = 2016


def _raise(config):
    raise ValueError("shard meltdown")


class TestFailureHandling:
    @pytest.fixture
    def failing_spec(self):
        register(
            ExperimentSpec(
                name="zz-flaky",
                description="always fails (test fixture)",
                tier="claim",
                config_type=_FlakyConfig,
                run=_raise,
            )
        )
        yield
        unregister("zz-flaky")

    def test_run_captures_traceback(self, failing_spec, tmp_path):
        store = ArtifactStore(tmp_path)
        report = Runner(store=store).run("zz-flaky")
        assert not report.ok
        assert "shard meltdown" in report.error
        record = json.loads(report.json_path.read_text())
        assert record["status"] == "error"
        assert "shard meltdown" in record["error"]

    def test_run_many_continues_past_failure(self, failing_spec, tmp_path):
        store = ArtifactStore(tmp_path)
        reports = Runner(store=store).run_many(["energy", "zz-flaky"])
        by_name = {report.name: report for report in reports}
        assert by_name["energy"].ok
        assert not by_name["zz-flaky"].ok
        manifest = store.load_manifest()
        assert manifest["n_failed"] == 1
        assert manifest["experiments"]["energy"]["status"] == "ok"

    def test_parallel_run_many_continues_past_failure(
        self, failing_spec, tmp_path
    ):
        """The experiment pool isolates failures the same way."""
        store = ArtifactStore(tmp_path)
        reports = Runner(jobs=2, store=store).run_many(
            ["energy", "zz-flaky", "progressive"]
        )
        statuses = {report.name: report.ok for report in reports}
        assert statuses == {
            "energy": True, "zz-flaky": False, "progressive": True,
        }
        # Pool workers serialise in-process; artifacts land either way.
        assert store.load("progressive")["status"] == "ok"
        assert "shard meltdown" in store.load("zz-flaky")["error"]

    def test_run_many_unknown_name_fails_fast(self):
        with pytest.raises(PipelineError):
            Runner().run_many(["energy", "nonsense"])


class TestParallelRunMany:
    def test_matches_serial_rendering(self, tmp_path):
        names = ["energy", "progressive"]
        serial = Runner(jobs=1).run_many(names)
        parallel = Runner(jobs=2).run_many(names)
        assert [r.rendered for r in serial] == [r.rendered for r in parallel]
        # Pool-executed experiments hand back records, not live objects.
        assert all(r.result is None for r in parallel)
