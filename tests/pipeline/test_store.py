"""Tests for the artifact store and the result serialiser."""

import json

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.pipeline import ArtifactStore, RunRecord, to_jsonable
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid


def _record(**overrides):
    fields = dict(
        experiment="demo",
        status="ok",
        config={"seed": 2016},
        seed=2016,
        jobs=1,
        n_shards=0,
        wall_seconds=0.25,
        result={"value": 42},
        rendered="demo report",
    )
    fields.update(overrides)
    return RunRecord(**fields)


class TestArtifactStore:
    def test_save_and_load(self, tmp_path):
        store = ArtifactStore(tmp_path)
        json_path, text_path = store.save(_record())
        assert json_path == tmp_path / "demo.json"
        assert text_path == tmp_path / "demo.txt"
        record = store.load("demo")
        assert record["schema"] == 1
        assert record["result"] == {"value": 42}
        assert store.load_text("demo") == "demo report\n"

    def test_error_record_writes_traceback_text(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(
            _record(status="error", result=None, rendered="", error="boom")
        )
        assert store.load("demo")["status"] == "error"
        assert store.load_text("demo") == "boom\n"

    def test_missing_artifact_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(PipelineError):
            store.load("demo")
        with pytest.raises(PipelineError):
            store.load_manifest()

    def test_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        records = [
            _record(),
            _record(experiment="other", status="error", error="boom"),
        ]
        store.write_manifest(records)
        manifest = store.load_manifest()
        assert manifest["n_experiments"] == 2
        assert manifest["n_failed"] == 1
        assert manifest["experiments"]["demo"]["json"] == "demo.json"

    def test_json_artifact_is_valid_json(self, tmp_path):
        store = ArtifactStore(tmp_path)
        json_path, _text = store.save(_record())
        json.loads(json_path.read_text())  # must not raise


class TestToJsonable:
    def test_numpy_scalars_and_arrays(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(0.5)) == 0.5
        assert to_jsonable(np.bool_(True)) is True
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_sets_become_sorted_lists(self):
        assert to_jsonable(frozenset({3, 1, 2})) == [1, 2, 3]

    def test_spike_train(self):
        grid = SimulationGrid(n_samples=16, dt=1e-9)
        train = SpikeTrain([2, 5, 11], grid)
        payload = to_jsonable(train)
        assert payload == {
            "n_spikes": 3,
            "grid": {"n_samples": 16, "dt": 1e-9},
            "indices": [2, 5, 11],
        }

    def test_dict_keys_become_strings(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_unknown_objects_fall_back_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert to_jsonable(Opaque()) == "<opaque>"

    def test_experiment_result_serialises_to_json(self):
        from repro.experiments.identify import run_identify

        result = run_identify(n_wires=8, basis_size=4, n_trials=2, n_shards=2)
        payload = to_jsonable(result)
        text = json.dumps(payload)  # must not raise
        assert json.loads(text)["n_wires"] == 8
