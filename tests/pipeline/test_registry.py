"""Tests for the experiment registry and every registered spec.

The round-trip test is the pipeline's contract: for every registered
spec, config → run → JSON artifact → reload reproduces the config and
parses cleanly.  Reduced workloads keep the sweep fast.
"""

import dataclasses
import json

import pytest

from repro.errors import PipelineError
from repro.pipeline import (
    ArtifactStore,
    ExperimentSpec,
    Runner,
    all_specs,
    get_spec,
    register,
    spec_names,
    to_jsonable,
    unregister,
)

#: Per-spec reduced workloads so the full-registry sweep stays fast.
SMALL_OVERRIDES = {
    "table1": {"n_samples": 16384},
    "table2": {"n_samples": 16384},
    "figure1": {"n_samples": 8192},
    "figure2": {"n_samples": 8192},
    "figure3": {"n_samples": 8192},
    "speed": {"n_trials": 20},
    "scaling": {"max_inputs": 3},
    "gates": {"alphabet_sizes": (2,)},
    "search": {"n_inputs_sweep": (3,)},
    "verification": {"basis_sizes": (4,), "n_pairs": 4},
    "robustness": {"trials": 1},
    "identify": {"n_wires": 32, "n_trials": 3, "n_shards": 2},
    "logicnet": {
        "n_networks": 8,
        "n_gates": 6,
        "depth": 2,
        "basis_size": 4,
        "n_shards": 2,
    },
}


class TestRegistry:
    def test_fourteen_paper_specs_plus_serving(self):
        names = spec_names()
        assert len(names) == 16
        assert "identify" in names
        assert "logicnet" in names

    def test_get_spec_unknown_name_raises_with_available(self):
        with pytest.raises(PipelineError, match="table1"):
            get_spec("nonsense")

    def test_duplicate_registration_raises(self):
        spec = get_spec("energy")
        with pytest.raises(PipelineError, match="already registered"):
            register(spec)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # runpy re-exec
    def test_run_directly_entry_points_survive_reregistration(self, capsys):
        """``python -m repro.experiments.<name>`` executes the module
        twice (package import + __main__); the re-registration must not
        crash and the original spec must win."""
        import runpy

        before = get_spec("energy")
        runpy.run_module("repro.experiments.energy", run_name="__main__")
        assert get_spec("energy") is before
        assert "noise-spike" in capsys.readouterr().out

    def test_unregister_roundtrip(self):
        spec = get_spec("energy")
        unregister("energy")
        try:
            with pytest.raises(PipelineError):
                get_spec("energy")
        finally:
            register(spec)

    def test_every_spec_well_formed(self):
        for spec in all_specs():
            assert spec.description
            assert spec.tier in ("table", "figure", "claim", "serving")
            assert dataclasses.is_dataclass(spec.config_type)
            # Zero-arg config must reproduce the paper run.
            spec.config_type()

    def test_shard_plan_all_or_nothing(self):
        for spec in all_specs():
            plan = (spec.shard, spec.run_shard, spec.merge)
            assert all(p is not None for p in plan) or all(
                p is None for p in plan
            )


class TestMakeConfig:
    def test_seed_applies_to_seeded_specs(self):
        config = get_spec("table1").make_config(seed=7)
        assert config.seed == 7

    def test_explicit_override_beats_seed(self):
        config = get_spec("table1").make_config(seed=7, overrides={"seed": 9})
        assert config.seed == 9

    def test_seed_ignored_by_fixed_specs(self):
        spec = get_spec("energy")
        assert spec.seed_policy == "fixed"
        config = spec.make_config(seed=7)
        assert not hasattr(config, "seed")

    def test_unknown_override_raises(self):
        with pytest.raises(PipelineError, match="no config field"):
            get_spec("table1").make_config(overrides={"banana": 1})


class TestSpecValidation:
    def test_partial_shard_plan_rejected(self):
        with pytest.raises(PipelineError, match="together"):
            ExperimentSpec(
                name="bad",
                description="partial shard plan",
                tier="claim",
                config_type=get_spec("energy").config_type,
                run=lambda config: None,
                seed_policy="fixed",
                shard=lambda config: [config],
            )

    def test_bad_tier_rejected(self):
        with pytest.raises(PipelineError, match="tier"):
            ExperimentSpec(
                name="bad",
                description="bad tier",
                tier="banana",
                config_type=get_spec("energy").config_type,
                run=lambda config: None,
                seed_policy="fixed",
            )

    def test_seeded_spec_needs_seed_field(self):
        with pytest.raises(PipelineError, match="seed"):
            ExperimentSpec(
                name="bad",
                description="seeded without a seed field",
                tier="claim",
                config_type=get_spec("energy").config_type,  # no seed field
                run=lambda config: None,
            )


@pytest.mark.parametrize("name", sorted(SMALL_OVERRIDES) + ["energy",
                                                            "progressive",
                                                            "aliasing"])
def test_every_spec_round_trips_through_artifact(name, tmp_path):
    """config → run → JSON artifact → reload, for every registered spec."""
    spec = get_spec(name)
    overrides = SMALL_OVERRIDES.get(name, {})
    store = ArtifactStore(tmp_path)
    report = Runner(jobs=1, store=store).run(name, overrides=overrides)
    assert report.ok, report.error
    assert report.json_path.exists()
    assert report.text_path.exists()
    assert report.text_path.read_text().strip()

    record = json.loads(report.json_path.read_text())  # must parse
    assert record["experiment"] == name
    assert record["status"] == "ok"
    assert record["wall_seconds"] >= 0.0
    assert record["result"] is not None

    # The stored config reloads into an equal config dataclass.
    config = spec.make_config(overrides=overrides)
    assert record["config"] == to_jsonable(config)
    assert spec.config_from_jsonable(record["config"]) == config

    # The store's reader agrees with the raw file.
    assert store.load(name) == record
