"""CorpusStore: append-only packed segments behind a row-range manifest.

The out-of-core contract: whatever was appended comes back —
``open_rows`` over any window is bit-identical to the batches that
went in, single-segment windows are zero-copy views of the mapping,
``iter_chunks`` covers the corpus exactly once, and the manifest is
published atomically so a reader never sees a half-written library.
"""

import json

import numpy as np
import pytest

from repro.backend import SpikeTrainBatch
from repro.errors import PipelineError, SpikeTrainError
from repro.pipeline.corpus import CORPUS_SCHEMA_VERSION, CorpusStore
from repro.units import SimulationGrid, paper_white_grid

GRID = SimulationGrid(n_samples=2048, dt=1e-12)


def random_batch(seed, n_rows, grid=GRID, density=0.03):
    rng = np.random.default_rng(seed)
    return SpikeTrainBatch.from_raster(
        rng.random((n_rows, grid.n_samples)) < density, grid, copy=False
    )


@pytest.fixture()
def store(tmp_path):
    store = CorpusStore.create(tmp_path / "corpus", GRID)
    with store.writer() as writer:
        for seed, n_rows in enumerate((10, 3, 7)):
            writer.append(random_batch(seed, n_rows))
    return store


class TestCreateAndReopen:
    def test_create_then_reopen(self, store):
        again = CorpusStore(store.root)
        assert again.n_rows == 20
        assert again.n_segments == 3
        assert again.grid() == GRID

    def test_create_refuses_existing(self, store):
        with pytest.raises(PipelineError, match="already"):
            CorpusStore.create(store.root, GRID)

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(PipelineError, match="manifest"):
            CorpusStore(tmp_path / "nowhere")

    def test_info_reports_layout(self, store):
        info = store.info()
        assert info["schema"] == CORPUS_SCHEMA_VERSION
        assert info["n_rows"] == 20
        assert info["n_segments"] == 3
        assert info["n_samples"] == GRID.n_samples
        assert info["disk_bytes"] > 0
        assert [s["row_start"] for s in info["segments"]] == [0, 10, 13]
        assert [s["row_stop"] for s in info["segments"]] == [10, 13, 20]

    def test_dt_round_trips_exactly(self, tmp_path):
        grid = paper_white_grid()
        store = CorpusStore.create(tmp_path / "c", grid)
        assert CorpusStore(store.root).grid() == grid


class TestOpenRows:
    def test_full_window_bit_identical(self, store):
        expected = np.concatenate(
            [random_batch(s, n).packed_words()
             for s, n in enumerate((10, 3, 7))]
        )
        batch = store.open_rows(0, 20)
        assert batch.packed_materialised and not batch.csr_materialised
        assert np.array_equal(batch.packed_words(), expected)

    def test_window_inside_one_segment_is_zero_copy(self, store):
        window = store.open_rows(2, 8)
        assert window.n_trains == 6
        words = window.packed_words()
        assert isinstance(words.base, np.memmap) or isinstance(
            getattr(words.base, "base", None), np.memmap
        )
        assert np.array_equal(
            words, random_batch(0, 10).packed_words()[2:8]
        )

    def test_window_spanning_segments(self, store):
        window = store.open_rows(8, 15)
        expected = np.concatenate(
            [
                random_batch(0, 10).packed_words()[8:],
                random_batch(1, 3).packed_words(),
                random_batch(2, 7).packed_words()[:2],
            ]
        )
        assert np.array_equal(window.packed_words(), expected)

    def test_empty_window(self, store):
        assert store.open_rows(5, 5).n_trains == 0

    def test_out_of_range_rejected(self, store):
        with pytest.raises(PipelineError):
            store.open_rows(0, 21)
        with pytest.raises(PipelineError):
            store.open_rows(-1, 5)

    def test_iter_chunks_covers_exactly_once(self, store):
        seen = []
        for lo, hi, batch in store.iter_chunks(6):
            assert batch.n_trains == hi - lo
            assert batch.n_trains <= 6
            seen.append((lo, hi))
        assert seen == [(0, 6), (6, 12), (12, 18), (18, 20)]


class TestWriter:
    def test_append_reflects_immediately(self, tmp_path):
        store = CorpusStore.create(tmp_path / "c", GRID)
        with store.writer() as writer:
            row_start, row_stop = writer.append(random_batch(5, 4))
            assert (row_start, row_stop) == (0, 4)
            # A concurrent reader sees every published append.
            assert CorpusStore(store.root).n_rows == 4

    def test_append_rejects_grid_mismatch(self, tmp_path):
        store = CorpusStore.create(tmp_path / "c", GRID)
        other = SimulationGrid(n_samples=4096, dt=1e-12)
        with store.writer() as writer:
            with pytest.raises((PipelineError, SpikeTrainError)):
                writer.append(random_batch(0, 2, grid=other))

    def test_append_rejects_empty_batch(self, tmp_path):
        store = CorpusStore.create(tmp_path / "c", GRID)
        empty = random_batch(0, 3).select_rows([])
        with store.writer() as writer:
            with pytest.raises(PipelineError):
                writer.append(empty)

    def test_no_tmp_manifest_left_behind(self, store):
        leftovers = [
            p for p in store.root.iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_manifest_is_valid_json_with_schema(self, store):
        manifest = json.loads((store.root / "manifest.json").read_text())
        assert manifest["schema"] == CORPUS_SCHEMA_VERSION
        assert manifest["kind"] == "corpus"
        assert manifest["n_rows"] == 20
