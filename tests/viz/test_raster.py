"""Tests for repro.viz.raster: ASCII rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.spikes.train import SpikeTrain
from repro.units import SimulationGrid
from repro.viz.raster import render_labelled_rasters, render_raster

GRID = SimulationGrid(n_samples=100, dt=1e-12)


class TestRenderRaster:
    def test_width(self):
        row = render_raster(SpikeTrain([0, 50, 99], GRID), width=50)
        assert len(row) == 50

    def test_spike_positions(self):
        row = render_raster(SpikeTrain([0, 99], GRID), width=100)
        assert row[0] == "|"
        assert row[-1] == "|"
        assert row[50] == "."

    def test_empty_train(self):
        row = render_raster(SpikeTrain.empty(GRID), width=20)
        assert row == "." * 20

    def test_binning_collapses_neighbours(self):
        row = render_raster(SpikeTrain([0, 1, 2, 3], GRID), width=10)
        assert row.count("|") == 1

    def test_window(self):
        row = render_raster(SpikeTrain([10, 90], GRID), start=0, stop=50, width=50)
        assert row[10] == "|"
        assert row.count("|") == 1

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            render_raster(SpikeTrain([1], GRID), start=50, stop=10)

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            render_raster(SpikeTrain([1], GRID), width=0)


class TestLabelledRasters:
    def test_rows_and_ruler(self):
        text = render_labelled_rasters(
            [("alpha", SpikeTrain([1], GRID)), ("b", SpikeTrain([2], GRID))],
            width=40,
        )
        lines = text.split("\n")
        assert len(lines) == 3  # two rows + ruler
        assert lines[0].startswith("alpha")
        assert "ps" in lines[-1] or "ns" in lines[-1] or "0 s" in lines[-1]

    def test_labels_aligned(self):
        text = render_labelled_rasters(
            [("long-name", SpikeTrain([1], GRID)), ("x", SpikeTrain([2], GRID))],
            width=30,
        )
        lines = text.split("\n")
        bar_positions = {line.index("|") for line in lines[:2] if "|" in line}
        # Spikes at slots 1 and 2 of 100 land in the same 30-wide bin...
        # the alignment check is on the label column instead:
        assert lines[0].index(" ") >= len("long-name")

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            render_labelled_rasters([])
