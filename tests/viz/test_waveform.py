"""Tests for repro.viz.waveform: ASCII waveform plots."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.spikes.train import SpikeTrain
from repro.spikes.zero_crossing import AllCrossingDetector
from repro.units import SimulationGrid
from repro.viz.waveform import render_waveform, render_waveform_with_crossings

GRID = SimulationGrid(n_samples=1000, dt=1e-12)


@pytest.fixture
def sine_record():
    t = np.arange(GRID.n_samples)
    return np.sin(2 * np.pi * t / 200.0)


class TestRenderWaveform:
    def test_dimensions(self, sine_record):
        text = render_waveform(sine_record, GRID, width=60, height=9)
        lines = text.split("\n")
        assert len(lines) == 10  # 9 rows + ruler
        assert all(len(line) == 60 for line in lines[:-1])

    def test_even_height_promoted_to_odd(self, sine_record):
        text = render_waveform(sine_record, GRID, width=40, height=8)
        assert len(text.split("\n")) == 10  # promoted to 9 + ruler

    def test_zero_axis_visible(self, sine_record):
        text = render_waveform(sine_record, GRID, width=60, height=9)
        centre = text.split("\n")[4]
        assert "-" in centre or "*" in centre

    def test_extremes_touch_edges(self, sine_record):
        text = render_waveform(sine_record, GRID, width=60, height=9)
        lines = text.split("\n")
        assert "*" in lines[0]      # peaks reach the top row
        assert "*" in lines[8]      # troughs reach the bottom row

    def test_flat_zero_record(self):
        # A constant-zero record renders as the bare axis.
        text = render_waveform(np.zeros(GRID.n_samples), GRID, width=30, height=5)
        centre = text.split("\n")[2]
        assert set(centre) <= {"-", "*"}

    def test_window(self, sine_record):
        text = render_waveform(sine_record, GRID, start=0, stop=100, width=50)
        assert "0 s" in text.split("\n")[-1]

    def test_validation(self, sine_record):
        with pytest.raises(ConfigurationError):
            render_waveform(sine_record, GRID, start=500, stop=100)
        with pytest.raises(ConfigurationError):
            render_waveform(sine_record, GRID, width=1)
        with pytest.raises(ConfigurationError):
            render_waveform(np.zeros(5), GRID)


class TestCrossingsOverlay:
    def test_marker_row_present(self, sine_record):
        crossings = AllCrossingDetector().detect(sine_record, GRID)
        text = render_waveform_with_crossings(
            sine_record, GRID, crossings, width=60, height=9
        )
        lines = text.split("\n")
        assert len(lines) == 11  # 9 rows + markers + ruler
        marker_row = lines[-2]
        # A 200-sample-period sine over 1000 samples crosses ~10 times.
        assert 5 <= marker_row.count("|") <= 12

    def test_markers_align_with_crossings(self):
        # One crossing in the middle: marker near the middle column.
        record = np.concatenate([np.ones(500), -np.ones(500)])
        crossings = AllCrossingDetector().detect(record, GRID)
        text = render_waveform_with_crossings(record, GRID, crossings, width=100)
        marker_row = text.split("\n")[-2]
        position = marker_row.index("|")
        assert 45 <= position <= 55

    def test_no_crossings(self):
        record = np.ones(GRID.n_samples)
        crossings = SpikeTrain.empty(GRID)
        text = render_waveform_with_crossings(record, GRID, crossings, width=40)
        assert "|" not in text.split("\n")[-2]
