"""Tests for benchmarks/compare_artifacts.py (the value-drift gate)."""

import importlib.util
import json
import pathlib

import pytest

_PATH = (
    pathlib.Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "compare_artifacts.py"
)
_spec = importlib.util.spec_from_file_location("compare_artifacts", _PATH)
compare_artifacts = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_artifacts)


def _artifact(result, experiment="table1"):
    return {
        "schema": 1,
        "experiment": experiment,
        "status": "ok",
        "config": {"seed": 2016},
        "wall_seconds": 1.23,
        "result": result,
    }


def _write_dir(root, artifacts):
    root.mkdir(exist_ok=True)
    for name, result in artifacts.items():
        (root / f"{name}.json").write_text(
            json.dumps(_artifact(result, experiment=name))
        )
    return root


class TestLoadResults:
    def test_single_file(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(_artifact({"x": 1})))
        assert compare_artifacts.load_results(path) == {"table1": {"x": 1}}

    def test_directory_skips_manifest(self, tmp_path):
        _write_dir(tmp_path / "run", {"a": {"x": 1}, "b": {"y": 2}})
        (tmp_path / "run" / "manifest.json").write_text(
            json.dumps({"schema": 1})
        )
        results = compare_artifacts.load_results(tmp_path / "run")
        assert set(results) == {"a", "b"}

    def test_non_artifact_rejected(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps({"not": "an artifact"}))
        with pytest.raises(ValueError):
            compare_artifacts.load_results(path)

    def test_empty_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError):
            compare_artifacts.load_results(tmp_path / "empty")


class TestCompareArtifacts:
    def test_identical_trees_pass(self, tmp_path):
        result = {"accuracy": 0.5, "points": [{"n": 2, "rate": 1.5}]}
        old = _write_dir(tmp_path / "old", {"a": result})
        new = _write_dir(tmp_path / "new", {"a": result})
        assert compare_artifacts.main([str(old), str(new)]) == 0

    def test_value_drift_fails(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"accuracy": 0.5}})
        new = _write_dir(tmp_path / "new", {"a": {"accuracy": 0.5001}})
        assert compare_artifacts.main([str(old), str(new)]) == 1

    def test_drift_within_rtol_passes(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"accuracy": 0.5}})
        new = _write_dir(tmp_path / "new", {"a": {"accuracy": 0.5001}})
        assert (
            compare_artifacts.main([str(old), str(new), "--rtol", "1e-3"])
            == 0
        )

    def test_atol_covers_near_zero(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"rate": 0.0}})
        new = _write_dir(tmp_path / "new", {"a": {"rate": 1e-15}})
        assert compare_artifacts.main([str(old), str(new)]) == 1
        assert (
            compare_artifacts.main([str(old), str(new), "--atol", "1e-12"])
            == 0
        )

    def test_missing_experiment_fails(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"x": 1}, "b": {"y": 2}})
        new = _write_dir(tmp_path / "new", {"a": {"x": 1}})
        assert compare_artifacts.main([str(old), str(new)]) == 1

    def test_new_experiment_never_fails(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"x": 1}})
        new = _write_dir(tmp_path / "new", {"a": {"x": 1}, "b": {"y": 2}})
        assert compare_artifacts.main([str(old), str(new)]) == 0

    def test_missing_key_fails(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"x": 1, "y": 2}})
        new = _write_dir(tmp_path / "new", {"a": {"x": 1}})
        assert compare_artifacts.main([str(old), str(new)]) == 1

    def test_extra_key_fails(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"x": 1}})
        new = _write_dir(tmp_path / "new", {"a": {"x": 1, "y": 2}})
        assert compare_artifacts.main([str(old), str(new)]) == 1

    def test_list_length_change_fails(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"points": [1, 2, 3]}})
        new = _write_dir(tmp_path / "new", {"a": {"points": [1, 2]}})
        assert compare_artifacts.main([str(old), str(new)]) == 1

    def test_nested_list_drift_fails(self, tmp_path):
        old = _write_dir(
            tmp_path / "old", {"a": {"points": [{"rate": 1.0}, {"rate": 2.0}]}}
        )
        new = _write_dir(
            tmp_path / "new", {"a": {"points": [{"rate": 1.0}, {"rate": 2.1}]}}
        )
        assert compare_artifacts.main([str(old), str(new)]) == 1

    def test_volatile_wall_fields_ignored(self, tmp_path):
        old = _write_dir(
            tmp_path / "old",
            {"a": {"x": 1, "points": [{"n": 2, "build_seconds": 0.5}]}},
        )
        new = _write_dir(
            tmp_path / "new",
            {"a": {"x": 1, "points": [{"n": 2, "build_seconds": 9.9}]}},
        )
        assert compare_artifacts.main([str(old), str(new)]) == 0

    def test_bool_compared_exactly_not_numerically(self, tmp_path):
        # bool is an int subclass; True must not match 1.0000001-style
        # tolerance, nor False match 0 silently changing type.
        old = _write_dir(tmp_path / "old", {"a": {"aliased": True}})
        new = _write_dir(tmp_path / "new", {"a": {"aliased": False}})
        assert compare_artifacts.main([str(old), str(new)]) == 1

    def test_string_drift_fails(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"label": "white"}})
        new = _write_dir(tmp_path / "new", {"a": {"label": "pink"}})
        assert compare_artifacts.main([str(old), str(new)]) == 1

    def test_require_missing_from_both_sides_fails(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"x": 1}})
        new = _write_dir(tmp_path / "new", {"a": {"x": 1}})
        assert (
            compare_artifacts.main(
                [str(old), str(new), "--require", "logicnet"]
            )
            == 1
        )

    def test_require_missing_from_one_side_fails(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"x": 1}})
        new = _write_dir(tmp_path / "new", {"a": {"x": 1}, "b": {"y": 2}})
        # Without --require, "b" rides through as a new artifact ...
        assert compare_artifacts.main([str(old), str(new)]) == 0
        # ... with it, the baseline's silence is a failure.
        assert (
            compare_artifacts.main([str(old), str(new), "--require", "b"])
            == 1
        )

    def test_require_present_on_both_sides_passes(self, tmp_path):
        old = _write_dir(tmp_path / "old", {"a": {"x": 1}, "b": {"y": 2}})
        new = _write_dir(tmp_path / "new", {"a": {"x": 1}, "b": {"y": 2}})
        assert (
            compare_artifacts.main(
                [str(old), str(new), "--require", "a", "--require", "b"]
            )
            == 0
        )

    def test_single_files_compare(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_artifact({"x": 1.0})))
        new.write_text(json.dumps(_artifact({"x": 1.0})))
        assert compare_artifacts.main([str(old), str(new)]) == 0


class TestRealArtifacts:
    def test_run_artifacts_self_compare(self, tmp_path):
        """A real `repro run --output-dir` tree passes against itself."""
        from repro.cli import main as cli_main
        import io

        out_dir = tmp_path / "run"
        code = cli_main(
            [
                "run",
                "table2",
                "--output-dir",
                str(out_dir),
            ],
            out=io.StringIO(),
        )
        assert code == 0
        assert compare_artifacts.main([str(out_dir), str(out_dir)]) == 0
