"""End-to-end integration tests across the whole stack.

These exercise the public API the way the examples do: noise → spikes →
orthogonator → hyperspace → logic → identification, plus failure
injection on the identification layer.
"""

import numpy as np
import pytest

from repro import (
    CoincidenceCorrelator,
    DemuxOrthogonator,
    HyperspaceBasis,
    IntersectionOrthogonator,
    Superposition,
    build_demux_basis,
    build_intersection_basis,
    decode_superposition,
    isi_statistics,
    max_gate,
    min_gate,
    mod_sum_gate,
    paper_white_source,
    ripple_adder,
    spike_packages,
    zero_crossings,
)
from repro.hyperspace.builders import paper_default_synthesizer
from repro.logic.sequential import PackageClock, SymbolStream, accumulator_machine
from repro.noise.synthesis import make_rng


class TestFullPipeline:
    def test_noise_to_identification(self):
        """The quickstart path: build, encode, identify."""
        basis = build_demux_basis(8, rng=7)
        correlator = CoincidenceCorrelator(basis)
        for value in range(8):
            result = correlator.identify(basis.encode(value))
            assert result.element == value

    def test_identification_latency_is_one_isi_scale(self):
        basis = build_demux_basis(4, rng=11)
        correlator = CoincidenceCorrelator(basis)
        latencies = [
            correlator.identify(basis.encode(v), start_slot=s).decision_slot - s
            for v in range(4)
            for s in (0, 1000, 20000)
        ]
        mean_isi = isi_statistics(basis.trains[0]).mean_isi_samples
        assert float(np.mean(latencies)) < 3 * mean_isi

    def test_superposition_on_single_wire(self):
        """2^M − 1 distinguishable superpositions on one wire (M=4: check all)."""
        basis = build_demux_basis(4, rng=13)
        import itertools

        for r in range(0, 5):
            for members in itertools.combinations(range(4), r):
                sup = Superposition(frozenset(members))
                wire = sup.encode(basis)
                assert decode_superposition(basis, wire) == sup

    def test_multivalued_gate_chain(self):
        """MIN→MAX→MODSUM chained physically across one hyperspace."""
        basis = build_demux_basis(5, rng=17)
        lo = min_gate(basis)
        hi = max_gate(basis)
        add = mod_sum_gate(basis)
        a, b, c = 4, 2, 3
        t1 = lo.transmit(basis.encode(a), basis.encode(b))
        t2 = hi.transmit(t1.output, basis.encode(c))
        t3 = add.transmit(t2.output, basis.encode(1))
        assert t3.value == (max(min(a, b), c) + 1) % 5

    def test_radix8_adder_physical(self):
        """One radix-8 digit wire replaces three binary wires."""
        basis = build_demux_basis(8, rng=19)
        adder = ripple_adder(1, basis)
        wires = {
            "a0": basis.encode(5),
            "b0": basis.encode(6),
            "cin": basis.encode(0),
        }
        t = adder.transmit(wires)
        assert t.values["s0"] == (5 + 6) % 8
        assert t.values["c1"] == 1

    def test_sequential_accumulator_over_packages(self):
        synth = paper_default_synthesizer()
        record = synth.generate(make_rng(23))
        source = zero_crossings(record, synth.grid)
        output = DemuxOrthogonator.with_outputs(4).transform(source)
        clock = PackageClock(output)
        stream = SymbolStream(clock)
        values = [1, 2, 3, 0, 1, 3]
        machine = accumulator_machine(4)
        out_wire = machine.run_stream(stream, stream.encode(values))
        decoded = stream.decode(out_wire)[: len(values)]
        expected = []
        total = 0
        for v in values:
            total = (total + v) % 4
            expected.append(total)
        assert decoded == expected


class TestCrossHyperspaceOperation:
    def test_gate_output_in_different_hyperspace(self):
        """Section 5: output 'possibly from a different hyperspace'."""
        input_basis = build_demux_basis(3, rng=29)
        output_basis = build_intersection_basis(2, common_amplitude=0.945, rng=31)
        from repro.logic.gates import gate_from_function

        gate = gate_from_function(
            "route", [input_basis], output_basis, lambda v: v
        )
        t = gate.transmit(input_basis.encode(2))
        assert t.output == output_basis.encode(2)
        # The output is identifiable in ITS hyperspace.
        verdict = CoincidenceCorrelator(output_basis).identify(t.output)
        assert verdict.element == 2


class TestFailureInjection:
    def test_thinned_wire_still_identified(self):
        """Losing 70% of spikes only delays identification."""
        basis = build_demux_basis(4, rng=37)
        rng = np.random.default_rng(0)
        correlator = CoincidenceCorrelator(basis)
        wire = basis.encode(1).thinned(0.3, rng)
        assert len(wire) > 0
        result = correlator.identify(wire)
        assert result.element == 1

    def test_foreign_noise_spikes_resisted_by_votes(self):
        basis = build_demux_basis(4, rng=41)
        rng = np.random.default_rng(1)
        correlator = CoincidenceCorrelator(basis)
        wire = basis.encode(2)
        # Inject a burst of spikes from a rival element early on.
        rival_burst = basis.encode(0).window(0, 200)
        noisy = wire | rival_burst
        robust = correlator.identify_robust(noisy, votes=25, start_slot=0)
        assert robust.element == 2

    def test_jittered_wire_identified_with_window_verdict(self):
        """Timing jitter breaks exact coincidence; the windowed verdict
        of the baselines layer still recovers the element."""
        from repro.baselines.periodic import identification_verdict

        basis = build_demux_basis(4, rng=43)
        rng = np.random.default_rng(2)
        wire = basis.encode(3).jittered(1, rng)
        verdict = identification_verdict(basis, wire, window=2, min_confidence=0.5)
        assert verdict == 3


class TestPackagesOnRealNoise:
    def test_package_invariant_on_noise_train(self):
        source = paper_white_source(seed=47, n_samples=16384)
        train = zero_crossings(source.record(), source.grid)
        output = DemuxOrthogonator(2).transform(train)
        packages = spike_packages(output)
        assert len(packages) == len(train) // 3
        for package in packages:
            assert list(package.slots) == sorted(package.slots)
